//! Runtime observation of per-PC value and address ranges.
//!
//! The static verifier (`diag-verify`) infers an interval for every
//! destination value and memory address a program can produce. Its
//! soundness contract — *observed ⊆ inferred* — is machine-checked by
//! recording what the simulators actually execute and comparing. This
//! module is the recording side: an [`Observer`] is a zero-cost-when-off
//! hook (the same pattern as `diag-profile`'s `Profiler`) that machines
//! clone into their hot loops; when enabled it folds each retirement into
//! a shared [`ObservationLog`] of per-PC [`PcObserved`] records.
//!
//! Observations are deliberately a *subset* of architectural execution:
//! recording fewer events can never break the ⊆ check, so machines are
//! free to skip redundant records (e.g. nullified SIMT stations, which
//! never execute architecturally either).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use diag_isa::ArchReg;

/// Observed range of one quantity (destination values or addresses) at
/// one PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedRange {
    /// Smallest value observed.
    pub min: u32,
    /// Largest value observed.
    pub max: u32,
    /// Minimum trailing-zero count observed (`0` observes as 32, matching
    /// the verifier's alignment lattice where zero is maximally aligned).
    pub min_tz: u32,
    /// Number of observations folded in.
    pub count: u64,
}

impl ObservedRange {
    fn new(v: u32) -> ObservedRange {
        ObservedRange {
            min: v,
            max: v,
            min_tz: v.trailing_zeros(),
            count: 1,
        }
    }

    fn record(&mut self, v: u32) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.min_tz = self.min_tz.min(v.trailing_zeros());
        self.count += 1;
    }
}

/// Everything observed at one program counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcObserved {
    /// Architectural executions (retirements) of this PC.
    pub execs: u64,
    /// Range of destination-lane values written (absent for stations with
    /// no destination, e.g. stores and branches).
    pub dest: Option<ObservedRange>,
    /// Range of memory addresses accessed (absent for non-memory
    /// stations).
    pub addr: Option<ObservedRange>,
}

/// Per-PC observation records for one run, keyed by instruction address.
#[derive(Debug, Default)]
pub struct ObservationLog {
    pcs: BTreeMap<u32, PcObserved>,
}

impl ObservationLog {
    /// Creates an empty log.
    pub fn new() -> ObservationLog {
        ObservationLog::default()
    }

    /// The per-PC records, keyed by instruction address.
    pub fn pcs(&self) -> &BTreeMap<u32, PcObserved> {
        &self.pcs
    }

    /// Observed executions of `pc` (zero if never seen).
    pub fn execs(&self, pc: u32) -> u64 {
        self.pcs.get(&pc).map_or(0, |r| r.execs)
    }

    fn record(&mut self, pc: u32, dest: Option<(ArchReg, u32)>, addr: Option<u32>) {
        let rec = self.pcs.entry(pc).or_default();
        rec.execs += 1;
        if let Some((lane, value)) = dest {
            if !lane.is_zero() {
                match &mut rec.dest {
                    Some(r) => r.record(value),
                    None => rec.dest = Some(ObservedRange::new(value)),
                }
            }
        }
        if let Some(a) = addr {
            match &mut rec.addr {
                Some(r) => r.record(a),
                None => rec.addr = Some(ObservedRange::new(a)),
            }
        }
    }
}

/// Shared handle machines and harnesses exchange: the log behind a
/// `Rc<RefCell<…>>`, cloned into each ring/core at wave launch.
pub type SharedObservations = Rc<RefCell<ObservationLog>>;

/// The zero-cost-when-off observation hook.
///
/// [`Observer::off`] carries no collector: every recording call is an
/// immediate `None` test on an `Option` the branch predictor learns, and
/// the recorded values are only computed when enabled (callers pass them
/// directly — they are already in registers at the hook sites).
#[derive(Debug, Clone, Default)]
pub struct Observer {
    inner: Option<SharedObservations>,
}

impl Observer {
    /// A disabled observer (records nothing).
    pub fn off() -> Observer {
        Observer { inner: None }
    }

    /// An observer feeding `shared`.
    pub fn to_shared(shared: &SharedObservations) -> Observer {
        Observer {
            inner: Some(Rc::clone(shared)),
        }
    }

    /// Whether observations are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one architectural retirement at `pc`: the destination
    /// write (if any) and the memory address accessed (if any).
    #[inline]
    pub fn retire(&self, pc: u32, dest: Option<(ArchReg, u32)>, addr: Option<u32>) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record(pc, dest, addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_isa::Reg;

    #[test]
    fn off_observer_records_nothing() {
        let obs = Observer::off();
        assert!(!obs.enabled());
        obs.retire(0x1000, Some((Reg::T0.into(), 7)), Some(64));
    }

    #[test]
    fn ranges_fold_min_max_and_alignment() {
        let shared: SharedObservations = Rc::new(RefCell::new(ObservationLog::new()));
        let obs = Observer::to_shared(&shared);
        assert!(obs.enabled());
        obs.retire(0x1000, Some((Reg::T0.into(), 8)), Some(0x100));
        obs.retire(0x1000, Some((Reg::T0.into(), 20)), Some(0x104));
        obs.retire(0x1004, None, None);
        let log = shared.borrow();
        let rec = log.pcs()[&0x1000];
        assert_eq!(rec.execs, 2);
        let dest = rec.dest.unwrap();
        assert_eq!((dest.min, dest.max), (8, 20));
        assert_eq!(dest.min_tz, 2, "20 = 0b10100 has two trailing zeros");
        let addr = rec.addr.unwrap();
        assert_eq!((addr.min, addr.max), (0x100, 0x104));
        assert_eq!(addr.min_tz, 2);
        assert_eq!(log.execs(0x1004), 1);
        assert_eq!(log.execs(0x2000), 0);
    }

    #[test]
    fn zero_counts_as_maximally_aligned() {
        let shared: SharedObservations = Rc::new(RefCell::new(ObservationLog::new()));
        let obs = Observer::to_shared(&shared);
        obs.retire(0x1000, Some((Reg::T1.into(), 0)), None);
        assert_eq!(shared.borrow().pcs()[&0x1000].dest.unwrap().min_tz, 32);
    }

    #[test]
    fn x0_writes_are_not_recorded() {
        let shared: SharedObservations = Rc::new(RefCell::new(ObservationLog::new()));
        let obs = Observer::to_shared(&shared);
        obs.retire(0x1000, Some((Reg::ZERO.into(), 99)), None);
        let log = shared.borrow();
        assert_eq!(log.execs(0x1000), 1);
        assert!(log.pcs()[&0x1000].dest.is_none());
    }
}
