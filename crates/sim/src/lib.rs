//! # diag-sim — shared simulation API for the DiAG reproduction
//!
//! Defines what every processor model in the workspace has in common: the
//! steppable [`Machine`] trait ([`Machine::load`] a bare-metal program with
//! N hardware threads, advance it with [`Machine::step`], read
//! [`Machine::stats`]), the [`RunStats`] structure with the paper's stall
//! taxonomy (§7.3.2) and component-activity counters (Table 3 / Figure 11
//! granularity), the [`SimError`] failure modes, and the [`lockstep`]
//! differential driver that diffs two machines' commit streams.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod interp;
pub mod lockstep;
mod machine;
pub mod observe;
mod stats;

pub use lockstep::{run_lockstep, run_lockstep_prepared, Divergence, LockstepOutcome};
pub use machine::{machine_steps, Commit, Machine, SimError, StepOutcome};
pub use observe::{ObservationLog, ObservedRange, Observer, PcObserved, SharedObservations};
pub use stats::{Activity, RunStats, StallBreakdown, StallCause};
// Convenience re-exports so machine implementors and harnesses don't need
// a direct `diag-trace` dependency for the common plumbing types.
pub use diag_profile::{
    Bucket, Profile, ProfileCollector, ProfileMeta, Profiler, RegionSample, RegionStation,
    RetireSample, SharedCollector,
};
pub use diag_trace::{Counter, Counters, Tracer};

/// Default cycle limit for simulation runs, generous enough for every
/// workload in the workspace while still catching runaway programs.
pub const DEFAULT_CYCLE_LIMIT: u64 = 500_000_000;
