//! # diag-sim — shared simulation API for the DiAG reproduction
//!
//! Defines what every processor model in the workspace has in common: the
//! [`Machine`] trait (run a bare-metal program with N hardware threads),
//! the [`RunStats`] structure with the paper's stall taxonomy (§7.3.2) and
//! component-activity counters (Table 3 / Figure 11 granularity), and the
//! [`SimError`] failure modes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod interp;
mod machine;
mod stats;

pub use machine::{Machine, SimError};
pub use stats::{Activity, RunStats, StallBreakdown, StallCause};

/// Default cycle limit for simulation runs, generous enough for every
/// workload in the workspace while still catching runaway programs.
pub const DEFAULT_CYCLE_LIMIT: u64 = 500_000_000;
