//! The [`Machine`] abstraction implemented by every processor model.
//!
//! Machines are *externally steppable*: a program is mounted with
//! [`Machine::load`] and advanced one schedulable quantum at a time with
//! [`Machine::step`], which makes single-stepping debuggers, lockstep
//! differential testing (see [`crate::lockstep`]), and schedulers that
//! interleave many machines possible. [`Machine::run`] is a convenience
//! default that drives `load` + `step` to completion, so callers that only
//! want final results keep the one-call API.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diag_asm::Program;
use diag_isa::{ArchReg, StationTable};
use diag_profile::Profiler;
use diag_trace::Tracer;

use crate::stats::RunStats;

/// Errors a simulation run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded the configured cycle limit without halting.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// An undecodable instruction reached execution.
    IllegalInstruction {
        /// Address of the instruction.
        addr: u32,
        /// The raw word.
        word: u32,
    },
    /// The program counter left the text segment.
    PcOutOfRange {
        /// The wild program counter.
        pc: u32,
    },
    /// A memory access was misaligned for its size.
    Misaligned {
        /// The faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A SIMT region was malformed (e.g. backward branch inside the region,
    /// region does not fit in the processor — paper §4.4.3).
    InvalidSimtRegion {
        /// Description of the violation.
        reason: String,
    },
    /// The machine cannot make progress (e.g. circular lane dependency,
    /// which indicates a simulator bug rather than a program bug).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
    },
    /// [`Machine::step`] was called with no program loaded.
    NotLoaded,
    /// A hardware thread that already executed its halting `ecall` was
    /// stepped again (a scheduler bug — halted threads must be skipped).
    Halted,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => write!(f, "cycle limit of {limit} exceeded"),
            SimError::IllegalInstruction { addr, word } => {
                write!(f, "illegal instruction {word:#010x} at {addr:#x}")
            }
            SimError::PcOutOfRange { pc } => write!(f, "program counter {pc:#x} left text"),
            SimError::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#x}")
            }
            SimError::InvalidSimtRegion { reason } => write!(f, "invalid SIMT region: {reason}"),
            SimError::Deadlock { cycle } => write!(f, "no progress at cycle {cycle}"),
            SimError::NotLoaded => write!(f, "step called with no program loaded"),
            SimError::Halted => write!(f, "step called on a halted thread"),
        }
    }
}

impl std::error::Error for SimError {}

/// Process-wide count of [`Machine::step`] quanta driven by the default
/// [`Machine::run`]/[`Machine::run_prepared`] loops, counted once per
/// completed run to keep the hot loop free of per-step atomics.
static MACHINE_STEPS: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of [`Machine::step`] calls issued by the default
/// run loops so far. A counting hook for cache tests: a memoized
/// resubmission must leave this unchanged — zero simulation steps.
pub fn machine_steps() -> u64 {
    MACHINE_STEPS.load(Ordering::Relaxed)
}

/// What one [`Machine::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The machine made progress and has more work pending.
    Running,
    /// Every hardware thread has halted; [`Machine::stats`] is final.
    Halted,
}

impl StepOutcome {
    /// Whether this outcome ends the run.
    pub fn is_halted(self) -> bool {
        matches!(self, StepOutcome::Halted)
    }
}

/// One retired instruction, as observed at the machine's commit point.
///
/// Machines append these to their commit log when
/// [`Machine::set_commit_log`] is enabled; [`crate::lockstep`] compares the
/// per-thread streams of two machines to pinpoint the first divergent
/// retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// Hardware thread that retired the instruction.
    pub thread: u32,
    /// Instruction address.
    pub pc: u32,
    /// Destination register lane written, with the value (architectural
    /// writes only — `x0` writes and stores record `None`).
    pub dest: Option<(ArchReg, u32)>,
}

impl fmt::Display for Commit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{} pc={:#x}", self.thread, self.pc)?;
        match self.dest {
            Some((lane, value)) => write!(f, " {lane}={value:#x}"),
            None => write!(f, " (no reg write)"),
        }
    }
}

/// A processor model that can run a bare-metal [`Program`].
///
/// Threads follow the workspace convention: every hardware thread starts at
/// the program entry with `a0` = thread id, `a1` = thread count, and a
/// private stack pointer; a thread halts by executing `ecall`. The run ends
/// when all threads have halted.
///
/// # Stepping
///
/// The workspace machines are dependence-timed rather than
/// cycle-by-cycle, so the stepping quantum is one *retired unit of work* —
/// one dynamic instruction on most machines, one pipelined region
/// iteration batch in DiAG's SIMT mode, or internal scheduling work (wave
/// rotation) that retires nothing. Timing state (the machine clock)
/// advances by whatever the quantum cost; callers must not assume one step
/// equals one cycle.
pub trait Machine {
    /// Short human-readable machine name (e.g. `"diag-f4c32"`).
    fn name(&self) -> String;

    /// Mounts `program` for execution with `threads` hardware threads,
    /// resetting all architectural and timing state from any prior run.
    fn load(&mut self, program: &Program, threads: usize);

    /// [`Machine::load`], but with the program's predecoded
    /// [`StationTable`] supplied by the caller — the artifact-pipeline
    /// path, where one lowering is shared across every run of the same
    /// program instead of being rebuilt per [`Machine::load`].
    ///
    /// Machines that consume a whole-text station table (the baselines)
    /// override this to adopt `stations` instead of lowering their own;
    /// machines with per-cluster residency arenas (DiAG populates
    /// stations at line-load time, §4.2) ignore it and defer to `load`.
    /// `stations` must have been built from `program`'s text segment.
    fn load_prepared(&mut self, program: &Program, stations: &Arc<StationTable>, threads: usize) {
        let _ = stations;
        self.load(program, threads);
    }

    /// Advances the machine by one schedulable quantum.
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the failure modes; [`SimError::NotLoaded`] if
    /// no program is mounted or the machine already halted.
    fn step(&mut self) -> Result<StepOutcome, SimError>;

    /// Statistics of the current (or just-finished) run. Totals are
    /// final once [`Machine::step`] has returned [`StepOutcome::Halted`];
    /// before that they cover the work retired so far.
    fn stats(&self) -> RunStats;

    /// Installs a [`Tracer`] delivering this machine's cycle-level trace
    /// events (`diag-trace` vocabulary) to a sink. The tracer takes
    /// effect from the next [`Machine::load`]; installing
    /// [`Tracer::off`] (the default) makes every emission site a
    /// non-evaluating branch.
    ///
    /// Machines that are not instrumented ignore this and emit nothing.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Installs a [`Profiler`] collecting this machine's per-PC
    /// cycle-accounting samples (`diag-profile` vocabulary). Like
    /// [`Machine::set_tracer`], it takes effect from the next
    /// [`Machine::load`]; installing [`Profiler::off`] (the default)
    /// makes every sample site a non-evaluating branch.
    ///
    /// Machines that are not instrumented ignore this and record
    /// nothing.
    fn set_profiler(&mut self, _profiler: Profiler) {}

    /// Installs an [`Observer`](crate::Observer) recording this machine's
    /// per-PC value/address ranges for the static verifier's soundness
    /// check (`diag-verify` vocabulary). Like [`Machine::set_profiler`],
    /// it takes effect from the next [`Machine::load`]; installing
    /// [`Observer::off`](crate::Observer::off) (the default) makes every
    /// recording site a non-evaluating branch.
    ///
    /// Machines that are not instrumented ignore this and record
    /// nothing.
    fn set_observer(&mut self, _observer: crate::Observer) {}

    /// Enables or disables commit logging (disabled by default; logging
    /// every retirement costs memory proportional to the dynamic
    /// instruction count, so leave it off for performance runs).
    ///
    /// Machines that do not support commit logging ignore this; their
    /// [`Machine::take_commits`] stays empty.
    fn set_commit_log(&mut self, _enabled: bool) {}

    /// Drains the retirements logged since the last call (in per-thread
    /// program order).
    fn take_commits(&mut self) -> Vec<Commit> {
        Vec::new()
    }

    /// Runs `program` with `threads` hardware threads to completion.
    ///
    /// This is a convenience wrapper over [`Machine::load`] and
    /// [`Machine::step`]; override only to add behaviour, not to bypass
    /// the stepping interface.
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the failure modes.
    fn run(&mut self, program: &Program, threads: usize) -> Result<RunStats, SimError> {
        self.load(program, threads);
        let mut steps = 0u64;
        let result = loop {
            steps += 1;
            match self.step() {
                Ok(outcome) if outcome.is_halted() => break Ok(self.stats()),
                Ok(_) => {}
                Err(e) => break Err(e),
            }
        };
        MACHINE_STEPS.fetch_add(steps, Ordering::Relaxed);
        result
    }

    /// [`Machine::run`], but mounting prepared artifacts via
    /// [`Machine::load_prepared`] so the shared [`StationTable`] is
    /// adopted instead of re-lowered.
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the failure modes.
    fn run_prepared(
        &mut self,
        program: &Program,
        stations: &Arc<StationTable>,
        threads: usize,
    ) -> Result<RunStats, SimError> {
        self.load_prepared(program, stations, threads);
        let mut steps = 0u64;
        let result = loop {
            steps += 1;
            match self.step() {
                Ok(outcome) if outcome.is_halted() => break Ok(self.stats()),
                Ok(_) => {}
                Err(e) => break Err(e),
            }
        };
        MACHINE_STEPS.fetch_add(steps, Ordering::Relaxed);
        result
    }

    /// Reads a 32-bit word from the machine's memory after a run, for
    /// result verification.
    fn read_word(&self, addr: u32) -> u32;

    /// Reads an f32 from the machine's memory after a run.
    fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_word(addr))
    }

    /// The machine as [`std::any::Any`], for tools that need
    /// machine-specific features behind `dyn Machine` (e.g. DiAG's
    /// execution trace).
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let cases: Vec<SimError> = vec![
            SimError::CycleLimit { limit: 10 },
            SimError::IllegalInstruction {
                addr: 0x1000,
                word: 0,
            },
            SimError::PcOutOfRange { pc: 4 },
            SimError::Misaligned { addr: 3, size: 4 },
            SimError::InvalidSimtRegion {
                reason: "nested loop".to_string(),
            },
            SimError::Deadlock { cycle: 7 },
            SimError::NotLoaded,
            SimError::Halted,
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn commit_displays() {
        let c = Commit {
            thread: 0,
            pc: 0x1000,
            dest: Some((diag_isa::Reg::T0.into(), 42)),
        };
        assert!(c.to_string().contains("pc=0x1000"));
        let s = Commit {
            thread: 1,
            pc: 0x1004,
            dest: None,
        };
        assert!(s.to_string().contains("no reg write"));
    }
}
