//! The [`Machine`] abstraction implemented by every processor model.

use std::fmt;

use diag_asm::Program;

use crate::stats::RunStats;

/// Errors a simulation run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded the configured cycle limit without halting.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// An undecodable instruction reached execution.
    IllegalInstruction {
        /// Address of the instruction.
        addr: u32,
        /// The raw word.
        word: u32,
    },
    /// The program counter left the text segment.
    PcOutOfRange {
        /// The wild program counter.
        pc: u32,
    },
    /// A memory access was misaligned for its size.
    Misaligned {
        /// The faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A SIMT region was malformed (e.g. backward branch inside the region,
    /// region does not fit in the processor — paper §4.4.3).
    InvalidSimtRegion {
        /// Description of the violation.
        reason: String,
    },
    /// The machine cannot make progress (e.g. circular lane dependency,
    /// which indicates a simulator bug rather than a program bug).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => write!(f, "cycle limit of {limit} exceeded"),
            SimError::IllegalInstruction { addr, word } => {
                write!(f, "illegal instruction {word:#010x} at {addr:#x}")
            }
            SimError::PcOutOfRange { pc } => write!(f, "program counter {pc:#x} left text"),
            SimError::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#x}")
            }
            SimError::InvalidSimtRegion { reason } => write!(f, "invalid SIMT region: {reason}"),
            SimError::Deadlock { cycle } => write!(f, "no progress at cycle {cycle}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A processor model that can run a bare-metal [`Program`].
///
/// Threads follow the workspace convention: every hardware thread starts at
/// the program entry with `a0` = thread id, `a1` = thread count, and a
/// private stack pointer; a thread halts by executing `ecall`. The run ends
/// when all threads have halted.
pub trait Machine {
    /// Short human-readable machine name (e.g. `"diag-f4c32"`).
    fn name(&self) -> String;

    /// Runs `program` with `threads` hardware threads to completion.
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the failure modes.
    fn run(&mut self, program: &Program, threads: usize) -> Result<RunStats, SimError>;

    /// Reads a 32-bit word from the machine's memory after a run, for
    /// result verification.
    fn read_word(&self, addr: u32) -> u32;

    /// Reads an f32 from the machine's memory after a run.
    fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_word(addr))
    }

    /// The machine as [`std::any::Any`], for tools that need
    /// machine-specific features behind `dyn Machine` (e.g. DiAG's
    /// execution trace).
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let cases: Vec<SimError> = vec![
            SimError::CycleLimit { limit: 10 },
            SimError::IllegalInstruction { addr: 0x1000, word: 0 },
            SimError::PcOutOfRange { pc: 4 },
            SimError::Misaligned { addr: 3, size: 4 },
            SimError::InvalidSimtRegion { reason: "nested loop".to_string() },
            SimError::Deadlock { cycle: 7 },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
