//! Run statistics shared by every machine model.
//!
//! The DiAG core and the out-of-order baseline populate the same
//! [`RunStats`] structure so that the benchmark harness and the power model
//! (`diag-power`) can treat machines uniformly. The stall-cause taxonomy
//! follows the paper's §7.3.2 breakdown (memory / control / other), and the
//! activity counters follow the component granularity of Table 3 and
//! Figure 11 (PEs, FPUs, register lanes, memory, control).

use std::fmt;
use std::ops::{Add, AddAssign};

use diag_trace::{Counter, Counters};

// The stall-cause taxonomy is shared with the trace subsystem's
// stall-begin/end events (it lives in `diag-trace`, the bottom of the
// workspace dependency graph); re-exported here so existing
// `diag_sim::StallCause` users are unaffected.
pub use diag_trace::StallCause;

/// Stall-cycle counts by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles attributed to memory (cache misses, LSU queue, bus).
    pub memory: u64,
    /// Cycles attributed to control-flow changes.
    pub control: u64,
    /// Cycles attributed to structural hazards.
    pub structural: u64,
}

impl StallBreakdown {
    /// Total stall-source cycles.
    pub fn total(&self) -> u64 {
        self.memory + self.control + self.structural
    }

    /// Adds one stall event of the given cause.
    pub fn record(&mut self, cause: StallCause) {
        self.add_cycles(cause, 1);
    }

    /// Adds `cycles` stall cycles of the given cause.
    ///
    /// Machines route every stall-accounting site through this (paired
    /// with a trace stall-end event of the same length), which is what
    /// makes the trace subsystem's stall-attribution timeline reconcile
    /// exactly with this breakdown.
    pub fn add_cycles(&mut self, cause: StallCause, cycles: u64) {
        match cause {
            StallCause::Memory => self.memory += cycles,
            StallCause::Control => self.control += cycles,
            StallCause::Structural => self.structural += cycles,
        }
    }

    /// The count attributed to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::Memory => self.memory,
            StallCause::Control => self.control,
            StallCause::Structural => self.structural,
        }
    }

    /// Percentage share of each cause `(memory, control, structural)`;
    /// all zeros when no stalls were recorded.
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.total();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.memory as f64 / t * 100.0,
            self.control as f64 / t * 100.0,
            self.structural as f64 / t * 100.0,
        )
    }
}

impl Add for StallBreakdown {
    type Output = StallBreakdown;

    fn add(self, rhs: StallBreakdown) -> StallBreakdown {
        StallBreakdown {
            memory: self.memory + rhs.memory,
            control: self.control + rhs.control,
            structural: self.structural + rhs.structural,
        }
    }
}

impl AddAssign for StallBreakdown {
    fn add_assign(&mut self, rhs: StallBreakdown) {
        *self = *self + rhs;
    }
}

/// Per-component activity counters consumed by the energy model.
///
/// DiAG populates the PE/lane/cluster counters; the baseline populates the
/// frontend counters. Cache counters are populated by both from the shared
/// memory subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Cycles in which at least one PE (or FU) was executing.
    pub busy_cycles: u64,
    /// Sum over cycles of the number of actively-executing PEs (DiAG) or
    /// occupied functional units (baseline).
    pub pe_active_cycles: u64,
    /// Sum over cycles of PEs holding a loaded instruction (powered
    /// register-lane segments in DiAG).
    pub pe_resident_cycles: u64,
    /// FPU-active cycles (clock-gated otherwise, paper §6.1.3).
    pub fpu_active_cycles: u64,
    /// Integer ALU operations executed.
    pub int_ops: u64,
    /// Floating-point operations executed.
    pub fp_ops: u64,
    /// Loads issued to the memory subsystem.
    pub loads: u64,
    /// Stores issued to the memory subsystem.
    pub stores: u64,
    /// Register-lane write events (DiAG) / register-file writes (baseline).
    pub reg_writes: u64,
    /// Register-lane segment traversals (DiAG only): value transported
    /// across one buffered lane segment.
    pub lane_transports: u64,
    /// Memory-lane (store-forwarding) hits (DiAG only).
    pub memlane_hits: u64,
    /// Shared 512-bit bus beats (I-line loads + register-file transfers).
    pub bus_beats: u64,
    /// Instruction cache-line fetches.
    pub line_fetches: u64,
    /// Individual instruction decodes.
    pub decodes: u64,
    /// Instructions that executed from an already-loaded datapath (DiAG
    /// reuse, paper §4.3.2) — no fetch or decode was needed.
    pub reuse_commits: u64,
    /// Rename operations (baseline only).
    pub renames: u64,
    /// Issue-queue dispatches (baseline only).
    pub dispatches: u64,
    /// Issue events (baseline only).
    pub issues: u64,
    /// Reorder-buffer writes (baseline only).
    pub rob_writes: u64,
    /// Branch-predictor lookups (baseline only).
    pub bpred_lookups: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
}

impl From<&Counters> for Activity {
    /// Folds a `diag-trace` counter bank into the public activity
    /// aggregate. This is the single place the two vocabularies are
    /// zipped; a unit test asserts the mapping is exhaustive and
    /// value-preserving.
    fn from(c: &Counters) -> Activity {
        Activity {
            busy_cycles: c.get(Counter::BusyCycles),
            pe_active_cycles: c.get(Counter::PeActiveCycles),
            pe_resident_cycles: c.get(Counter::PeResidentCycles),
            fpu_active_cycles: c.get(Counter::FpuActiveCycles),
            int_ops: c.get(Counter::IntOps),
            fp_ops: c.get(Counter::FpOps),
            loads: c.get(Counter::Loads),
            stores: c.get(Counter::Stores),
            reg_writes: c.get(Counter::RegWrites),
            lane_transports: c.get(Counter::LaneTransports),
            memlane_hits: c.get(Counter::MemlaneHits),
            bus_beats: c.get(Counter::BusBeats),
            line_fetches: c.get(Counter::LineFetches),
            decodes: c.get(Counter::Decodes),
            reuse_commits: c.get(Counter::ReuseCommits),
            renames: c.get(Counter::Renames),
            dispatches: c.get(Counter::Dispatches),
            issues: c.get(Counter::Issues),
            rob_writes: c.get(Counter::RobWrites),
            bpred_lookups: c.get(Counter::BpredLookups),
            mispredicts: c.get(Counter::Mispredicts),
            l1d_accesses: c.get(Counter::L1dAccesses),
            l1d_misses: c.get(Counter::L1dMisses),
            l2_accesses: c.get(Counter::L2Accesses),
            l2_misses: c.get(Counter::L2Misses),
        }
    }
}

impl From<Counters> for Activity {
    fn from(c: Counters) -> Activity {
        Activity::from(&c)
    }
}

macro_rules! sum_fields {
    ($a:expr, $b:expr; $($f:ident),* $(,)?) => {
        Activity { $($f: $a.$f + $b.$f),* }
    };
}

impl Add for Activity {
    type Output = Activity;

    fn add(self, rhs: Activity) -> Activity {
        sum_fields!(self, rhs;
            busy_cycles, pe_active_cycles, pe_resident_cycles, fpu_active_cycles,
            int_ops, fp_ops, loads, stores, reg_writes, lane_transports,
            memlane_hits, bus_beats, line_fetches, decodes, reuse_commits,
            renames, dispatches, issues, rob_writes, bpred_lookups, mispredicts,
            l1d_accesses, l1d_misses, l2_accesses, l2_misses,
        )
    }
}

impl AddAssign for Activity {
    fn add_assign(&mut self, rhs: Activity) {
        *self = *self + rhs;
    }
}

/// Complete statistics for one program run on one machine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Architecturally committed instructions (all threads).
    pub committed: u64,
    /// Hardware threads that ran.
    pub threads: u64,
    /// Stall-source cycle attribution (paper §7.3.2).
    pub stalls: StallBreakdown,
    /// Component activity for the energy model.
    pub activity: Activity,
    /// Clock frequency in GHz the run is modelled at (paper Table 2).
    pub freq_ghz: f64,
}

impl RunStats {
    /// Committed instructions per cycle across all threads.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Wall-clock execution time in nanoseconds at the modelled frequency.
    pub fn time_ns(&self) -> f64 {
        if self.freq_ghz == 0.0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.freq_ghz
        }
    }

    /// Fraction of committed instructions that needed no fetch/decode
    /// (DiAG datapath reuse).
    pub fn reuse_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.activity.reuse_commits as f64 / self.committed as f64
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles: {}  committed: {}  IPC: {:.3}  threads: {}",
            self.cycles,
            self.committed,
            self.ipc(),
            self.threads
        )?;
        let (m, c, s) = self.stalls.shares();
        writeln!(
            f,
            "stalls: {} (memory {m:.1}%, control {c:.1}%, other {s:.1}%)",
            self.stalls.total()
        )?;
        write!(
            f,
            "fetch lines: {}  decodes: {}  reuse commits: {} ({:.1}%)",
            self.activity.line_fetches,
            self.activity.decodes,
            self.activity.reuse_commits,
            self.reuse_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_shares_sum_to_hundred() {
        let mut s = StallBreakdown::default();
        for _ in 0..60 {
            s.record(StallCause::Memory);
        }
        for _ in 0..30 {
            s.record(StallCause::Control);
        }
        for _ in 0..10 {
            s.record(StallCause::Structural);
        }
        let (m, c, o) = s.shares();
        assert!((m - 60.0).abs() < 1e-9);
        assert!((c - 30.0).abs() < 1e-9);
        assert!((o - 10.0).abs() < 1e-9);
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn empty_shares_are_zero() {
        let s = StallBreakdown::default();
        assert_eq!(s.shares(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn activity_addition() {
        let a = Activity {
            int_ops: 3,
            fp_ops: 1,
            ..Activity::default()
        };
        let b = Activity {
            int_ops: 4,
            l2_misses: 2,
            ..Activity::default()
        };
        let c = a + b;
        assert_eq!(c.int_ops, 7);
        assert_eq!(c.fp_ops, 1);
        assert_eq!(c.l2_misses, 2);
    }

    #[test]
    fn ipc_and_time() {
        let stats = RunStats {
            cycles: 1000,
            committed: 2500,
            freq_ghz: 2.0,
            ..RunStats::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
        assert!((stats.time_ns() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_ipc_is_zero() {
        assert_eq!(RunStats::default().ipc(), 0.0);
    }

    #[test]
    fn reuse_fraction() {
        let stats = RunStats {
            committed: 200,
            activity: Activity {
                reuse_commits: 150,
                ..Activity::default()
            },
            ..RunStats::default()
        };
        assert!((stats.reuse_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let text = RunStats::default().to_string();
        assert!(text.contains("cycles"));
    }

    #[test]
    fn counter_bank_maps_exhaustively_onto_activity() {
        // Give every counter a distinct value; the converted Activity
        // must (a) place each value on the right field (spot-checked)
        // and (b) conserve the grand total, which fails if any counter
        // were dropped or double-mapped.
        let mut bank = Counters::new();
        for (i, c) in Counter::ALL.iter().enumerate() {
            bank.add(*c, (i + 1) as u64);
        }
        let a = Activity::from(&bank);
        assert_eq!(a.busy_cycles, 1);
        assert_eq!(a.lane_transports, bank.get(Counter::LaneTransports));
        assert_eq!(a.mispredicts, bank.get(Counter::Mispredicts));
        assert_eq!(a.l2_misses, bank.get(Counter::L2Misses));
        let field_sum = (a + Activity::default()).into_iter_sum_for_test();
        assert_eq!(field_sum, bank.total());
    }

    impl Activity {
        /// Test-only: sum of every field, via the same macro list used
        /// by `Add` so a new field cannot be silently forgotten.
        fn into_iter_sum_for_test(self) -> u64 {
            let doubled = self + self;
            // (a + a) sums to 2×total; the difference catches any field
            // the macro list misses.
            let z = Activity::default();
            let single = self + z;
            assert_eq!(doubled.busy_cycles, 2 * single.busy_cycles);
            single.busy_cycles
                + single.pe_active_cycles
                + single.pe_resident_cycles
                + single.fpu_active_cycles
                + single.int_ops
                + single.fp_ops
                + single.loads
                + single.stores
                + single.reg_writes
                + single.lane_transports
                + single.memlane_hits
                + single.bus_beats
                + single.line_fetches
                + single.decodes
                + single.reuse_commits
                + single.renames
                + single.dispatches
                + single.issues
                + single.rob_writes
                + single.bpred_lookups
                + single.mispredicts
                + single.l1d_accesses
                + single.l1d_misses
                + single.l2_accesses
                + single.l2_misses
        }
    }

    #[test]
    fn stall_breakdown_add_is_associative_and_commutative() {
        let a = StallBreakdown {
            memory: 3,
            control: 1,
            structural: 0,
        };
        let b = StallBreakdown {
            memory: 10,
            control: 0,
            structural: 7,
        };
        let c = StallBreakdown {
            memory: 0,
            control: 5,
            structural: 2,
        };
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a + b, b + a);
        let mut acc = StallBreakdown::default();
        acc += a;
        acc += b;
        acc += c;
        assert_eq!(acc, a + b + c);
        assert_eq!(acc.total(), 28);
    }

    #[test]
    fn activity_add_is_associative() {
        let a = Activity {
            int_ops: 1,
            loads: 2,
            ..Activity::default()
        };
        let b = Activity {
            int_ops: 10,
            bus_beats: 4,
            ..Activity::default()
        };
        let c = Activity {
            decodes: 9,
            int_ops: 100,
            ..Activity::default()
        };
        assert_eq!((a + b) + c, a + (b + c));
        let mut acc = a;
        acc += b;
        assert_eq!(acc, a + b);
    }

    #[test]
    fn add_cycles_matches_repeated_record() {
        let mut bulk = StallBreakdown::default();
        bulk.add_cycles(StallCause::Memory, 7);
        bulk.add_cycles(StallCause::Structural, 2);
        let mut unit = StallBreakdown::default();
        for _ in 0..7 {
            unit.record(StallCause::Memory);
        }
        for _ in 0..2 {
            unit.record(StallCause::Structural);
        }
        assert_eq!(bulk, unit);
        for cause in StallCause::ALL {
            assert_eq!(bulk.get(cause), unit.get(cause));
        }
    }

    #[test]
    fn nonzero_shares_sum_to_hundred() {
        // Awkward totals (prime counts) must still sum to ~100%.
        let s = StallBreakdown {
            memory: 13,
            control: 7,
            structural: 29,
        };
        let (m, c, o) = s.shares();
        assert!((m + c + o - 100.0).abs() < 1e-9);
        assert!(m > 0.0 && c > 0.0 && o > 0.0);
    }

    #[test]
    fn run_stats_display_golden_snapshot() {
        let stats = RunStats {
            cycles: 1000,
            committed: 1500,
            threads: 2,
            stalls: StallBreakdown {
                memory: 60,
                control: 30,
                structural: 10,
            },
            activity: Activity {
                line_fetches: 12,
                decodes: 48,
                reuse_commits: 750,
                ..Activity::default()
            },
            freq_ghz: 2.0,
        };
        let expected = "cycles: 1000  committed: 1500  IPC: 1.500  threads: 2\n\
                        stalls: 100 (memory 60.0%, control 30.0%, other 10.0%)\n\
                        fetch lines: 12  decodes: 48  reuse commits: 750 (50.0%)";
        assert_eq!(stats.to_string(), expected);
    }
}
