//! Run statistics shared by every machine model.
//!
//! The DiAG core and the out-of-order baseline populate the same
//! [`RunStats`] structure so that the benchmark harness and the power model
//! (`diag-power`) can treat machines uniformly. The stall-cause taxonomy
//! follows the paper's §7.3.2 breakdown (memory / control / other), and the
//! activity counters follow the component granularity of Table 3 and
//! Figure 11 (PEs, FPUs, register lanes, memory, control).

use std::fmt;
use std::ops::{Add, AddAssign};

/// Why an instruction (or a whole pipeline) could not make progress in a
/// given cycle. Matches the paper's stall attribution (§7.3.2): only the
/// *source* of a stall is counted, not dependent instructions subsequently
/// stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Cache misses, full LSU queues, busy memory bus.
    Memory,
    /// Branch redirects, instruction-line reloads after control flow
    /// changes.
    Control,
    /// Structural hazards: shared bus busy, no free cluster, no free
    /// functional unit, full ROB/IQ.
    Structural,
}

/// Stall-cycle counts by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles attributed to memory (cache misses, LSU queue, bus).
    pub memory: u64,
    /// Cycles attributed to control-flow changes.
    pub control: u64,
    /// Cycles attributed to structural hazards.
    pub structural: u64,
}

impl StallBreakdown {
    /// Total stall-source cycles.
    pub fn total(&self) -> u64 {
        self.memory + self.control + self.structural
    }

    /// Adds one stall event of the given cause.
    pub fn record(&mut self, cause: StallCause) {
        match cause {
            StallCause::Memory => self.memory += 1,
            StallCause::Control => self.control += 1,
            StallCause::Structural => self.structural += 1,
        }
    }

    /// Percentage share of each cause `(memory, control, structural)`;
    /// all zeros when no stalls were recorded.
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.total();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.memory as f64 / t * 100.0,
            self.control as f64 / t * 100.0,
            self.structural as f64 / t * 100.0,
        )
    }
}

impl Add for StallBreakdown {
    type Output = StallBreakdown;

    fn add(self, rhs: StallBreakdown) -> StallBreakdown {
        StallBreakdown {
            memory: self.memory + rhs.memory,
            control: self.control + rhs.control,
            structural: self.structural + rhs.structural,
        }
    }
}

impl AddAssign for StallBreakdown {
    fn add_assign(&mut self, rhs: StallBreakdown) {
        *self = *self + rhs;
    }
}

/// Per-component activity counters consumed by the energy model.
///
/// DiAG populates the PE/lane/cluster counters; the baseline populates the
/// frontend counters. Cache counters are populated by both from the shared
/// memory subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Cycles in which at least one PE (or FU) was executing.
    pub busy_cycles: u64,
    /// Sum over cycles of the number of actively-executing PEs (DiAG) or
    /// occupied functional units (baseline).
    pub pe_active_cycles: u64,
    /// Sum over cycles of PEs holding a loaded instruction (powered
    /// register-lane segments in DiAG).
    pub pe_resident_cycles: u64,
    /// FPU-active cycles (clock-gated otherwise, paper §6.1.3).
    pub fpu_active_cycles: u64,
    /// Integer ALU operations executed.
    pub int_ops: u64,
    /// Floating-point operations executed.
    pub fp_ops: u64,
    /// Loads issued to the memory subsystem.
    pub loads: u64,
    /// Stores issued to the memory subsystem.
    pub stores: u64,
    /// Register-lane write events (DiAG) / register-file writes (baseline).
    pub reg_writes: u64,
    /// Register-lane segment traversals (DiAG only): value transported
    /// across one buffered lane segment.
    pub lane_transports: u64,
    /// Memory-lane (store-forwarding) hits (DiAG only).
    pub memlane_hits: u64,
    /// Shared 512-bit bus beats (I-line loads + register-file transfers).
    pub bus_beats: u64,
    /// Instruction cache-line fetches.
    pub line_fetches: u64,
    /// Individual instruction decodes.
    pub decodes: u64,
    /// Instructions that executed from an already-loaded datapath (DiAG
    /// reuse, paper §4.3.2) — no fetch or decode was needed.
    pub reuse_commits: u64,
    /// Rename operations (baseline only).
    pub renames: u64,
    /// Issue-queue dispatches (baseline only).
    pub dispatches: u64,
    /// Issue events (baseline only).
    pub issues: u64,
    /// Reorder-buffer writes (baseline only).
    pub rob_writes: u64,
    /// Branch-predictor lookups (baseline only).
    pub bpred_lookups: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
}

macro_rules! sum_fields {
    ($a:expr, $b:expr; $($f:ident),* $(,)?) => {
        Activity { $($f: $a.$f + $b.$f),* }
    };
}

impl Add for Activity {
    type Output = Activity;

    fn add(self, rhs: Activity) -> Activity {
        sum_fields!(self, rhs;
            busy_cycles, pe_active_cycles, pe_resident_cycles, fpu_active_cycles,
            int_ops, fp_ops, loads, stores, reg_writes, lane_transports,
            memlane_hits, bus_beats, line_fetches, decodes, reuse_commits,
            renames, dispatches, issues, rob_writes, bpred_lookups, mispredicts,
            l1d_accesses, l1d_misses, l2_accesses, l2_misses,
        )
    }
}

impl AddAssign for Activity {
    fn add_assign(&mut self, rhs: Activity) {
        *self = *self + rhs;
    }
}

/// Complete statistics for one program run on one machine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Architecturally committed instructions (all threads).
    pub committed: u64,
    /// Hardware threads that ran.
    pub threads: u64,
    /// Stall-source cycle attribution (paper §7.3.2).
    pub stalls: StallBreakdown,
    /// Component activity for the energy model.
    pub activity: Activity,
    /// Clock frequency in GHz the run is modelled at (paper Table 2).
    pub freq_ghz: f64,
}

impl RunStats {
    /// Committed instructions per cycle across all threads.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Wall-clock execution time in nanoseconds at the modelled frequency.
    pub fn time_ns(&self) -> f64 {
        if self.freq_ghz == 0.0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.freq_ghz
        }
    }

    /// Fraction of committed instructions that needed no fetch/decode
    /// (DiAG datapath reuse).
    pub fn reuse_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.activity.reuse_commits as f64 / self.committed as f64
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles: {}  committed: {}  IPC: {:.3}  threads: {}",
            self.cycles,
            self.committed,
            self.ipc(),
            self.threads
        )?;
        let (m, c, s) = self.stalls.shares();
        writeln!(
            f,
            "stalls: {} (memory {m:.1}%, control {c:.1}%, other {s:.1}%)",
            self.stalls.total()
        )?;
        write!(
            f,
            "fetch lines: {}  decodes: {}  reuse commits: {} ({:.1}%)",
            self.activity.line_fetches,
            self.activity.decodes,
            self.activity.reuse_commits,
            self.reuse_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_shares_sum_to_hundred() {
        let mut s = StallBreakdown::default();
        for _ in 0..60 {
            s.record(StallCause::Memory);
        }
        for _ in 0..30 {
            s.record(StallCause::Control);
        }
        for _ in 0..10 {
            s.record(StallCause::Structural);
        }
        let (m, c, o) = s.shares();
        assert!((m - 60.0).abs() < 1e-9);
        assert!((c - 30.0).abs() < 1e-9);
        assert!((o - 10.0).abs() < 1e-9);
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn empty_shares_are_zero() {
        let s = StallBreakdown::default();
        assert_eq!(s.shares(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn activity_addition() {
        let a = Activity {
            int_ops: 3,
            fp_ops: 1,
            ..Activity::default()
        };
        let b = Activity {
            int_ops: 4,
            l2_misses: 2,
            ..Activity::default()
        };
        let c = a + b;
        assert_eq!(c.int_ops, 7);
        assert_eq!(c.fp_ops, 1);
        assert_eq!(c.l2_misses, 2);
    }

    #[test]
    fn ipc_and_time() {
        let stats = RunStats {
            cycles: 1000,
            committed: 2500,
            freq_ghz: 2.0,
            ..RunStats::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
        assert!((stats.time_ns() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_ipc_is_zero() {
        assert_eq!(RunStats::default().ipc(), 0.0);
    }

    #[test]
    fn reuse_fraction() {
        let stats = RunStats {
            committed: 200,
            activity: Activity {
                reuse_commits: 150,
                ..Activity::default()
            },
            ..RunStats::default()
        };
        assert!((stats.reuse_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let text = RunStats::default().to_string();
        assert!(text.contains("cycles"));
    }
}
