//! A pure architectural interpreter for RV32IMF + the DiAG SIMT markers.
//!
//! Machines that are not lane-based (the out-of-order baseline and the
//! in-order reference) layer their timing models over this interpreter,
//! guaranteeing they agree architecturally with each other. The SIMT
//! markers execute with their sequential-loop semantics: `simt_s` is a
//! no-op and `simt_e` advances the control register by the paired
//! `simt_s`'s step register and loops while the bound holds — exactly the
//! behaviour DiAG's pipelined mode reproduces.

use diag_asm::Program;
use diag_isa::{
    exec, ArchReg, ExecKind, Inst, Reg, StationSlot, StationTable, INST_BYTES, NUM_LANES,
};
use diag_mem::MainMemory;

use crate::machine::SimError;

/// Architectural register + PC state of one hardware thread.
#[derive(Debug, Clone)]
pub struct ArchState {
    /// Unified register file (lanes 0..32 integer, 32..64 FP).
    pub regs: [u32; NUM_LANES],
    /// Current program counter.
    pub pc: u32,
    /// Whether the thread has halted (`ecall`, or `ebreak` without a trap
    /// vector).
    pub halted: bool,
}

impl ArchState {
    /// Creates thread `tid` of `threads` at `entry`, with the workspace's
    /// bare-metal convention: `a0` = thread id, `a1` = thread count, `sp`
    /// = private stack top.
    pub fn new_thread(entry: u32, tid: usize, threads: usize) -> ArchState {
        let mut regs = [0u32; NUM_LANES];
        regs[ArchReg::from(Reg::A0).index()] = tid as u32;
        regs[ArchReg::from(Reg::A1).index()] = threads as u32;
        regs[ArchReg::from(Reg::SP).index()] =
            diag_asm::STACK_TOP - (tid as u32) * diag_asm::STACK_STRIDE;
        ArchState {
            regs,
            pc: entry,
            halted: false,
        }
    }

    /// Reads a register lane (the `x0` lane always reads zero).
    pub fn reg(&self, lane: ArchReg) -> u32 {
        if lane.is_zero() {
            0
        } else {
            self.regs[lane.index()]
        }
    }

    fn set(&mut self, lane: ArchReg, value: u32) {
        if !lane.is_zero() {
            self.regs[lane.index()] = value;
        }
    }
}

/// Memory side effect of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEffect {
    /// No memory access.
    None,
    /// A load of `size` bytes from `addr`.
    Load {
        /// Accessed address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A store of `size` bytes to `addr`.
    Store {
        /// Accessed address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
}

/// Everything a timing model needs to know about one executed instruction.
#[derive(Debug, Clone)]
pub struct StepInfo {
    /// The decoded instruction.
    pub inst: Inst,
    /// Its address.
    pub pc: u32,
    /// The architecturally-correct next PC.
    pub next_pc: u32,
    /// Whether this instruction redirected control flow (taken branch,
    /// jump, trap, or looping `simt_e`).
    pub redirected: bool,
    /// The destination lane written, with the value.
    pub dest: Option<(ArchReg, u32)>,
    /// Memory effect.
    pub mem: MemEffect,
}

/// Executes one instruction architecturally.
///
/// # Errors
///
/// Returns the same [`SimError`] conditions as the machines: illegal
/// instruction, PC out of range, misaligned access, or a malformed
/// `simt_e` pairing.
pub fn arch_step(
    state: &mut ArchState,
    program: &Program,
    mem: &mut MainMemory,
    trap_vector: Option<u32>,
) -> Result<StepInfo, SimError> {
    let pc = state.pc;
    let word = program.fetch(pc).ok_or(SimError::PcOutOfRange { pc })?;
    let inst =
        diag_isa::decode(word).map_err(|_| SimError::IllegalInstruction { addr: pc, word })?;
    let mut next_pc = pc.wrapping_add(INST_BYTES);
    let mut redirected = false;
    let mut dest: Option<(ArchReg, u32)> = None;
    let mut mem_effect = MemEffect::None;

    let v = |r: Reg, s: &ArchState| s.reg(r.into());

    match inst {
        Inst::Lui { rd, imm } => dest = Some((rd.into(), imm as u32)),
        Inst::Auipc { rd, imm } => dest = Some((rd.into(), pc.wrapping_add(imm as u32))),
        Inst::OpImm { op, rd, rs1, imm } => {
            dest = Some((rd.into(), exec::alu(op, v(rs1, state), imm as u32)))
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            dest = Some((rd.into(), exec::alu(op, v(rs1, state), v(rs2, state))))
        }
        Inst::Jal { rd, offset } => {
            dest = Some((rd.into(), pc.wrapping_add(INST_BYTES)));
            next_pc = pc.wrapping_add(offset as u32);
            redirected = true;
        }
        Inst::Jalr { rd, rs1, offset } => {
            let target = v(rs1, state).wrapping_add(offset as u32) & !1;
            dest = Some((rd.into(), pc.wrapping_add(INST_BYTES)));
            next_pc = target;
            redirected = true;
        }
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            if exec::branch_taken(op, v(rs1, state), v(rs2, state)) {
                next_pc = pc.wrapping_add(offset as u32);
                redirected = true;
            }
        }
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let addr = v(rs1, state).wrapping_add(offset as u32);
            let size = op.size();
            if addr % size != 0 {
                return Err(SimError::Misaligned { addr, size });
            }
            let raw = mem.read(addr, size);
            dest = Some((rd.into(), exec::extend_load(op, raw)));
            mem_effect = MemEffect::Load { addr, size };
        }
        Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let addr = v(rs1, state).wrapping_add(offset as u32);
            let size = op.size();
            if addr % size != 0 {
                return Err(SimError::Misaligned { addr, size });
            }
            mem.write(addr, size, v(rs2, state));
            mem_effect = MemEffect::Store { addr, size };
        }
        Inst::Flw { rd, rs1, offset } => {
            let addr = v(rs1, state).wrapping_add(offset as u32);
            if addr % 4 != 0 {
                return Err(SimError::Misaligned { addr, size: 4 });
            }
            dest = Some((rd.into(), mem.read_u32(addr)));
            mem_effect = MemEffect::Load { addr, size: 4 };
        }
        Inst::Fsw { rs1, rs2, offset } => {
            let addr = v(rs1, state).wrapping_add(offset as u32);
            if addr % 4 != 0 {
                return Err(SimError::Misaligned { addr, size: 4 });
            }
            mem.write_u32(addr, state.reg(rs2.into()));
            mem_effect = MemEffect::Store { addr, size: 4 };
        }
        Inst::FpOp { op, rd, rs1, rs2 } => {
            dest = Some((
                rd.into(),
                exec::fp_op(op, state.reg(rs1.into()), state.reg(rs2.into())),
            ))
        }
        Inst::FpFma {
            op,
            rd,
            rs1,
            rs2,
            rs3,
        } => {
            dest = Some((
                rd.into(),
                exec::fp_fma(
                    op,
                    state.reg(rs1.into()),
                    state.reg(rs2.into()),
                    state.reg(rs3.into()),
                ),
            ))
        }
        Inst::FpCmp { op, rd, rs1, rs2 } => {
            dest = Some((
                rd.into(),
                exec::fp_cmp(op, state.reg(rs1.into()), state.reg(rs2.into())),
            ))
        }
        Inst::FpToInt { op, rd, rs1 } => {
            dest = Some((rd.into(), exec::fp_to_int(op, state.reg(rs1.into()))))
        }
        Inst::IntToFp { op, rd, rs1 } => {
            dest = Some((rd.into(), exec::int_to_fp(op, v(rs1, state))))
        }
        Inst::Fence => {}
        Inst::Ecall => state.halted = true,
        Inst::Ebreak => match trap_vector {
            Some(vector) => {
                next_pc = vector;
                redirected = true;
            }
            None => state.halted = true,
        },
        Inst::SimtS { rc, .. } => {
            // Sequential marker semantics: rc passes through.
            dest = Some((rc.into(), v(rc, state)));
        }
        Inst::SimtE {
            rc,
            r_end,
            l_offset,
        } => {
            let start_pc = pc.wrapping_add(l_offset as u32);
            let step = match program.decode_at(start_pc) {
                Some(Inst::SimtS { r_step, .. }) => v(r_step, state),
                other => {
                    return Err(SimError::InvalidSimtRegion {
                        reason: format!(
                            "simt_e at {pc:#x} points to {other:?} at {start_pc:#x}, not simt_s"
                        ),
                    })
                }
            };
            let rc_new = v(rc, state).wrapping_add(step);
            dest = Some((rc.into(), rc_new));
            if (rc_new as i32) < (v(r_end, state) as i32) {
                next_pc = start_pc.wrapping_add(INST_BYTES);
                redirected = true;
            }
        }
    }

    if let Some((lane, value)) = dest {
        state.set(lane, value);
    }
    state.pc = next_pc;
    Ok(StepInfo {
        inst,
        pc,
        next_pc,
        redirected,
        dest,
        mem: mem_effect,
    })
}

/// Executes one instruction architecturally from a predecoded
/// [`StationTable`] — the allocation- and decode-free counterpart of
/// [`arch_step`], used by the baseline machines' hot loops. [`arch_step`]
/// is kept as the independently-written reference the station path is
/// diffed against.
///
/// The reported [`StepInfo::dest`] filters `x0` destinations (a station
/// carries no `x0` writeback); every consumer of `dest` filters the zero
/// lane anyway, so the two step functions are observably identical.
///
/// # Errors
///
/// Returns the same [`SimError`] conditions as [`arch_step`].
pub fn station_step(
    state: &mut ArchState,
    stations: &StationTable,
    mem: &mut MainMemory,
    trap_vector: Option<u32>,
) -> Result<StepInfo, SimError> {
    let pc = state.pc;
    let st = match *stations.get(pc) {
        StationSlot::Ready(st) => st,
        StationSlot::Illegal { word } => {
            return Err(SimError::IllegalInstruction { addr: pc, word })
        }
        StationSlot::Empty => return Err(SimError::PcOutOfRange { pc }),
    };
    let mut next_pc = pc.wrapping_add(INST_BYTES);
    let mut redirected = false;
    let mut dest: Option<(ArchReg, u32)> = None;
    let mut mem_effect = MemEffect::None;
    let dst = |value: u32| st.dest.map(|d| (d, value));

    match st.kind {
        ExecKind::Const { value } => dest = dst(value),
        ExecKind::AluImm { op, rs1, imm } => dest = dst(exec::alu(op, state.reg(rs1), imm)),
        ExecKind::Alu { op, rs1, rs2 } => dest = dst(exec::alu(op, state.reg(rs1), state.reg(rs2))),
        ExecKind::Jal { target, link } => {
            dest = dst(link);
            next_pc = target;
            redirected = true;
        }
        ExecKind::Jalr { rs1, offset, link } => {
            let target = state.reg(rs1).wrapping_add(offset as u32) & !1;
            dest = dst(link);
            next_pc = target;
            redirected = true;
        }
        ExecKind::Branch {
            op,
            rs1,
            rs2,
            target,
        } => {
            if exec::branch_taken(op, state.reg(rs1), state.reg(rs2)) {
                next_pc = target;
                redirected = true;
            }
        }
        ExecKind::Load { op, rs1, offset } => {
            let addr = state.reg(rs1).wrapping_add(offset as u32);
            let size = op.size();
            if !addr.is_multiple_of(size) {
                return Err(SimError::Misaligned { addr, size });
            }
            let raw = mem.read(addr, size);
            dest = dst(exec::extend_load(op, raw));
            mem_effect = MemEffect::Load { addr, size };
        }
        ExecKind::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let addr = state.reg(rs1).wrapping_add(offset as u32);
            let size = op.size();
            if !addr.is_multiple_of(size) {
                return Err(SimError::Misaligned { addr, size });
            }
            mem.write(addr, size, state.reg(rs2));
            mem_effect = MemEffect::Store { addr, size };
        }
        ExecKind::LoadFp { rs1, offset } => {
            let addr = state.reg(rs1).wrapping_add(offset as u32);
            if !addr.is_multiple_of(4) {
                return Err(SimError::Misaligned { addr, size: 4 });
            }
            dest = dst(mem.read_u32(addr));
            mem_effect = MemEffect::Load { addr, size: 4 };
        }
        ExecKind::StoreFp { rs1, rs2, offset } => {
            let addr = state.reg(rs1).wrapping_add(offset as u32);
            if !addr.is_multiple_of(4) {
                return Err(SimError::Misaligned { addr, size: 4 });
            }
            mem.write_u32(addr, state.reg(rs2));
            mem_effect = MemEffect::Store { addr, size: 4 };
        }
        ExecKind::FpOp { op, rs1, rs2 } => {
            dest = dst(exec::fp_op(op, state.reg(rs1), state.reg(rs2)))
        }
        ExecKind::FpFma { op, rs1, rs2, rs3 } => {
            dest = dst(exec::fp_fma(
                op,
                state.reg(rs1),
                state.reg(rs2),
                state.reg(rs3),
            ))
        }
        ExecKind::FpCmp { op, rs1, rs2 } => {
            dest = dst(exec::fp_cmp(op, state.reg(rs1), state.reg(rs2)))
        }
        ExecKind::FpToInt { op, rs1 } => dest = dst(exec::fp_to_int(op, state.reg(rs1))),
        ExecKind::IntToFp { op, rs1 } => dest = dst(exec::int_to_fp(op, state.reg(rs1))),
        ExecKind::Fence => {}
        ExecKind::Ecall => state.halted = true,
        ExecKind::Ebreak => match trap_vector {
            Some(vector) => {
                next_pc = vector;
                redirected = true;
            }
            None => state.halted = true,
        },
        ExecKind::SimtS { rc } => {
            // Sequential marker semantics: rc passes through.
            dest = Some((rc, state.reg(rc)));
        }
        ExecKind::SimtE {
            rc,
            r_end,
            start_pc,
            step,
        } => {
            let step = match step {
                Some(r_step) => state.reg(r_step),
                None => {
                    let other = match stations.get(start_pc) {
                        StationSlot::Ready(s) => Some(s.inst),
                        _ => None,
                    };
                    return Err(SimError::InvalidSimtRegion {
                        reason: format!(
                            "simt_e at {pc:#x} points to {other:?} at {start_pc:#x}, not simt_s"
                        ),
                    });
                }
            };
            let rc_new = state.reg(rc).wrapping_add(step);
            dest = Some((rc, rc_new));
            if (rc_new as i32) < (state.reg(r_end) as i32) {
                next_pc = start_pc.wrapping_add(INST_BYTES);
                redirected = true;
            }
        }
    }

    if let Some((lane, value)) = dest {
        state.set(lane, value);
    }
    state.pc = next_pc;
    Ok(StepInfo {
        inst: st.inst,
        pc,
        next_pc,
        redirected,
        dest,
        mem: mem_effect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    fn run(src: &str) -> (ArchState, MainMemory, u64) {
        let program = assemble(src).unwrap();
        let mut mem = MainMemory::with_program(&program);
        let mut state = ArchState::new_thread(program.entry(), 0, 1);
        let mut steps = 0u64;
        while !state.halted {
            arch_step(&mut state, &program, &mut mem, None).unwrap();
            steps += 1;
            assert!(steps < 1_000_000, "runaway program");
        }
        (state, mem, steps)
    }

    #[test]
    fn fibonacci() {
        let (_, mem, _) = run(r#"
                li t0, 0
                li t1, 1
                li t2, 10
            loop:
                add t3, t0, t1
                mv t0, t1
                mv t1, t3
                addi t2, t2, -1
                bnez t2, loop
                sw t1, 0(zero)
                ecall
            "#);
        assert_eq!(mem.read_u32(0), 89);
    }

    #[test]
    fn function_call_and_return() {
        let (_, mem, _) = run(r#"
                li a0, 20
                call double
                sw a0, 0(zero)
                ecall
            double:
                add a0, a0, a0
                ret
            "#);
        assert_eq!(mem.read_u32(0), 40);
    }

    #[test]
    fn simt_markers_as_sequential_loop() {
        let (state, mem, _) = run(r#"
                li   t0, 0
                li   t1, 2
                li   t2, 10
                li   a2, 0
            head:
                simt_s t0, t1, t2, 1
                slli  t3, t0, 2
                sw    t0, 0(t3)
                simt_e t0, t2, head
                ecall
            "#);
        // Body executes for t0 = 0, 2, 4, 6, 8.
        for i in [0u32, 2, 4, 6, 8] {
            assert_eq!(mem.read_u32(4 * i), i);
        }
        assert_eq!(state.reg(Reg::T0.into()), 10);
    }

    #[test]
    fn thread_state_initialization() {
        let s = ArchState::new_thread(0x1000, 3, 8);
        assert_eq!(s.reg(Reg::A0.into()), 3);
        assert_eq!(s.reg(Reg::A1.into()), 8);
        assert_eq!(
            s.reg(Reg::SP.into()),
            diag_asm::STACK_TOP - 3 * diag_asm::STACK_STRIDE
        );
        assert_eq!(s.pc, 0x1000);
    }

    #[test]
    fn x0_writes_discarded() {
        let (state, _, _) = run("li t0, 5\nadd zero, t0, t0\necall\n");
        assert_eq!(state.reg(Reg::ZERO.into()), 0);
    }
}
