//! Lockstep differential execution of two machines.
//!
//! Steps a machine under test and a reference machine together over the
//! same program and diffs their committed-instruction streams at
//! retirement. Where plain result verification only says "the final memory
//! is wrong", the lockstep diff names the exact first retirement where the
//! two machines disagreed — the instruction address, the destination
//! register, and both values — which turns a cross-machine failure from an
//! archaeology project into a one-line report.
//!
//! Streams are compared per hardware thread in retirement order. All
//! workspace machines retire each thread's instructions in program order,
//! so two correct machines produce identical per-thread streams even when
//! their global interleavings differ.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use diag_asm::Program;
use diag_isa::StationTable;

use crate::machine::{Commit, Machine, SimError, StepOutcome};

/// Outcome of a lockstep comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum LockstepOutcome {
    /// Both machines halted with identical per-thread commit streams.
    Agree {
        /// Total retirements compared.
        commits: u64,
    },
    /// The streams diverged; execution stopped at the first mismatch.
    Diverged(Divergence),
}

impl LockstepOutcome {
    /// Whether the machines agreed.
    pub fn agreed(&self) -> bool {
        matches!(self, LockstepOutcome::Agree { .. })
    }
}

/// The first point where the two machines disagreed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Hardware thread whose streams diverged.
    pub thread: u32,
    /// Zero-based retirement index within that thread's stream.
    pub index: u64,
    /// What the machine under test retired (`None` = it halted early).
    pub left: Option<Commit>,
    /// What the reference retired (`None` = it halted early).
    pub right: Option<Commit>,
    /// Disassembly of the instruction at the diverging address, when the
    /// address decodes.
    pub disasm: Option<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at thread {} retirement #{}: ",
            self.thread, self.index
        )?;
        match (&self.left, &self.right) {
            (Some(l), Some(r)) => write!(f, "left retired [{l}], reference retired [{r}]")?,
            (Some(l), None) => write!(f, "left retired [{l}] but the reference had halted")?,
            (None, Some(r)) => write!(f, "left halted but the reference retired [{r}]")?,
            (None, None) => write!(f, "both halted (internal error)")?,
        }
        if let Some(d) = &self.disasm {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

/// Per-machine stream state during a lockstep run.
struct Side<'m> {
    machine: &'m mut dyn Machine,
    /// Per-thread pending commits not yet matched against the other side.
    pending: Vec<VecDeque<Commit>>,
    halted: bool,
    drained: u64,
}

impl<'m> Side<'m> {
    fn new(
        machine: &'m mut dyn Machine,
        program: &Program,
        stations: &Arc<StationTable>,
        threads: usize,
    ) -> Side<'m> {
        machine.load_prepared(program, stations, threads);
        machine.set_commit_log(true);
        Side {
            machine,
            pending: vec![VecDeque::new(); threads],
            halted: false,
            drained: 0,
        }
    }

    /// Steps once and files new commits under their threads.
    fn advance(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        if self.machine.step()? == StepOutcome::Halted {
            self.halted = true;
        }
        for c in self.machine.take_commits() {
            let t = c.thread as usize;
            if t < self.pending.len() {
                self.pending[t].push_back(c);
                self.drained += 1;
            }
        }
        Ok(())
    }
}

/// Runs `left` (the machine under test) and `right` (the reference) in
/// lockstep over `program` and compares their retirement streams.
///
/// Stops at the first divergence, when both machines halt in agreement,
/// or after `max_commits` matched retirements per thread (a safety bound
/// against infinite programs; pass `u64::MAX` for no bound — the
/// machines' own cycle limits still apply).
///
/// # Errors
///
/// Propagates the first [`SimError`] either machine raises. A machine
/// erroring is *not* a divergence — it is a failed run.
///
/// The program's [`StationTable`] is lowered once here and shared by both
/// sides; callers that already hold a prepared table (the artifact
/// pipeline) should use [`run_lockstep_prepared`] instead.
pub fn run_lockstep(
    left: &mut dyn Machine,
    right: &mut dyn Machine,
    program: &Program,
    threads: usize,
    max_commits: u64,
) -> Result<LockstepOutcome, SimError> {
    let stations = Arc::new(StationTable::build(program.text_base(), program.text()));
    run_lockstep_prepared(left, right, program, &stations, threads, max_commits)
}

/// [`run_lockstep`] over prepared artifacts: both machines mount the
/// caller's `stations` via [`Machine::load_prepared`], so a cached
/// lowering is reused instead of rebuilt per differential run.
///
/// # Errors
///
/// Propagates the first [`SimError`] either machine raises.
pub fn run_lockstep_prepared(
    left: &mut dyn Machine,
    right: &mut dyn Machine,
    program: &Program,
    stations: &Arc<StationTable>,
    threads: usize,
    max_commits: u64,
) -> Result<LockstepOutcome, SimError> {
    let threads = threads.max(1);
    let mut l = Side::new(left, program, stations, threads);
    let mut r = Side::new(right, program, stations, threads);
    let mut matched = 0u64;

    loop {
        // Advance whichever side is behind on drained commits, so the
        // pending queues stay short; on ties prefer the left machine.
        if !l.halted && (r.halted || l.drained <= r.drained) {
            l.advance()?;
        } else if !r.halted {
            r.advance()?;
        }

        // Match as much of the common per-thread prefixes as possible.
        for t in 0..threads {
            // Peek both before popping either: popping unconditionally
            // would discard a commit from the longer queue when the
            // other side has nothing to match it against yet.
            while let (Some(&a), Some(&b)) = (l.pending[t].front(), r.pending[t].front()) {
                l.pending[t].pop_front();
                r.pending[t].pop_front();
                if a != b {
                    return Ok(LockstepOutcome::Diverged(divergence(
                        program,
                        t as u32,
                        matched,
                        Some(a),
                        Some(b),
                    )));
                }
                matched += 1;
                if matched >= max_commits {
                    return Ok(LockstepOutcome::Agree { commits: matched });
                }
            }
        }

        if l.halted && r.halted {
            // One side retiring more than the other is also a divergence.
            for t in 0..threads {
                match (l.pending[t].front().copied(), r.pending[t].front().copied()) {
                    (None, None) => {}
                    (a, b) => {
                        return Ok(LockstepOutcome::Diverged(divergence(
                            program, t as u32, matched, a, b,
                        )))
                    }
                }
            }
            return Ok(LockstepOutcome::Agree { commits: matched });
        }
    }
}

fn divergence(
    program: &Program,
    thread: u32,
    index: u64,
    left: Option<Commit>,
    right: Option<Commit>,
) -> Divergence {
    let disasm = left
        .or(right)
        .and_then(|c| program.decode_at(c.pc))
        .map(|inst| inst.to_string());
    Divergence {
        thread,
        index,
        left,
        right,
        disasm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_report_is_readable() {
        let d = Divergence {
            thread: 0,
            index: 17,
            left: Some(Commit {
                thread: 0,
                pc: 0x1010,
                dest: Some((diag_isa::Reg::T1.into(), 5)),
            }),
            right: Some(Commit {
                thread: 0,
                pc: 0x1010,
                dest: Some((diag_isa::Reg::T1.into(), 6)),
            }),
            disasm: Some("addi t1, t1, 1".to_string()),
        };
        let text = d.to_string();
        assert!(text.contains("retirement #17"));
        assert!(text.contains("addi t1, t1, 1"));
    }
}
