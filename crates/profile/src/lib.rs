//! # diag-profile — top-down cycle-accounting profiler
//!
//! Maps every cycle of a simulated run back to the static instruction
//! that consumed it. Machines feed the profiler through three cheap
//! hooks — a per-retirement sample, a per-stall attribution, and a
//! per-SIMT-region bulk sample — and the collected per-PC records
//! reconcile *exactly* with the run's `RunStats`/`StallBreakdown`, the
//! same contract the stall-attribution timeline already honours.
//!
//! The accounting is hierarchical in the top-down style (Yasin's
//! method, adapted to DiAG's §4 structures): each retired instruction's
//! commit-clock delta is partitioned into five exhaustive, disjoint
//! [`Bucket`]s:
//!
//! * **retiring** — useful execution plus commit-bandwidth queueing;
//! * **lane-wait** — waiting on source register lanes (RAW through the
//!   lane file, §4.1);
//! * **memory-bound** — execution intervals of loads/stores, including
//!   LSU queueing and cache misses (§5.2);
//! * **ring-transit** — redirect floors, PE-slot occupancy, pipeline
//!   back-pressure (ROB/IQ on the baseline), and SIMT pipeline fill;
//! * **line-load-frontend** — waiting for a cluster's instruction line
//!   to be fetched and predecoded (§4.3/§5.1.1), or the baseline's
//!   frontend latency.
//!
//! Because each delta is measured between consecutive commit-clock
//! readings of one hardware thread, the per-PC self-cycles *telescope*:
//! their sum equals the thread's end clock minus its start clock with no
//! approximation, which is what [`Profile::reconcile`] enforces.
//!
//! Like [`diag_trace::Tracer`], a disabled [`Profiler`] costs one
//! `Option` discriminant test per hook; sample-building closures are
//! never evaluated.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collect;
mod diff;
mod frames;
mod model;
mod report;

pub use collect::{
    Bucket, PcRecord, ProfileCollector, Profiler, RegionSample, RegionStation, RetireSample,
    SharedCollector,
};
pub use diff::diff_profiles;
pub use frames::{to_folded, FrameMap};
pub use model::{CycleModel, PcEntry, Profile, ProfileMeta, PROFILE_SCHEMA};
pub use report::render_text;
