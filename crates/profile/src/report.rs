//! Human-readable text rendering: top-down summary plus an
//! annotated-disassembly hottest-PC table.

use diag_trace::StallCause;

use crate::collect::Bucket;
use crate::model::Profile;

/// Renders the profile as an annotated text report: run header,
/// top-down bucket breakdown with percentages, stall-source totals, and
/// the `top` hottest PCs by self cycles with their disassembly.
pub fn render_text(profile: &Profile, top: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {} on {} (threads={}, simt={}, cycle model {})",
        profile.workload,
        profile.machine,
        profile.threads,
        profile.simt,
        profile.cycle_model.name()
    );
    let _ = writeln!(
        out,
        "cycles: {}  committed: {}",
        profile.total_cycles, profile.committed
    );
    if !profile.host.is_empty() {
        let host: Vec<String> = profile
            .host
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = writeln!(out, "host: {}", host.join(" "));
    }
    out.push('\n');

    let topdown = profile.topdown();
    let total: u64 = topdown.iter().sum::<u64>().max(1);
    out.push_str("top-down (self cycles over all threads):\n");
    for (i, bucket) in Bucket::ALL.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<20} {:>12}  {:>5.1}%",
            bucket.name(),
            topdown[i],
            topdown[i] as f64 * 100.0 / total as f64
        );
    }
    let stall_total: u64 = profile.stalls.iter().sum();
    if stall_total > 0 {
        let stalls: Vec<String> = StallCause::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{}={}", c.name(), profile.stalls[i]))
            .collect();
        let _ = writeln!(out, "stall sources: {}", stalls.join(" "));
    }
    out.push('\n');

    let mut ranked: Vec<usize> = (0..profile.pcs.len()).collect();
    ranked.sort_by_key(|&i| {
        (
            std::cmp::Reverse(profile.pcs[i].self_cycles),
            profile.pcs[i].pc,
        )
    });
    let _ = writeln!(
        out,
        "hottest {} of {} PCs:",
        top.min(ranked.len()),
        ranked.len()
    );
    let _ = writeln!(
        out,
        "  {:>10} {:>10} {:>10} {:>6} {:>9} {:>7} {:>7}  disasm",
        "pc", "self", "cum", "self%", "issues", "reuse", "station"
    );
    for &i in ranked.iter().take(top) {
        let e = &profile.pcs[i];
        let _ = writeln!(
            out,
            "  {:>#10x} {:>10} {:>10} {:>5.1}% {:>9} {:>7} {:>3}.{:<3}  {}",
            e.pc,
            e.self_cycles,
            e.cum_cycles,
            e.self_cycles as f64 * 100.0 / total as f64,
            e.issues,
            e.reuse,
            e.cluster,
            e.slot,
            e.disasm
        );
        let mix: Vec<String> = Bucket::ALL
            .iter()
            .enumerate()
            .filter(|&(j, _)| e.buckets[j] > 0)
            .map(|(j, b)| format!("{}={}", b.name(), e.buckets[j]))
            .collect();
        if !mix.is_empty() {
            let _ = writeln!(out, "             {}", mix.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{ProfileCollector, Profiler, RetireSample};
    use crate::model::{CycleModel, Profile, ProfileMeta};

    #[test]
    fn report_lists_hottest_pc_first() {
        let shared = ProfileCollector::shared();
        let p = Profiler::to_shared(&shared);
        p.retire(|| RetireSample {
            pc: 0x200,
            cluster: 1,
            slot: 2,
            reused: true,
            parts: [2, 0, 0, 0, 0],
        });
        p.retire(|| RetireSample {
            pc: 0x204,
            cluster: 1,
            slot: 3,
            reused: false,
            parts: [0, 0, 8, 0, 0],
        });
        p.thread_span(0, 0, 10);
        let profile = Profile::build(
            &shared.borrow(),
            ProfileMeta {
                workload: "unit".to_string(),
                machine: "diag".to_string(),
                threads: 1,
                simt: false,
                cycle_model: CycleModel::Wallclock,
                total_cycles: 10,
                committed: 2,
                stalls: [0; 3],
                host: Vec::new(),
            },
            None,
        );
        let text = render_text(&profile, 10);
        let hot = text.find("0x204").expect("hot pc present");
        let cold = text.find("0x200").expect("cold pc present");
        assert!(hot < cold, "hottest PC should be listed first:\n{text}");
        assert!(text.contains("memory_bound=8"));
        assert!(text.contains("top-down"));
    }
}
