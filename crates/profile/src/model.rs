//! The finished [`Profile`] document: built from a collector, exported
//! to / parsed from deterministic JSON, and reconciled exactly against
//! the run's aggregate statistics.

use diag_asm::Program;
use diag_trace::{json, StallCause};

use crate::collect::{Bucket, ProfileCollector};
use crate::frames::FrameMap;

/// Schema identifier written into (and required from) profile JSON.
pub const PROFILE_SCHEMA: &str = "diag-profile-v1";

/// How a machine's `RunStats.cycles` relates to per-thread clocks, which
/// decides the reconciliation identity [`Profile::reconcile`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleModel {
    /// `cycles` is the *sum* of per-thread clocks (the in-order
    /// reference time-slices one core), so per-PC self-cycles sum to
    /// `cycles` directly.
    Additive,
    /// `cycles` is the *latest* absolute end clock over all threads
    /// (DiAG rings and the OoO cores run concurrently), so per-PC
    /// self-cycles sum to the per-thread span total while `cycles`
    /// equals the maximum thread end clock.
    Wallclock,
}

impl CycleModel {
    /// Stable lowercase name used in exported profiles.
    pub fn name(self) -> &'static str {
        match self {
            CycleModel::Additive => "additive",
            CycleModel::Wallclock => "wallclock",
        }
    }

    fn parse(s: &str) -> Option<CycleModel> {
        match s {
            "additive" => Some(CycleModel::Additive),
            "wallclock" => Some(CycleModel::Wallclock),
            _ => None,
        }
    }
}

/// Run-level metadata a profile is built with, taken from the machine's
/// final `RunStats` (which is what makes reconciliation meaningful).
#[derive(Debug, Clone)]
pub struct ProfileMeta {
    /// Workload name.
    pub workload: String,
    /// Machine key (`diag` / `ooo` / `inorder`).
    pub machine: String,
    /// Hardware threads of the run.
    pub threads: u64,
    /// Whether SIMT pipelining was enabled.
    pub simt: bool,
    /// The machine's cycle model (see [`CycleModel`]).
    pub cycle_model: CycleModel,
    /// `RunStats.cycles` of the run.
    pub total_cycles: u64,
    /// `RunStats.committed` of the run.
    pub committed: u64,
    /// `StallBreakdown` totals in [`StallCause::ALL`] order.
    pub stalls: [u64; 3],
    /// Host attribution entries (rustc version, git rev, …), in
    /// insertion order.
    pub host: Vec<(String, String)>,
}

/// Profile of one static instruction address.
#[derive(Debug, Clone, PartialEq)]
pub struct PcEntry {
    /// Instruction address.
    pub pc: u32,
    /// Disassembly (empty when the program was not supplied).
    pub disasm: String,
    /// Cluster of the most recent executing station.
    pub cluster: u32,
    /// PE slot within the cluster.
    pub slot: u32,
    /// Dynamic executions.
    pub issues: u64,
    /// Executions served from the resident datapath.
    pub reuse: u64,
    /// Total attributed cycles (sum of `buckets`).
    pub self_cycles: u64,
    /// Self cycles of this PC plus every PC sharing its innermost
    /// natural loop (equals `self_cycles` until
    /// [`Profile::apply_frames`] supplies the loop nesting).
    pub cum_cycles: u64,
    /// Top-down bucket cycles ([`Bucket::ALL`] order).
    pub buckets: [u64; 5],
    /// Stall-source cycles ([`StallCause::ALL`] order).
    pub stalls: [u64; 3],
}

/// A complete per-PC cycle-accounting profile of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Workload name.
    pub workload: String,
    /// Machine key.
    pub machine: String,
    /// Hardware threads.
    pub threads: u64,
    /// Whether SIMT pipelining was enabled.
    pub simt: bool,
    /// Cycle model of the machine.
    pub cycle_model: CycleModel,
    /// `RunStats.cycles`.
    pub total_cycles: u64,
    /// `RunStats.committed`.
    pub committed: u64,
    /// `StallBreakdown` totals ([`StallCause::ALL`] order).
    pub stalls: [u64; 3],
    /// Host attribution entries, in insertion order.
    pub host: Vec<(String, String)>,
    /// `(thread, start_clock, end_clock)` spans, sorted by thread id.
    pub thread_spans: Vec<(u32, u64, u64)>,
    /// Per-PC entries, sorted by address.
    pub pcs: Vec<PcEntry>,
}

impl Profile {
    /// Builds a profile from a collector and run metadata. When
    /// `program` is given, entries carry disassembly text.
    pub fn build(
        collector: &ProfileCollector,
        meta: ProfileMeta,
        program: Option<&Program>,
    ) -> Profile {
        let pcs = collector
            .pcs
            .iter()
            .map(|(&pc, rec)| {
                let disasm = program
                    .and_then(|p| p.decode_at(pc))
                    .map(|inst| inst.to_string())
                    .unwrap_or_default();
                let self_cycles = rec.self_cycles();
                PcEntry {
                    pc,
                    disasm,
                    cluster: rec.cluster,
                    slot: rec.slot,
                    issues: rec.issues,
                    reuse: rec.reuse,
                    self_cycles,
                    cum_cycles: self_cycles,
                    buckets: rec.buckets,
                    stalls: rec.stalls,
                }
            })
            .collect();
        let mut thread_spans = collector.threads.clone();
        thread_spans.sort_by_key(|&(t, s, e)| (t, s, e));
        Profile {
            workload: meta.workload,
            machine: meta.machine,
            threads: meta.threads,
            simt: meta.simt,
            cycle_model: meta.cycle_model,
            total_cycles: meta.total_cycles,
            committed: meta.committed,
            stalls: meta.stalls,
            host: meta.host,
            thread_spans,
            pcs,
        }
    }

    /// Top-down totals over every PC ([`Bucket::ALL`] order).
    pub fn topdown(&self) -> [u64; 5] {
        let mut totals = [0u64; 5];
        for e in &self.pcs {
            for (acc, b) in totals.iter_mut().zip(e.buckets) {
                *acc += b;
            }
        }
        totals
    }

    /// Sum of per-PC self cycles.
    pub fn self_total(&self) -> u64 {
        self.pcs.iter().map(|e| e.self_cycles).sum()
    }

    /// Sum of per-thread `[start, end)` span lengths.
    pub fn span_total(&self) -> u64 {
        self.thread_spans.iter().map(|&(_, s, e)| e - s).sum()
    }

    /// Recomputes cumulative cycles from a loop-nest [`FrameMap`]: a
    /// PC's `cum_cycles` becomes the self-cycle sum of every PC whose
    /// innermost `loop@…` frame matches its own (PCs outside any loop
    /// keep `cum == self`).
    pub fn apply_frames(&mut self, frames: &FrameMap) {
        use std::collections::BTreeMap;
        let mut loop_totals: BTreeMap<&str, u64> = BTreeMap::new();
        let keys: Vec<Option<&str>> = self
            .pcs
            .iter()
            .map(|e| frames.innermost_loop(e.pc))
            .collect();
        for (e, key) in self.pcs.iter().zip(&keys) {
            if let Some(k) = key {
                *loop_totals.entry(k).or_default() += e.self_cycles;
            }
        }
        for (e, key) in self.pcs.iter_mut().zip(&keys) {
            e.cum_cycles = match key {
                Some(k) => loop_totals[k],
                None => e.self_cycles,
            };
        }
    }

    /// Verifies the exact-accounting contract against the run metadata
    /// the profile was built with:
    ///
    /// 1. every entry's buckets sum to its `self_cycles`;
    /// 2. per-PC self cycles sum to the per-thread span total
    ///    (telescoping);
    /// 3. the cycle-model identity holds — additive: span total equals
    ///    `total_cycles`; wallclock: the latest thread end clock equals
    ///    `total_cycles`;
    /// 4. per-PC stall columns sum to the `StallBreakdown` totals;
    /// 5. per-PC issues sum to `committed`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first identity that failed.
    pub fn reconcile(&self) -> Result<(), String> {
        for e in &self.pcs {
            let sum: u64 = e.buckets.iter().sum();
            if sum != e.self_cycles {
                return Err(format!(
                    "pc {:#x}: bucket sum {sum} != self_cycles {}",
                    e.pc, e.self_cycles
                ));
            }
        }
        let self_total = self.self_total();
        let span_total = self.span_total();
        if self_total != span_total {
            return Err(format!(
                "per-PC self cycles ({self_total}) != thread span total ({span_total})"
            ));
        }
        match self.cycle_model {
            CycleModel::Additive => {
                if span_total != self.total_cycles {
                    return Err(format!(
                        "additive: span total {span_total} != total_cycles {}",
                        self.total_cycles
                    ));
                }
            }
            CycleModel::Wallclock => {
                let latest = self
                    .thread_spans
                    .iter()
                    .map(|&(_, _, e)| e)
                    .max()
                    .unwrap_or(0);
                if latest != self.total_cycles {
                    return Err(format!(
                        "wallclock: latest thread end {latest} != total_cycles {}",
                        self.total_cycles
                    ));
                }
            }
        }
        let mut stall_sums = [0u64; 3];
        for e in &self.pcs {
            for (acc, s) in stall_sums.iter_mut().zip(e.stalls) {
                *acc += s;
            }
        }
        if stall_sums != self.stalls {
            return Err(format!(
                "per-PC stalls {stall_sums:?} != StallBreakdown {:?}",
                self.stalls
            ));
        }
        let issues: u64 = self.pcs.iter().map(|e| e.issues).sum();
        if issues != self.committed {
            return Err(format!(
                "per-PC issues ({issues}) != committed ({})",
                self.committed
            ));
        }
        Ok(())
    }

    /// Renders the profile as its canonical JSON document. The encoding
    /// is byte-deterministic: fixed key order, integers only, sorted
    /// entries — two identical runs produce identical bytes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096 + self.pcs.len() * 256);
        let _ = write!(out, "{{\n  \"schema\": \"{PROFILE_SCHEMA}\",\n");
        let _ = writeln!(out, "  \"workload\": \"{}\",", escape(&self.workload));
        let _ = writeln!(out, "  \"machine\": \"{}\",", escape(&self.machine));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"simt\": {},", self.simt);
        let _ = writeln!(out, "  \"cycle_model\": \"{}\",", self.cycle_model.name());
        let _ = writeln!(out, "  \"total_cycles\": {},", self.total_cycles);
        let _ = writeln!(out, "  \"committed\": {},", self.committed);
        out.push_str("  \"stalls\": {");
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if i > 0 { ", " } else { "" },
                cause.name(),
                self.stalls[i]
            );
        }
        out.push_str("},\n  \"topdown\": {");
        let topdown = self.topdown();
        for (i, bucket) in Bucket::ALL.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if i > 0 { ", " } else { "" },
                bucket.name(),
                topdown[i]
            );
        }
        out.push_str("},\n  \"host\": {");
        for (i, (k, v)) in self.host.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": \"{}\"",
                if i > 0 { ", " } else { "" },
                escape(k),
                escape(v)
            );
        }
        out.push_str("},\n  \"thread_spans\": [\n");
        for (i, &(t, s, e)) in self.thread_spans.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"thread\": {t}, \"start\": {s}, \"end\": {e}}}{}",
                if i + 1 < self.thread_spans.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        out.push_str("  ],\n  \"pcs\": [\n");
        for (i, e) in self.pcs.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"pc\": {}, \"disasm\": \"{}\", \"cluster\": {}, \"slot\": {}, \
                 \"issues\": {}, \"reuse\": {}, \"self_cycles\": {}, \"cum_cycles\": {}",
                e.pc,
                escape(&e.disasm),
                e.cluster,
                e.slot,
                e.issues,
                e.reuse,
                e.self_cycles,
                e.cum_cycles
            );
            for (j, bucket) in Bucket::ALL.iter().enumerate() {
                let _ = write!(out, ", \"{}\": {}", bucket.name(), e.buckets[j]);
            }
            for (j, cause) in StallCause::ALL.iter().enumerate() {
                let _ = write!(out, ", \"{}\": {}", cause.name(), e.stalls[j]);
            }
            let _ = writeln!(out, "}}{}", if i + 1 < self.pcs.len() { "," } else { "" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a profile back from the JSON a previous run wrote.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON, carries a
    /// different schema identifier, or lacks expected fields.
    pub fn from_json(text: &str) -> Result<Profile, String> {
        let doc = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != PROFILE_SCHEMA {
            return Err(format!("schema `{schema}` is not `{PROFILE_SCHEMA}`"));
        }
        let get_str = |k: &str| {
            doc.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing `{k}`"))
        };
        let get_u64 = |v: Option<&json::Value>, what: &str| {
            v.and_then(|v| v.as_num())
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing `{what}`"))
        };
        let cycle_model_name = get_str("cycle_model")?;
        let cycle_model = CycleModel::parse(&cycle_model_name)
            .ok_or_else(|| format!("unknown cycle model `{cycle_model_name}`"))?;
        let simt = matches!(doc.get("simt"), Some(json::Value::Bool(true)));
        let mut stalls = [0u64; 3];
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            stalls[i] = get_u64(
                doc.get("stalls").and_then(|s| s.get(cause.name())),
                cause.name(),
            )?;
        }
        let host = doc
            .get("host")
            .and_then(|v| v.as_obj())
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                    .collect()
            })
            .unwrap_or_default();
        let mut thread_spans = Vec::new();
        for row in doc
            .get("thread_spans")
            .and_then(|v| v.as_arr())
            .ok_or("missing `thread_spans`")?
        {
            thread_spans.push((
                get_u64(row.get("thread"), "thread")? as u32,
                get_u64(row.get("start"), "start")?,
                get_u64(row.get("end"), "end")?,
            ));
        }
        let mut pcs = Vec::new();
        for row in doc
            .get("pcs")
            .and_then(|v| v.as_arr())
            .ok_or("missing `pcs`")?
        {
            let mut buckets = [0u64; 5];
            for (i, bucket) in Bucket::ALL.iter().enumerate() {
                buckets[i] = get_u64(row.get(bucket.name()), bucket.name())?;
            }
            let mut pc_stalls = [0u64; 3];
            for (i, cause) in StallCause::ALL.iter().enumerate() {
                pc_stalls[i] = get_u64(row.get(cause.name()), cause.name())?;
            }
            pcs.push(PcEntry {
                pc: get_u64(row.get("pc"), "pc")? as u32,
                disasm: row
                    .get("disasm")
                    .and_then(|v| v.as_str())
                    .unwrap_or_default()
                    .to_string(),
                cluster: get_u64(row.get("cluster"), "cluster")? as u32,
                slot: get_u64(row.get("slot"), "slot")? as u32,
                issues: get_u64(row.get("issues"), "issues")?,
                reuse: get_u64(row.get("reuse"), "reuse")?,
                self_cycles: get_u64(row.get("self_cycles"), "self_cycles")?,
                cum_cycles: get_u64(row.get("cum_cycles"), "cum_cycles")?,
                buckets,
                stalls: pc_stalls,
            });
        }
        Ok(Profile {
            workload: get_str("workload")?,
            machine: get_str("machine")?,
            threads: get_u64(doc.get("threads"), "threads")?,
            simt,
            cycle_model,
            total_cycles: get_u64(doc.get("total_cycles"), "total_cycles")?,
            committed: get_u64(doc.get("committed"), "committed")?,
            stalls,
            host,
            thread_spans,
            pcs,
        })
    }
}

/// Escapes a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Profiler, RetireSample};

    fn sample_profile() -> Profile {
        let shared = ProfileCollector::shared();
        let p = Profiler::to_shared(&shared);
        p.retire(|| RetireSample {
            pc: 0x1000,
            cluster: 0,
            slot: 0,
            reused: false,
            parts: [4, 0, 0, 0, 2],
        });
        p.retire(|| RetireSample {
            pc: 0x1004,
            cluster: 0,
            slot: 1,
            reused: false,
            parts: [1, 3, 0, 0, 0],
        });
        p.stall(0x1004, StallCause::Memory, 3);
        p.thread_span(0, 0, 10);
        let collector = shared.borrow();
        Profile::build(
            &collector,
            ProfileMeta {
                workload: "unit".to_string(),
                machine: "diag".to_string(),
                threads: 1,
                simt: false,
                cycle_model: CycleModel::Wallclock,
                total_cycles: 10,
                committed: 2,
                stalls: [3, 0, 0],
                host: vec![("rustc".to_string(), "test".to_string())],
            },
            None,
        )
    }

    #[test]
    fn reconcile_accepts_exact_profile() {
        sample_profile().reconcile().expect("identities hold");
    }

    #[test]
    fn reconcile_rejects_dropped_cycles() {
        let mut p = sample_profile();
        p.pcs[0].buckets[0] -= 1;
        p.pcs[0].self_cycles -= 1;
        assert!(p.reconcile().is_err());
    }

    #[test]
    fn json_round_trips() {
        let p = sample_profile();
        let text = p.to_json();
        let back = Profile::from_json(&text).expect("round-trip");
        assert_eq!(back, p);
        back.reconcile().expect("parsed profile still reconciles");
    }

    #[test]
    fn json_is_byte_deterministic() {
        assert_eq!(sample_profile().to_json(), sample_profile().to_json());
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(Profile::from_json("{\"schema\": \"nope\"}").is_err());
    }

    #[test]
    fn apply_frames_sums_loop_members() {
        let mut p = sample_profile();
        let mut frames = FrameMap::new();
        frames.insert(
            0x1000,
            vec!["loop@0x1000".to_string(), "0x1000".to_string()],
        );
        frames.insert(
            0x1004,
            vec!["loop@0x1000".to_string(), "0x1004".to_string()],
        );
        p.apply_frames(&frames);
        assert_eq!(p.pcs[0].cum_cycles, 10);
        assert_eq!(p.pcs[1].cum_cycles, 10);
    }
}
