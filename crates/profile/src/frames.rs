//! Stack-frame nesting for flamegraph export.
//!
//! A [`FrameMap`] assigns each instruction address a root-to-leaf frame
//! stack — typically `loop@…` frames from diag-analyze's natural-loop
//! tree, then a `bb@…` basic-block frame, then the leaf PC itself. The
//! map is built by the analysis layer (which owns the CFG); this crate
//! only consumes it, keeping diag-profile below diag-analyze in the
//! dependency order.

use std::collections::BTreeMap;

use crate::model::Profile;

/// Root-to-leaf frame stacks keyed by instruction address.
#[derive(Debug, Clone, Default)]
pub struct FrameMap {
    frames: BTreeMap<u32, Vec<String>>,
}

impl FrameMap {
    /// Creates an empty map.
    pub fn new() -> FrameMap {
        FrameMap::default()
    }

    /// Sets the frame stack (root first, leaf last) for one address.
    pub fn insert(&mut self, pc: u32, stack: Vec<String>) {
        self.frames.insert(pc, stack);
    }

    /// The frame stack for an address, root first.
    pub fn get(&self, pc: u32) -> Option<&[String]> {
        self.frames.get(&pc).map(Vec::as_slice)
    }

    /// The innermost `loop@…` frame for an address, if it sits inside a
    /// natural loop.
    pub fn innermost_loop(&self, pc: u32) -> Option<&str> {
        self.frames
            .get(&pc)?
            .iter()
            .rev()
            .map(String::as_str)
            .find(|f| f.starts_with("loop@"))
    }
}

/// Renders a profile in the collapsed-stack ("folded") format consumed
/// by inferno and speedscope: one `frame;frame;leaf count` line per PC
/// with non-zero self cycles, sorted by address for determinism.
///
/// When `frames` is given, each line nests the PC under its loop/block
/// stack; otherwise the stack is just `workload;pc: disasm`. Frame text
/// is sanitised (spaces to `_`, `;` to `:`) so the output always parses.
pub fn to_folded(profile: &Profile, frames: Option<&FrameMap>) -> String {
    let mut out = String::new();
    for e in &profile.pcs {
        if e.self_cycles == 0 {
            continue;
        }
        out.push_str(&sanitize(&profile.workload));
        match frames.and_then(|f| f.get(e.pc)) {
            Some(stack) => {
                for frame in stack {
                    out.push(';');
                    out.push_str(&sanitize(frame));
                }
            }
            None => {
                out.push(';');
                out.push_str(&sanitize(&leaf_label(e.pc, &e.disasm)));
            }
        }
        out.push(' ');
        out.push_str(&e.self_cycles.to_string());
        out.push('\n');
    }
    out
}

/// Default leaf label when no frame map supplies one.
pub(crate) fn leaf_label(pc: u32, disasm: &str) -> String {
    if disasm.is_empty() {
        format!("{pc:#x}")
    } else {
        format!("{pc:#x}: {disasm}")
    }
}

/// Replaces characters that would corrupt the folded format.
fn sanitize(frame: &str) -> String {
    frame.replace(' ', "_").replace(';', ":")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{ProfileCollector, Profiler, RetireSample};
    use crate::model::{CycleModel, Profile, ProfileMeta};

    fn profile() -> Profile {
        let shared = ProfileCollector::shared();
        let p = Profiler::to_shared(&shared);
        for (pc, cycles) in [(0x100u32, 6u64), (0x104, 4)] {
            p.retire(|| RetireSample {
                pc,
                cluster: 0,
                slot: 0,
                reused: false,
                parts: [cycles, 0, 0, 0, 0],
            });
        }
        p.thread_span(0, 0, 10);
        let collector = shared.borrow();
        Profile::build(
            &collector,
            ProfileMeta {
                workload: "my wl".to_string(),
                machine: "diag".to_string(),
                threads: 1,
                simt: false,
                cycle_model: CycleModel::Wallclock,
                total_cycles: 10,
                committed: 2,
                stalls: [0; 3],
                host: Vec::new(),
            },
            None,
        )
    }

    #[test]
    fn folded_lines_are_sanitised_and_counted() {
        let text = to_folded(&profile(), None);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["my_wl;0x100 6", "my_wl;0x104 4"]);
        // Every line: frames then a single trailing integer.
        for line in lines {
            let (stack, count) = line.rsplit_once(' ').expect("space separator");
            assert!(!stack.is_empty());
            count.parse::<u64>().expect("integer count");
        }
    }

    #[test]
    fn frame_map_nests_loops() {
        let mut frames = FrameMap::new();
        frames.insert(
            0x100,
            vec![
                "loop@0x100".to_string(),
                "bb@0x100".to_string(),
                "0x100: add x1, x2, x3".to_string(),
            ],
        );
        assert_eq!(frames.innermost_loop(0x100), Some("loop@0x100"));
        assert_eq!(frames.innermost_loop(0x104), None);
        let text = to_folded(&profile(), Some(&frames));
        assert!(text.contains("my_wl;loop@0x100;bb@0x100;0x100:_add_x1,_x2,_x3 6"));
        assert!(text.contains("my_wl;0x104 4"));
    }
}
