//! The collection side: the [`Profiler`] handle machines hold and the
//! [`ProfileCollector`] the samples accumulate into.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use diag_trace::StallCause;

/// One of the five exhaustive top-down cycle buckets. Every retired
/// instruction's commit-clock delta is partitioned across these with no
/// remainder, so per-bucket totals sum exactly to attributed cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Useful execution plus commit-bandwidth queueing.
    Retiring,
    /// Waiting on source register lanes (RAW dependences).
    LaneWait,
    /// Execution intervals of memory instructions (LSU queues, caches).
    MemoryBound,
    /// Redirect floors, PE-slot occupancy, ROB/IQ back-pressure, SIMT
    /// pipeline fill.
    RingTransit,
    /// Waiting for instruction-line fetch + predecode (or the baseline
    /// frontend).
    LineLoadFrontend,
}

impl Bucket {
    /// All buckets, in reporting order.
    pub const ALL: [Bucket; 5] = [
        Bucket::Retiring,
        Bucket::LaneWait,
        Bucket::MemoryBound,
        Bucket::RingTransit,
        Bucket::LineLoadFrontend,
    ];

    /// Stable snake_case name used in exported profiles.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Retiring => "retiring",
            Bucket::LaneWait => "lane_wait",
            Bucket::MemoryBound => "memory_bound",
            Bucket::RingTransit => "ring_transit",
            Bucket::LineLoadFrontend => "line_load_frontend",
        }
    }

    /// Index into per-bucket arrays (`ALL[b.index()] == b`).
    pub fn index(self) -> usize {
        match self {
            Bucket::Retiring => 0,
            Bucket::LaneWait => 1,
            Bucket::MemoryBound => 2,
            Bucket::RingTransit => 3,
            Bucket::LineLoadFrontend => 4,
        }
    }
}

/// Accumulated profile of one static instruction address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcRecord {
    /// Dynamic executions attributed to this PC.
    pub issues: u64,
    /// Executions served from the resident datapath (§4.3.2 reuse).
    pub reuse: u64,
    /// Cycles per top-down bucket ([`Bucket::ALL`] order).
    pub buckets: [u64; 5],
    /// Stall-source cycles per cause ([`StallCause::ALL`] order).
    pub stalls: [u64; 3],
    /// Cluster of the most recent station this PC executed on.
    pub cluster: u32,
    /// PE slot within the cluster of that station.
    pub slot: u32,
}

impl PcRecord {
    /// Total attributed cycles (sum over buckets).
    pub fn self_cycles(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// One retirement, pre-partitioned by the machine into bucket cycles.
#[derive(Debug, Clone, Copy)]
pub struct RetireSample {
    /// Instruction address.
    pub pc: u32,
    /// Cluster of the executing station.
    pub cluster: u32,
    /// PE slot within the cluster.
    pub slot: u32,
    /// Whether the execution reused the resident datapath.
    pub reused: bool,
    /// Commit-clock delta partitioned per bucket ([`Bucket::ALL`]
    /// order); the parts must sum to the delta exactly.
    pub parts: [u64; 5],
}

/// Per-station accumulators of one pipelined SIMT region execution.
#[derive(Debug, Clone, Copy)]
pub struct RegionStation {
    /// Body instruction address.
    pub pc: u32,
    /// Pipeline stage (cluster) the station occupies.
    pub cluster: u32,
    /// PE slot within the stage.
    pub slot: u32,
    /// Busy cycles accumulated across all instances.
    pub busy: u64,
    /// Instances that actually executed here (nullified ones excluded).
    pub execs: u64,
    /// Whether the station is a memory instruction.
    pub is_mem: bool,
}

/// One whole pipelined SIMT region execution, retired in bulk.
///
/// The collector distributes the region's commit-clock span across the
/// body PCs pro rata by accumulated busy cycles (integer floor); the
/// remainder — pipeline fill/drain and skew — lands on the `simt_s`
/// marker as [`Bucket::RingTransit`], so the span is conserved exactly.
#[derive(Debug, Clone)]
pub struct RegionSample {
    /// Address of the `simt_s` marker.
    pub pc_s: u32,
    /// Address of the `simt_e` marker.
    pub pc_e: u32,
    /// `(cluster, slot)` of the `simt_s` station.
    pub s_station: (u32, u32),
    /// `(cluster, slot)` of the `simt_e` station.
    pub e_station: (u32, u32),
    /// Commit-clock delta consumed by the region.
    pub span: u64,
    /// Whether the region's lines were fetched (first entry) rather
    /// than reused.
    pub fetched: bool,
    /// Per-station accumulators, in body order.
    pub stations: Vec<RegionStation>,
}

/// Accumulates profile samples for one run. Obtain a machine-side
/// handle with [`ProfileCollector::shared`] + [`Profiler::to_shared`].
#[derive(Debug, Default)]
pub struct ProfileCollector {
    pub(crate) pcs: BTreeMap<u32, PcRecord>,
    /// `(thread, start_clock, end_clock)` per hardware thread, in
    /// completion order.
    pub(crate) threads: Vec<(u32, u64, u64)>,
}

/// A shareable collector (machine holds one clone, the harness another).
pub type SharedCollector = Rc<RefCell<ProfileCollector>>;

impl ProfileCollector {
    /// Creates an empty collector.
    pub fn new() -> ProfileCollector {
        ProfileCollector::default()
    }

    /// Wraps a fresh collector for sharing with a machine.
    pub fn shared() -> SharedCollector {
        Rc::new(RefCell::new(ProfileCollector::new()))
    }

    /// Per-PC records, keyed by instruction address.
    pub fn pcs(&self) -> &BTreeMap<u32, PcRecord> {
        &self.pcs
    }

    /// Recorded `(thread, start_clock, end_clock)` spans.
    pub fn thread_spans(&self) -> &[(u32, u64, u64)] {
        &self.threads
    }

    fn record_retire(&mut self, s: RetireSample) {
        let rec = self.pcs.entry(s.pc).or_default();
        rec.issues += 1;
        rec.reuse += s.reused as u64;
        for (acc, part) in rec.buckets.iter_mut().zip(s.parts) {
            *acc += part;
        }
        rec.cluster = s.cluster;
        rec.slot = s.slot;
    }

    fn record_stall(&mut self, pc: u32, cause: StallCause, cycles: u64) {
        self.pcs.entry(pc).or_default().stalls[cause.index()] += cycles;
    }

    fn record_region(&mut self, s: RegionSample) {
        let total_busy: u128 = s.stations.iter().map(|st| st.busy as u128).sum();
        let mut distributed = 0u64;
        for st in &s.stations {
            let rec = self.pcs.entry(st.pc).or_default();
            rec.issues += st.execs;
            rec.reuse += if s.fetched {
                st.execs.saturating_sub(1)
            } else {
                st.execs
            };
            rec.cluster = st.cluster;
            rec.slot = st.slot;
            let share = (s.span as u128 * st.busy as u128)
                .checked_div(total_busy)
                .unwrap_or(0) as u64;
            let bucket = if st.is_mem {
                Bucket::MemoryBound
            } else {
                Bucket::Retiring
            };
            rec.buckets[bucket.index()] += share;
            distributed += share;
        }
        let marker_reuse = !s.fetched as u64;
        let start = self.pcs.entry(s.pc_s).or_default();
        start.issues += 1;
        start.reuse += marker_reuse;
        start.buckets[Bucket::RingTransit.index()] += s.span - distributed;
        start.cluster = s.s_station.0;
        start.slot = s.s_station.1;
        let end = self.pcs.entry(s.pc_e).or_default();
        end.issues += 1;
        end.reuse += marker_reuse;
        end.cluster = s.e_station.0;
        end.slot = s.e_station.1;
    }

    fn record_thread_span(&mut self, thread: u32, start: u64, end: u64) {
        self.threads.push((thread, start, end));
    }
}

/// The handle machines hold. [`Profiler::off`] (the default) makes
/// every hook a non-evaluating branch, mirroring [`diag_trace::Tracer`].
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<SharedCollector>,
}

impl Profiler {
    /// A disabled profiler (every hook is a no-op branch).
    pub fn off() -> Profiler {
        Profiler { inner: None }
    }

    /// A profiler feeding the given shared collector.
    pub fn to_shared(collector: &SharedCollector) -> Profiler {
        Profiler {
            inner: Some(Rc::clone(collector)),
        }
    }

    /// Whether samples are being collected.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one retirement. The closure is only evaluated when the
    /// profiler is enabled.
    #[inline]
    pub fn retire(&self, f: impl FnOnce() -> RetireSample) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record_retire(f());
        }
    }

    /// Attributes `cycles` of stall at `pc` to `cause`. Call from the
    /// same choke point that feeds the machine's `StallBreakdown` so
    /// per-PC stall columns reconcile exactly.
    #[inline]
    pub fn stall(&self, pc: u32, cause: StallCause, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record_stall(pc, cause, cycles);
        }
    }

    /// Records one pipelined SIMT region execution. The closure is only
    /// evaluated when the profiler is enabled.
    #[inline]
    pub fn region(&self, f: impl FnOnce() -> RegionSample) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record_region(f());
        }
    }

    /// Records a hardware thread's `[start, end)` commit-clock span.
    #[inline]
    pub fn thread_span(&self, thread: u32, start: u64, end: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record_thread_span(thread, start, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip() {
        for b in Bucket::ALL {
            assert_eq!(Bucket::ALL[b.index()], b);
            assert!(!b.name().is_empty());
        }
    }

    #[test]
    fn disabled_profiler_never_evaluates_closures() {
        let p = Profiler::off();
        p.retire(|| panic!("must not be called"));
        p.region(|| panic!("must not be called"));
        assert!(!p.enabled());
    }

    #[test]
    fn retire_samples_accumulate_per_pc() {
        let shared = ProfileCollector::shared();
        let p = Profiler::to_shared(&shared);
        for reused in [false, true, true] {
            p.retire(|| RetireSample {
                pc: 0x1000,
                cluster: 1,
                slot: 2,
                reused,
                parts: [3, 1, 0, 0, 0],
            });
        }
        p.stall(0x1000, StallCause::Memory, 5);
        let c = shared.borrow();
        let rec = c.pcs()[&0x1000];
        assert_eq!(rec.issues, 3);
        assert_eq!(rec.reuse, 2);
        assert_eq!(rec.self_cycles(), 12);
        assert_eq!(rec.stalls, [5, 0, 0]);
        assert_eq!((rec.cluster, rec.slot), (1, 2));
    }

    #[test]
    fn region_sample_conserves_span_exactly() {
        let shared = ProfileCollector::shared();
        let p = Profiler::to_shared(&shared);
        p.region(|| RegionSample {
            pc_s: 0x100,
            pc_e: 0x110,
            s_station: (0, 0),
            e_station: (0, 4),
            span: 101, // prime-ish: forces a pro-rata remainder
            fetched: true,
            stations: vec![
                RegionStation {
                    pc: 0x104,
                    cluster: 0,
                    slot: 1,
                    busy: 7,
                    execs: 8,
                    is_mem: false,
                },
                RegionStation {
                    pc: 0x108,
                    cluster: 0,
                    slot: 2,
                    busy: 13,
                    execs: 8,
                    is_mem: true,
                },
            ],
        });
        let c = shared.borrow();
        let total: u64 = c.pcs().values().map(|r| r.self_cycles()).sum();
        assert_eq!(total, 101, "span must be conserved exactly");
        let issues: u64 = c.pcs().values().map(|r| r.issues).sum();
        assert_eq!(issues, 8 + 8 + 2, "body execs plus two markers");
        assert!(c.pcs()[&0x108].buckets[Bucket::MemoryBound.index()] > 0);
        assert!(c.pcs()[&0x100].buckets[Bucket::RingTransit.index()] > 0);
    }
}
