//! Profile diffing: turn "aggregate ns/instr moved" into "these PCs
//! got slower".

use std::collections::BTreeMap;

use crate::model::Profile;

/// Compares two profiles and renders per-PC self-cycle deltas, largest
/// absolute change first (ties broken by address). PCs present in only
/// one profile are treated as zero in the other. The header reports the
/// total-cycle and committed deltas.
pub fn diff_profiles(before: &Profile, after: &Profile, top: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff: {} on {}  ->  {} on {}",
        before.workload, before.machine, after.workload, after.machine
    );
    let _ = writeln!(
        out,
        "cycles: {} -> {} ({:+})",
        before.total_cycles,
        after.total_cycles,
        after.total_cycles as i64 - before.total_cycles as i64
    );
    let _ = writeln!(
        out,
        "committed: {} -> {} ({:+})",
        before.committed,
        after.committed,
        after.committed as i64 - before.committed as i64
    );
    out.push('\n');

    // (self_before, self_after, disasm) per pc.
    let mut rows: BTreeMap<u32, (u64, u64, String)> = BTreeMap::new();
    for e in &before.pcs {
        rows.insert(e.pc, (e.self_cycles, 0, e.disasm.clone()));
    }
    for e in &after.pcs {
        let row = rows.entry(e.pc).or_insert((0, 0, e.disasm.clone()));
        row.1 = e.self_cycles;
        if row.2.is_empty() {
            row.2 = e.disasm.clone();
        }
    }
    let mut ranked: Vec<(u32, u64, u64, String)> = rows
        .into_iter()
        .map(|(pc, (b, a, d))| (pc, b, a, d))
        .filter(|&(_, b, a, _)| a != b)
        .collect();
    ranked.sort_by_key(|&(pc, b, a, _)| (std::cmp::Reverse(a.abs_diff(b)), pc));

    if ranked.is_empty() {
        out.push_str("no per-PC self-cycle changes\n");
        return out;
    }
    let _ = writeln!(
        out,
        "top {} of {} changed PCs:",
        top.min(ranked.len()),
        ranked.len()
    );
    let _ = writeln!(
        out,
        "  {:>10} {:>12} {:>12} {:>12}  disasm",
        "pc", "before", "after", "delta"
    );
    for (pc, b, a, disasm) in ranked.into_iter().take(top) {
        let _ = writeln!(
            out,
            "  {:>#10x} {:>12} {:>12} {:>+12}  {}",
            pc,
            b,
            a,
            a as i64 - b as i64,
            disasm
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CycleModel, PcEntry, Profile};

    fn profile(cycles: &[(u32, u64)], total: u64) -> Profile {
        Profile {
            workload: "unit".to_string(),
            machine: "diag".to_string(),
            threads: 1,
            simt: false,
            cycle_model: CycleModel::Wallclock,
            total_cycles: total,
            committed: cycles.len() as u64,
            stalls: [0; 3],
            host: Vec::new(),
            thread_spans: vec![(0, 0, total)],
            pcs: cycles
                .iter()
                .map(|&(pc, c)| PcEntry {
                    pc,
                    disasm: String::new(),
                    cluster: 0,
                    slot: 0,
                    issues: 1,
                    reuse: 0,
                    self_cycles: c,
                    cum_cycles: c,
                    buckets: [c, 0, 0, 0, 0],
                    stalls: [0; 3],
                })
                .collect(),
        }
    }

    #[test]
    fn diff_ranks_by_absolute_delta() {
        let before = profile(&[(0x10, 5), (0x14, 5), (0x18, 5)], 15);
        let after = profile(&[(0x10, 5), (0x14, 25), (0x18, 2)], 32);
        let text = diff_profiles(&before, &after, 10);
        assert!(text.contains("(+17)"));
        let big = text.find("0x14").expect("biggest delta present");
        let small = text.find("0x18").expect("smaller delta present");
        assert!(big < small, "largest |delta| first:\n{text}");
        assert!(!text.contains("\n  0x10"), "unchanged PC omitted");
        assert!(text.contains("+20"));
        assert!(text.contains("-3"));
    }

    #[test]
    fn identical_profiles_diff_clean() {
        let p = profile(&[(0x10, 5)], 5);
        let text = diff_profiles(&p, &p, 10);
        assert!(text.contains("no per-PC self-cycle changes"));
    }
}
