//! Configuration of the out-of-order baseline CPU.
//!
//! The paper's baseline (§7.1) is a gem5 SE-mode ARM core "aggressively
//! configured to issue, dispatch, and retire up to 8 instructions with a 2
//! cycle latency for each of these stages", 12 cores, 64 KiB L1, 4–8 MiB
//! shared L2, at the same 2 GHz as DiAG. [`O3Config::aggressive_8wide`]
//! reproduces that.

use diag_mem::CacheConfig;

/// Parameters of one out-of-order core (and the multicore built from it).
#[derive(Debug, Clone, PartialEq)]
pub struct O3Config {
    /// Configuration name.
    pub name: String,
    /// Fetch/decode/rename/dispatch/issue/commit width.
    pub width: usize,
    /// Pipeline latency of each front-end stage (fetch→decode→rename→
    /// dispatch), paper: 2 cycles each.
    pub stage_latency: u64,
    /// Number of front-end stages before issue.
    pub frontend_stages: u64,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Issue-queue capacity: an instruction can only issue while within
    /// this window of the oldest unissued instruction.
    pub iq_size: usize,
    /// Load/store queue capacity (outstanding memory operations).
    pub lsq_size: usize,
    /// Integer ALU count.
    pub int_alus: usize,
    /// Integer multiplier count.
    pub int_muls: usize,
    /// Integer divider count (unpipelined).
    pub int_divs: usize,
    /// FP add/cmp/convert unit count.
    pub fp_alus: usize,
    /// FP multiplier count.
    pub fp_muls: usize,
    /// FP divider count (unpipelined).
    pub fp_divs: usize,
    /// Data-cache ports.
    pub mem_ports: usize,
    /// Branch-predictor table entries (gshare, power of two).
    pub bpred_entries: usize,
    /// Branch-target-buffer entries (power of two).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Modelled frequency in GHz.
    pub freq_ghz: f64,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Shared unified L2.
    pub l2: CacheConfig,
    /// Cycle limit.
    pub max_cycles: u64,
}

impl O3Config {
    /// The paper's baseline: 8-issue out-of-order, 2-cycle front-end
    /// stages, 64 KiB L1, 4 MiB shared L2, 2 GHz.
    pub fn aggressive_8wide() -> O3Config {
        O3Config {
            name: "ooo-8w".to_string(),
            width: 8,
            stage_latency: 2,
            frontend_stages: 4,
            rob_size: 224,
            iq_size: 60,
            lsq_size: 72,
            int_alus: 6,
            int_muls: 2,
            int_divs: 1,
            fp_alus: 4,
            fp_muls: 2,
            fp_divs: 1,
            mem_ports: 3,
            bpred_entries: 4096,
            btb_entries: 4096,
            ras_depth: 16,
            freq_ghz: 2.0,
            l1d: CacheConfig {
                size_bytes: 64 << 10,
                line_bytes: 64,
                ways: 4,
                hit_latency: 3,
                banks: 4,
            },
            l2: CacheConfig::l2(4),
            max_cycles: diag_sim::DEFAULT_CYCLE_LIMIT,
        }
    }

    /// A modest 4-wide core for sensitivity studies.
    pub fn modest_4wide() -> O3Config {
        let mut c = O3Config::aggressive_8wide();
        c.name = "ooo-4w".to_string();
        c.width = 4;
        c.rob_size = 96;
        c.iq_size = 32;
        c.lsq_size = 32;
        c.int_alus = 3;
        c.fp_alus = 2;
        c.fp_muls = 1;
        c.mem_ports = 2;
        c
    }

    /// Total front-end latency from fetch to issue-ready.
    pub fn frontend_latency(&self) -> u64 {
        self.stage_latency * self.frontend_stages
    }

    /// Branch misprediction penalty: the front-end must refill.
    pub fn mispredict_penalty(&self) -> u64 {
        self.frontend_latency() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_shape() {
        let c = O3Config::aggressive_8wide();
        assert_eq!(c.width, 8);
        assert_eq!(c.stage_latency, 2);
        assert_eq!(c.frontend_latency(), 8);
        assert_eq!(c.mispredict_penalty(), 9);
        assert_eq!(c.l1d.size_bytes, 64 << 10);
        assert_eq!(c.l2.size_bytes, 4 << 20);
        assert_eq!(c.freq_ghz, 2.0);
    }

    #[test]
    fn modest_is_narrower() {
        let a = O3Config::aggressive_8wide();
        let m = O3Config::modest_4wide();
        assert!(m.width < a.width);
        assert!(m.rob_size < a.rob_size);
    }
}
