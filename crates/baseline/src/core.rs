//! One out-of-order core, dependence-timed over the shared architectural
//! interpreter.
//!
//! The model follows the gem5 O3 shape the paper configures (§7.1): a
//! multi-stage front end (2 cycles per stage), register renaming (modelled
//! as unlimited physical registers — false dependencies never stall),
//! a bounded reorder buffer, bandwidth-limited fetch/issue/commit, a
//! branch predictor with a full-frontend redirect penalty, per-kind
//! functional-unit pools, and an LSQ in front of a private L1 backed by
//! the shared L2.

use std::collections::VecDeque;
use std::sync::Arc;

use diag_isa::{ExecKind, StationSlot, StationTable};
use diag_mem::{CacheArray, LaneLookup, Lsu, MainMemory, MemLane, PrivateCache};
use diag_sim::interp::{station_step, ArchState, MemEffect};
use diag_sim::{
    Activity, Bucket, Commit, Observer, Profiler, RetireSample, SimError, StallBreakdown,
};
use diag_trace::{Event, EventKind, StallCause, Tracer, Track};

use crate::bpred::BranchPredictor;
use crate::config::O3Config;
use crate::fu::FuSet;
use crate::util::{Bandwidth, IssueMeter};

/// Statistics of one core, merged into the machine totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Activity counters.
    pub activity: Activity,
    /// Stall attribution.
    pub stalls: StallBreakdown,
}

/// One out-of-order core running one hardware thread.
#[derive(Debug)]
pub struct O3Core {
    cfg: Arc<O3Config>,
    /// Text segment predecoded once at load, shared by every core of the
    /// wave; the step loop never touches program bytes or the decoder (the
    /// *modeled* pipeline still decodes every dynamic instruction — see
    /// the `decodes` counter).
    stations: Arc<StationTable>,
    state: ArchState,
    /// Completion time of the latest writer of each register lane.
    reg_ready: [u64; diag_isa::NUM_LANES],
    /// Commit times of in-flight instructions (ROB occupancy).
    rob: VecDeque<u64>,
    /// Issue times of recent instructions (IQ occupancy window).
    iq: VecDeque<u64>,
    fetch_bw: Bandwidth,
    issue_bw: IssueMeter,
    commit_bw: Bandwidth,
    /// Earliest time the front end may fetch the next instruction
    /// (redirected on mispredictions).
    fetch_floor: u64,
    last_commit: u64,
    bpred: BranchPredictor,
    fus: FuSet,
    l1i: CacheArray,
    l1d: PrivateCache,
    lsq: Lsu,
    store_buffer: MemLane,
    store_floor: u64,
    fence_floor: u64,
    /// Whether the thread has halted.
    pub halted: bool,
    /// Per-core statistics.
    pub stats: CoreStats,
    last_fetch_line: u32,
    committed_count: u64,
    thread_id: usize,
    /// Whether retirements are appended to `commits`.
    pub(crate) commit_log: bool,
    /// Retirements logged since the machine last drained them.
    pub(crate) commits: Vec<Commit>,
    /// Trace sink (disabled by default; set through the machine's
    /// `set_tracer`). Baseline events ride on [`Track::Core`].
    pub(crate) tracer: Tracer,
    /// Cycle-accounting profiler (disabled by default; set through the
    /// machine's `set_profiler`).
    pub(crate) profiler: Profiler,
    /// Verifier-soundness observer (disabled by default; set through the
    /// machine's `set_observer`).
    pub(crate) observer: Observer,
    /// PC the in-flight instruction's stalls are attributed to
    /// (`station_step` advances the architectural PC mid-step).
    prof_pc: u32,
}

/// L2 hit latency charged on an L1I miss.
const L1I_MISS_PENALTY: u64 = 18;

impl O3Core {
    /// Creates core `thread_id` of `threads`, with a private L1D backed by
    /// the given shared L2 and the wave's shared predecoded stations.
    pub fn new(
        entry: u32,
        stations: Arc<StationTable>,
        cfg: Arc<O3Config>,
        l1d: PrivateCache,
        thread_id: usize,
        threads: usize,
        start_time: u64,
    ) -> O3Core {
        let state = ArchState::new_thread(entry, thread_id, threads);
        O3Core {
            state,
            reg_ready: [start_time; diag_isa::NUM_LANES],
            rob: VecDeque::with_capacity(cfg.rob_size),
            iq: VecDeque::with_capacity(cfg.iq_size),
            fetch_bw: Bandwidth::new(cfg.width),
            issue_bw: IssueMeter::new(cfg.width),
            commit_bw: Bandwidth::new(cfg.width),
            fetch_floor: start_time,
            last_commit: start_time,
            bpred: BranchPredictor::new(cfg.bpred_entries, cfg.btb_entries, cfg.ras_depth),
            fus: FuSet::new(&cfg),
            l1i: CacheArray::new(diag_mem::CacheConfig::l1i_32k()),
            l1d,
            lsq: Lsu::new(cfg.lsq_size),
            store_buffer: MemLane::new(cfg.lsq_size),
            store_floor: start_time,
            fence_floor: start_time,
            halted: false,
            stats: CoreStats::default(),
            last_fetch_line: u32::MAX,
            committed_count: 0,
            thread_id,
            commit_log: false,
            commits: Vec::new(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
            observer: Observer::off(),
            prof_pc: entry,
            cfg,
            stations,
        }
    }

    /// Records `cycles` of stall attributed to `cause`, ending at `end`,
    /// both in the breakdown and — when a tracer is attached — as a
    /// paired `StallBegin`/`StallEnd` interval on this core's track. All
    /// baseline stall accounting flows through here so the trace timeline
    /// reconciles exactly with [`StallBreakdown`].
    fn stall(&mut self, cause: StallCause, end: u64, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.stats.stalls.add_cycles(cause, cycles);
        self.profiler.stall(self.prof_pc, cause, cycles);
        let thread = self.thread_id as u32;
        self.tracer.emit(|| Event {
            cycle: end.saturating_sub(cycles),
            thread,
            track: Track::Core(thread),
            kind: EventKind::StallBegin { cause },
        });
        self.tracer.emit(|| Event {
            cycle: end,
            thread,
            track: Track::Core(thread),
            kind: EventKind::StallEnd { cause, cycles },
        });
    }

    /// This core's hardware-thread id.
    pub fn thread_id(&self) -> usize {
        self.thread_id
    }

    /// The core's current time (last retirement).
    pub fn clock(&self) -> u64 {
        self.last_commit
    }

    /// Total committed instructions.
    pub fn committed(&self) -> u64 {
        self.committed_count
    }

    /// Executes one dynamic instruction through the full pipeline model.
    pub fn step(&mut self, mem: &mut MainMemory) -> Result<(), SimError> {
        if self.halted {
            return Err(SimError::Halted);
        }
        let pc = self.state.pc;
        self.prof_pc = pc;
        let prev_clock = self.last_commit;

        // ---- fetch ----------------------------------------------------
        let mut fetch_t = self.fetch_bw.next(self.fetch_floor);
        if (pc & !63) != self.last_fetch_line {
            self.last_fetch_line = pc & !63;
            self.stats.activity.line_fetches += 1;
            if !self.l1i.access(pc, false).hit {
                fetch_t += L1I_MISS_PENALTY;
                self.fetch_floor = fetch_t;
                self.stall(StallCause::Control, fetch_t, L1I_MISS_PENALTY);
            }
        }

        // ---- decode / rename / dispatch -------------------------------
        let mut rename_t = fetch_t + self.cfg.frontend_latency();
        let rename0 = rename_t;
        // ROB occupancy: dispatch stalls until a slot frees.
        while self.rob.len() >= self.cfg.rob_size {
            let freed = self.rob.pop_front().expect("rob non-empty");
            if freed > rename_t {
                self.stall(StallCause::Structural, freed, freed - rename_t);
                rename_t = freed;
            }
        }
        self.stats.activity.decodes += 1;
        self.stats.activity.renames += 1;
        self.stats.activity.dispatches += 1;
        self.stats.activity.rob_writes += 1;

        // ---- architectural execution (shared interpreter) --------------
        let before_regs_pc = pc;
        let st = match *self.stations.get(pc) {
            StationSlot::Ready(st) => st,
            StationSlot::Illegal { word } => {
                return Err(SimError::IllegalInstruction { addr: pc, word })
            }
            StationSlot::Empty => return Err(SimError::PcOutOfRange { pc }),
        };
        let is_ctl = matches!(
            st.kind,
            ExecKind::Branch { .. } | ExecKind::Jal { .. } | ExecKind::Jalr { .. }
        );
        let prediction = self.bpred.predict(pc, &st.inst);
        if is_ctl {
            self.stats.activity.bpred_lookups += 1;
        }
        let info = station_step(&mut self.state, &self.stations, mem, None)?;
        debug_assert_eq!(info.pc, before_regs_pc);
        self.observer.retire(
            info.pc,
            info.dest,
            match info.mem {
                MemEffect::Load { addr, .. } | MemEffect::Store { addr, .. } => Some(addr),
                MemEffect::None => None,
            },
        );

        // ---- issue ------------------------------------------------------
        let mut ready = rename_t + 1;
        for src in st.srcs.iter() {
            ready = ready.max(self.reg_ready[src.index()]);
        }
        let src_ready = ready;
        // Bounded issue queue: this instruction occupies an IQ entry from
        // rename until issue; it cannot even enter the queue until the
        // instruction `iq_size` older has left it.
        while self.iq.len() >= self.cfg.iq_size {
            let oldest = self.iq.pop_front().expect("iq non-empty");
            if oldest > ready {
                self.stall(StallCause::Structural, oldest, oldest - ready);
                ready = oldest;
            }
        }
        let latency = st.latency as u64;
        let kind = st.fu;
        let issue_t = self.fus.issue(kind, self.issue_bw.next(ready), latency);
        self.iq.push_back(issue_t);
        self.stats.activity.issues += 1;

        // ---- execute / memory ------------------------------------------
        let finish = match info.mem {
            MemEffect::Load { addr, size } => {
                self.stats.activity.loads += 1;
                // Perfect disambiguation: wait only for overlapping older
                // stores; forward from the store queue when fully covered.
                let (want, forward) = match self.store_buffer.lookup(addr, size) {
                    LaneLookup::HitFast { store_time, .. } => {
                        (issue_t.max(self.fence_floor).max(store_time), true)
                    }
                    LaneLookup::HitSlow { store_time, .. }
                    | LaneLookup::Conflict { store_time } => {
                        (issue_t.max(self.fence_floor).max(store_time + 1), false)
                    }
                    LaneLookup::Miss => (issue_t.max(self.fence_floor), false),
                };
                let tid = self.thread_id as u32;
                let (at, waited, id) =
                    self.lsq
                        .issue_blocking_traced(want, false, &self.tracer, tid, tid);
                self.stall(StallCause::Memory, at, waited);
                let ready_at = if forward {
                    self.stats.activity.memlane_hits += 1;
                    at + 1
                } else {
                    let out = self.l1d.access_traced(addr, false, at, &self.tracer, tid);
                    self.count_cache(out.l1_hit, out.l2_hit);
                    if !out.l1_hit {
                        let hit_time = at + self.cfg.l1d.hit_latency as u64;
                        self.stall(
                            StallCause::Memory,
                            out.ready_at,
                            out.ready_at.saturating_sub(hit_time),
                        );
                    }
                    out.ready_at
                };
                self.lsq
                    .complete_at_traced(ready_at, id, &self.tracer, tid, tid);
                ready_at
            }
            MemEffect::Store { addr, size } => {
                self.stats.activity.stores += 1;
                let want = issue_t.max(self.store_floor);
                let tid = self.thread_id as u32;
                let (at, waited, id) =
                    self.lsq
                        .issue_blocking_traced(want, true, &self.tracer, tid, tid);
                self.stall(StallCause::Memory, at, waited);
                self.store_floor = at;
                self.store_buffer.push_store(addr, size, 0, at);
                self.store_buffer.trim();
                let out = self.l1d.access_traced(addr, true, at, &self.tracer, tid);
                self.count_cache(out.l1_hit, out.l2_hit);
                let done = at + 1;
                self.lsq
                    .complete_at_traced(done, id, &self.tracer, tid, tid);
                done
            }
            MemEffect::None => {
                if matches!(st.kind, ExecKind::Fence) {
                    let done = issue_t + latency;
                    self.store_floor = self.store_floor.max(done);
                    self.fence_floor = self.fence_floor.max(done);
                    done
                } else {
                    issue_t + latency
                }
            }
        };

        // ---- writeback ---------------------------------------------------
        if let Some((lane, _)) = info.dest {
            if !lane.is_zero() {
                self.reg_ready[lane.index()] = finish;
                self.stats.activity.reg_writes += 1;
            }
        }
        if st.uses_fpu {
            self.stats.activity.fpu_active_cycles += latency;
            self.stats.activity.fp_ops += 1;
        } else if !st.is_mem {
            self.stats.activity.int_ops += 1;
        }
        self.stats.activity.pe_active_cycles += (finish - issue_t).max(1);

        // ---- control resolution -----------------------------------------
        if is_ctl {
            let taken = info.redirected;
            let mispredicted = self
                .bpred
                .update(pc, &st.inst, prediction, taken, info.next_pc);
            if mispredicted {
                self.stats.activity.mispredicts += 1;
                let redirect = finish + 1;
                let thread = self.thread_id as u32;
                let (from_pc, to_pc) = (pc, info.next_pc);
                self.tracer.emit(|| Event {
                    cycle: redirect,
                    thread,
                    track: Track::Core(thread),
                    kind: EventKind::BranchRedirect {
                        from_pc,
                        to_pc,
                        backward: to_pc <= from_pc,
                    },
                });
                if redirect > self.fetch_floor {
                    let floor = self.fetch_floor;
                    self.stall(StallCause::Control, redirect, redirect - floor);
                    self.fetch_floor = redirect;
                }
            }
        } else if info.redirected {
            // Traps and looping simt_e markers redirect the front end too.
            let redirect = finish + 1;
            self.fetch_floor = self.fetch_floor.max(redirect);
        }

        // ---- commit -------------------------------------------------------
        let commit_t = self.commit_bw.next(finish.max(self.last_commit));
        self.profiler.retire(|| {
            // Walk the pipeline-stage boundary chain, clipping each
            // boundary to the previous commit clock: frontend to
            // dispatch, ROB back-pressure, source wait, issue-side
            // queueing, execution, then commit queueing. The clipped
            // segments telescope to `commit_t - prev_clock` exactly.
            let exec_bucket = if st.is_mem {
                Bucket::MemoryBound
            } else {
                Bucket::Retiring
            };
            let chain = [
                (rename0 + 1, Bucket::LineLoadFrontend),
                (rename_t + 1, Bucket::RingTransit),
                (src_ready, Bucket::LaneWait),
                (issue_t, Bucket::RingTransit),
                (finish, exec_bucket),
                (commit_t, Bucket::Retiring),
            ];
            let mut parts = [0u64; 5];
            let mut cur = prev_clock;
            for (b, bucket) in chain {
                if b > cur {
                    parts[bucket.index()] += b - cur;
                    cur = b;
                }
            }
            RetireSample {
                pc,
                cluster: 0,
                slot: 0,
                reused: false,
                parts,
            }
        });
        let thread = self.thread_id as u32;
        self.tracer.emit(|| Event {
            cycle: commit_t,
            thread,
            track: Track::Core(thread),
            kind: EventKind::PeRetire {
                pc,
                start: issue_t,
                finish,
            },
        });
        self.last_commit = commit_t;
        self.rob.push_back(commit_t);
        self.committed_count += 1;
        if self.commit_log {
            self.commits.push(Commit {
                thread: self.thread_id as u32,
                pc,
                dest: info.dest.filter(|(lane, _)| !lane.is_zero()),
            });
        }
        if self.committed_count.is_multiple_of(4096) {
            // Nothing issues before the oldest possible in-flight fetch.
            let safe = self
                .rob
                .front()
                .copied()
                .unwrap_or(0)
                .saturating_sub(4 * self.cfg.rob_size as u64);
            self.issue_bw.prune_before(safe);
        }
        if self.state.halted {
            self.halted = true;
            self.tracer.emit(|| Event {
                cycle: commit_t,
                thread,
                track: Track::Core(thread),
                kind: EventKind::ThreadHalt,
            });
        }
        Ok(())
    }

    fn count_cache(&mut self, l1_hit: bool, l2_hit: bool) {
        self.stats.activity.l1d_accesses += 1;
        if !l1_hit {
            self.stats.activity.l1d_misses += 1;
            self.stats.activity.l2_accesses += 1;
            if !l2_hit {
                self.stats.activity.l2_misses += 1;
            }
        }
    }
}
