//! # diag-baseline — the out-of-order CPU baseline (and in-order reference)
//!
//! Models the comparison hardware of the paper's evaluation (§7.1): an
//! aggressive 8-issue out-of-order core with 2-cycle front-end stages
//! ([`O3Config::aggressive_8wide`]), replicated into a 12-core multicore
//! with private L1s and a shared L2 ([`OooCpu::paper_baseline`]), plus a
//! single-issue in-order reference machine ([`InOrder`]) used as the
//! golden model in differential tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bpred;
mod config;
mod core;
mod fu;
mod inorder;
mod machine;
mod util;

pub use bpred::{BranchPredictor, Prediction};
pub use config::O3Config;
pub use core::{CoreStats, O3Core};
pub use fu::{FuPool, FuSet};
pub use inorder::InOrder;
pub use machine::OooCpu;
pub use util::{Bandwidth, IssueMeter};
