//! Branch prediction for the out-of-order baseline: gshare direction
//! predictor, branch target buffer, and return-address stack.

use diag_isa::{Inst, Reg};

/// A gshare + BTB + RAS predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit saturating counters indexed by `pc ^ history`.
    counters: Vec<u8>,
    /// Global history register.
    history: u64,
    /// Branch target buffer: tag + target per entry.
    btb: Vec<Option<(u32, u32)>>,
    /// Return address stack.
    ras: Vec<u32>,
    ras_depth: usize,
    lookups: u64,
    mispredicts: u64,
}

/// A prediction for one control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted taken?
    pub taken: bool,
    /// Predicted target (meaningful when `taken`).
    pub target: Option<u32>,
}

impl BranchPredictor {
    /// Creates a predictor with the given table sizes (powers of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `btb_entries` is not a power of two.
    pub fn new(entries: usize, btb_entries: usize, ras_depth: usize) -> BranchPredictor {
        assert!(
            entries.is_power_of_two(),
            "gshare entries must be a power of two"
        );
        assert!(
            btb_entries.is_power_of_two(),
            "BTB entries must be a power of two"
        );
        BranchPredictor {
            counters: vec![2; entries], // weakly taken
            history: 0,
            btb: vec![None; btb_entries],
            ras: Vec::with_capacity(ras_depth),
            ras_depth,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn gshare_index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize ^ self.history as usize) & (self.counters.len() - 1)
    }

    fn btb_index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.btb.len() - 1)
    }

    /// Predicts the outcome of the control instruction `inst` at `pc`.
    /// Non-control instructions predict fall-through.
    pub fn predict(&mut self, pc: u32, inst: &Inst) -> Prediction {
        match *inst {
            Inst::Branch { .. } => {
                self.lookups += 1;
                let taken = self.counters[self.gshare_index(pc)] >= 2;
                let target = self.btb_lookup(pc);
                Prediction {
                    taken: taken && target.is_some(),
                    target,
                }
            }
            Inst::Jal { .. } => {
                self.lookups += 1;
                Prediction {
                    taken: true,
                    target: self.btb_lookup(pc),
                }
            }
            Inst::Jalr { rd, rs1, .. } => {
                self.lookups += 1;
                // Returns predict through the RAS.
                if rd == Reg::ZERO && rs1 == Reg::RA {
                    Prediction {
                        taken: true,
                        target: self.ras.last().copied(),
                    }
                } else {
                    Prediction {
                        taken: true,
                        target: self.btb_lookup(pc),
                    }
                }
            }
            _ => Prediction {
                taken: false,
                target: None,
            },
        }
    }

    fn btb_lookup(&self, pc: u32) -> Option<u32> {
        match self.btb[self.btb_index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Updates predictor state with the actual outcome; returns whether
    /// the given prediction was a misprediction.
    pub fn update(
        &mut self,
        pc: u32,
        inst: &Inst,
        prediction: Prediction,
        taken: bool,
        target: u32,
    ) -> bool {
        let mispredicted = match *inst {
            Inst::Branch { .. } => {
                let idx = self.gshare_index(pc);
                if taken {
                    self.counters[idx] = (self.counters[idx] + 1).min(3);
                } else {
                    self.counters[idx] = self.counters[idx].saturating_sub(1);
                }
                self.history = (self.history << 1) | taken as u64;
                if taken {
                    let idx = self.btb_index(pc);
                    self.btb[idx] = Some((pc, target));
                }
                prediction.taken != taken || (taken && prediction.target != Some(target))
            }
            Inst::Jal { rd, .. } => {
                let idx = self.btb_index(pc);
                self.btb[idx] = Some((pc, target));
                if rd == Reg::RA {
                    self.push_ras(pc.wrapping_add(4));
                }
                prediction.target != Some(target)
            }
            Inst::Jalr { rd, rs1, .. } => {
                let mispredicted = prediction.target != Some(target);
                if rd == Reg::ZERO && rs1 == Reg::RA {
                    self.ras.pop();
                } else {
                    let idx = self.btb_index(pc);
                    self.btb[idx] = Some((pc, target));
                }
                if rd == Reg::RA {
                    self.push_ras(pc.wrapping_add(4));
                }
                mispredicted
            }
            _ => false,
        };
        if mispredicted {
            self.mispredicts += 1;
        }
        mispredicted
    }

    fn push_ras(&mut self, addr: u32) {
        if self.ras.len() == self.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    /// Total direction/target lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_isa::BranchOp;

    fn branch() -> Inst {
        Inst::Branch {
            op: BranchOp::Bne,
            rs1: Reg::T0,
            rs2: Reg::ZERO,
            offset: -16,
        }
    }

    #[test]
    fn learns_a_loop_branch() {
        let mut bp = BranchPredictor::new(64, 64, 8);
        let pc = 0x1000;
        let target = 0x0FF0;
        // Train: taken repeatedly.
        for _ in 0..4 {
            let p = bp.predict(pc, &branch());
            bp.update(pc, &branch(), p, true, target);
        }
        let p = bp.predict(pc, &branch());
        assert!(p.taken);
        assert_eq!(p.target, Some(target));
        assert!(!bp.update(pc, &branch(), p, true, target));
    }

    #[test]
    fn first_taken_mispredicts_via_btb_miss() {
        let mut bp = BranchPredictor::new(64, 64, 8);
        let p = bp.predict(0x2000, &branch());
        assert!(bp.update(0x2000, &branch(), p, true, 0x1FF0));
        assert_eq!(bp.mispredicts(), 1);
    }

    #[test]
    fn not_taken_branch_learns() {
        let mut bp = BranchPredictor::new(64, 64, 8);
        let pc = 0x3000;
        for _ in 0..4 {
            let p = bp.predict(pc, &branch());
            bp.update(pc, &branch(), p, false, 0);
        }
        let p = bp.predict(pc, &branch());
        assert!(!p.taken);
        assert!(!bp.update(pc, &branch(), p, false, 0));
    }

    #[test]
    fn ras_predicts_returns() {
        let mut bp = BranchPredictor::new(64, 64, 8);
        let call = Inst::Jal {
            rd: Reg::RA,
            offset: 0x100,
        };
        let ret = Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        };
        let p = bp.predict(0x1000, &call);
        bp.update(0x1000, &call, p, true, 0x1100);
        // The return from 0x1100 should predict 0x1004 via the RAS.
        let p = bp.predict(0x1100, &ret);
        assert_eq!(p.target, Some(0x1004));
        assert!(!bp.update(0x1100, &ret, p, true, 0x1004));
    }

    #[test]
    fn jal_hits_btb_after_first_sight() {
        let mut bp = BranchPredictor::new(64, 64, 8);
        let j = Inst::Jal {
            rd: Reg::ZERO,
            offset: 64,
        };
        let p = bp.predict(0x4000, &j);
        assert!(bp.update(0x4000, &j, p, true, 0x4040), "cold BTB");
        let p = bp.predict(0x4000, &j);
        assert_eq!(p.target, Some(0x4040));
    }
}
