//! Functional-unit pools with issue-time arbitration.
//!
//! Pools must grant *out of order*: an old instruction stalled on a cache
//! miss reserves its unit late, and independent younger instructions must
//! not be pushed behind it. Pipelined pools are therefore per-cycle
//! capacity meters; unpipelined pools (dividers) search for a unit free at
//! the requested time.

use diag_isa::FuKind;
use diag_mem::PortMeter;

/// A pool of identical functional units.
#[derive(Debug, Clone)]
pub enum FuPool {
    /// Units accepting one operation per cycle each (fully pipelined).
    Pipelined(PortMeter),
    /// Units blocking for the operation's full latency (dividers).
    Unpipelined {
        /// Next-free time per unit.
        next_free: Vec<u64>,
    },
}

impl FuPool {
    /// Creates a pool of `count` units.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize, pipelined: bool) -> FuPool {
        assert!(count > 0, "a functional-unit pool needs at least one unit");
        if pipelined {
            FuPool::Pipelined(PortMeter::new(count))
        } else {
            FuPool::Unpipelined {
                next_free: vec![0; count],
            }
        }
    }

    /// Reserves a unit at or after `ready`; returns the issue time.
    pub fn issue(&mut self, ready: u64, latency: u64) -> u64 {
        match self {
            FuPool::Pipelined(meter) => meter.next(ready),
            FuPool::Unpipelined { next_free } => {
                // Prefer a unit already free at `ready`; otherwise take the
                // earliest-free unit.
                let idx = next_free
                    .iter()
                    .position(|&t| t <= ready)
                    .unwrap_or_else(|| {
                        next_free
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &t)| t)
                            .map(|(i, _)| i)
                            .expect("pool is non-empty")
                    });
                let start = ready.max(next_free[idx]);
                next_free[idx] = start + latency;
                start
            }
        }
    }
}

/// All functional units of one out-of-order core.
#[derive(Debug, Clone)]
pub struct FuSet {
    int_alu: FuPool,
    int_mul: FuPool,
    int_div: FuPool,
    fp_alu: FuPool,
    fp_mul: FuPool,
    fp_div: FuPool,
    mem: FuPool,
}

impl FuSet {
    /// Builds the FU set from the baseline configuration.
    pub fn new(cfg: &crate::config::O3Config) -> FuSet {
        FuSet {
            int_alu: FuPool::new(cfg.int_alus, true),
            int_mul: FuPool::new(cfg.int_muls, true),
            int_div: FuPool::new(cfg.int_divs, false),
            fp_alu: FuPool::new(cfg.fp_alus, true),
            fp_mul: FuPool::new(cfg.fp_muls, true),
            fp_div: FuPool::new(cfg.fp_divs, false),
            mem: FuPool::new(cfg.mem_ports, true),
        }
    }

    /// Reserves a unit of the right kind at or after `ready`.
    pub fn issue(&mut self, kind: FuKind, ready: u64, latency: u64) -> u64 {
        match kind {
            FuKind::IntAlu | FuKind::None => self.int_alu.issue(ready, latency),
            FuKind::IntMul => self.int_mul.issue(ready, latency),
            FuKind::IntDiv => self.int_div.issue(ready, latency),
            FuKind::FpAlu => self.fp_alu.issue(ready, latency),
            FuKind::FpMul => self.fp_mul.issue(ready, latency),
            FuKind::FpDiv => self.fp_div.issue(ready, latency),
            FuKind::Mem => self.mem.issue(ready, latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_pool_issues_every_cycle() {
        let mut p = FuPool::new(2, true);
        assert_eq!(p.issue(0, 4), 0);
        assert_eq!(p.issue(0, 4), 0); // second unit
        assert_eq!(p.issue(0, 4), 1); // first unit again, next cycle
        assert_eq!(p.issue(0, 4), 1);
        assert_eq!(p.issue(0, 4), 2);
    }

    #[test]
    fn pipelined_pool_grants_out_of_order() {
        let mut p = FuPool::new(1, true);
        assert_eq!(p.issue(100, 4), 100);
        // A younger independent op with early operands is not delayed.
        assert_eq!(p.issue(3, 4), 3);
        assert_eq!(p.issue(3, 4), 4);
    }

    #[test]
    fn unpipelined_pool_blocks_for_latency() {
        let mut p = FuPool::new(1, false);
        assert_eq!(p.issue(0, 20), 0);
        assert_eq!(p.issue(0, 20), 20);
        assert_eq!(p.issue(100, 20), 100);
    }

    #[test]
    fn fu_set_routes_kinds() {
        use diag_isa::FuKind;
        let cfg = crate::config::O3Config::aggressive_8wide();
        let mut fus = FuSet::new(&cfg);
        // The single divider serializes.
        let a = fus.issue(FuKind::IntDiv, 0, 20);
        let b = fus.issue(FuKind::IntDiv, 0, 20);
        assert_eq!(a, 0);
        assert_eq!(b, 20);
        // ALUs are plentiful.
        for _ in 0..cfg.int_alus {
            assert_eq!(fus.issue(FuKind::IntAlu, 5, 1), 5);
        }
        assert_eq!(fus.issue(FuKind::IntAlu, 5, 1), 6);
    }
}
