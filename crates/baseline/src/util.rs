//! Small timing utilities for the baseline pipeline model.

/// A per-cycle bandwidth limiter: at most `width` events per cycle, in
/// monotone time order (models fetch, issue, and commit widths).
#[derive(Debug, Clone)]
pub struct Bandwidth {
    width: usize,
    last: u64,
    count: usize,
}

impl Bandwidth {
    /// Creates a limiter of `width` events per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Bandwidth {
        assert!(width > 0, "bandwidth must be positive");
        Bandwidth {
            width,
            last: 0,
            count: 0,
        }
    }

    /// Reserves a slot at or after `at`; returns the granted cycle.
    pub fn next(&mut self, at: u64) -> u64 {
        let mut t = at.max(self.last);
        if t == self.last && self.count >= self.width {
            t += 1;
        }
        if t > self.last {
            self.last = t;
            self.count = 0;
        }
        self.count += 1;
        t
    }

    /// The most recently granted cycle.
    pub fn last(&self) -> u64 {
        self.last
    }
}

/// An out-of-order per-cycle capacity meter: at most `width` events per
/// cycle, but grants need not be in time order (models the issue stage of
/// an out-of-order core, where a stalled instruction must not delay
/// independent younger instructions). Backed by the sliding count window
/// of [`diag_mem::PortMeter`], so `next` never hashes or allocates on the
/// per-instruction hot path.
#[derive(Debug, Clone)]
pub struct IssueMeter {
    port: diag_mem::PortMeter,
}

impl IssueMeter {
    /// Creates a meter of `width` events per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 255.
    pub fn new(width: usize) -> IssueMeter {
        IssueMeter {
            port: diag_mem::PortMeter::new(width),
        }
    }

    /// Reserves a slot at the earliest cycle ≥ `at` with spare capacity.
    pub fn next(&mut self, at: u64) -> u64 {
        self.port.next(at)
    }

    /// Discards bookkeeping for cycles before `time` (no new grant will be
    /// requested before it). Call periodically with a safe lower bound
    /// (e.g. the oldest in-flight instruction's fetch time).
    pub fn prune_before(&mut self, time: u64) {
        self.port.prune_before(time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_meter_allows_out_of_order_grants() {
        let mut m = IssueMeter::new(2);
        assert_eq!(m.next(100), 100);
        // An older slow instruction does not hold back a younger one.
        assert_eq!(m.next(5), 5);
        assert_eq!(m.next(5), 5);
        assert_eq!(m.next(5), 6);
        assert_eq!(m.next(100), 100);
        assert_eq!(m.next(100), 101);
    }

    #[test]
    fn issue_meter_prunes() {
        let mut m = IssueMeter::new(1);
        for t in 0..100 {
            m.next(t);
        }
        m.prune_before(90);
        // Grants below the horizon are clamped up to it.
        assert!(m.next(0) >= 90);
    }

    #[test]
    fn spills_to_next_cycle() {
        let mut b = Bandwidth::new(2);
        assert_eq!(b.next(5), 5);
        assert_eq!(b.next(5), 5);
        assert_eq!(b.next(5), 6);
        assert_eq!(b.next(5), 6);
        assert_eq!(b.next(5), 7);
    }

    #[test]
    fn monotone() {
        let mut b = Bandwidth::new(4);
        assert_eq!(b.next(10), 10);
        assert_eq!(b.next(3), 10);
        assert_eq!(b.next(11), 11);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = Bandwidth::new(0);
    }
}
