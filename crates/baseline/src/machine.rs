//! The multicore out-of-order baseline machine.
//!
//! [`OooCpu`] instantiates one [`O3Core`](crate::core::O3Core) per hardware
//! thread (up to `max_cores`, beyond which threads run in waves), each with
//! a private L1 data cache, all backed by one shared L2 — the paper's
//! 12-core baseline topology (§7.1).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use diag_asm::Program;
use diag_isa::StationTable;
use diag_mem::{MainMemory, PrivateCache, SharedLevel};
use diag_sim::{Commit, Machine, Observer, Profiler, RunStats, SimError, StepOutcome};
use diag_trace::{Event, EventKind, Tracer, Track};

use crate::config::O3Config;
use crate::core::O3Core;

/// In-flight execution state of one baseline run.
#[derive(Debug)]
struct OooRun {
    program: Arc<Program>,
    /// Text segment predecoded once at load; shared by every core of
    /// every wave, so no wave launch or step touches the decoder.
    stations: Arc<StationTable>,
    threads: usize,
    mem: MainMemory,
    l2: Rc<RefCell<SharedLevel>>,
    /// Cores of the current wave.
    cores: Vec<O3Core>,
    /// Aggregate statistics of completed waves.
    stats: RunStats,
    committed: u64,
    /// First thread id not yet launched.
    next_tid: usize,
    wave_start: u64,
    finish_time: u64,
    halted: bool,
}

impl OooRun {
    /// Launches the next wave of threads onto fresh cores.
    fn launch_wave(
        &mut self,
        config: &Arc<O3Config>,
        max_cores: usize,
        commit_log: bool,
        tracer: &Tracer,
        profiler: &Profiler,
        observer: &Observer,
    ) {
        let batch = max_cores.min(self.threads - self.next_tid);
        let at = self.wave_start;
        self.cores = (0..batch)
            .map(|k| {
                let l1d = PrivateCache::new(config.l1d, Rc::clone(&self.l2));
                let mut core = O3Core::new(
                    self.program.entry(),
                    Arc::clone(&self.stations),
                    Arc::clone(config),
                    l1d,
                    self.next_tid + k,
                    self.threads,
                    self.wave_start,
                );
                core.commit_log = commit_log;
                core.tracer = tracer.clone();
                core.profiler = profiler.clone();
                core.observer = observer.clone();
                let thread = core.thread_id() as u32;
                tracer.emit(|| Event {
                    cycle: at,
                    thread,
                    track: Track::Core(thread),
                    kind: EventKind::ThreadStart,
                });
                core
            })
            .collect();
        self.next_tid += batch;
    }

    /// Folds a finished wave's cores into the aggregate statistics.
    fn finish_wave(&mut self, profiler: &Profiler) {
        // The wave's launch time (`wave_start` is pushed forward inside
        // the loop, so read the floor before the first core).
        let floor = self.wave_start;
        for core in &self.cores {
            profiler.thread_span(core.thread_id() as u32, floor, core.clock());
            self.committed += core.committed();
            self.stats.activity += core.stats.activity;
            self.stats.stalls += core.stats.stalls;
            self.wave_start = self.wave_start.max(core.clock());
        }
        self.finish_time = self.finish_time.max(self.wave_start);
        self.cores.clear();
    }
}

/// The out-of-order multicore baseline.
///
/// # Examples
///
/// ```
/// use diag_asm::assemble;
/// use diag_baseline::{O3Config, OooCpu};
/// use diag_sim::Machine;
///
/// let program = assemble("li a0, 9\nsw a0, 0(zero)\necall\n")?;
/// let mut cpu = OooCpu::new(O3Config::aggressive_8wide(), 12);
/// let stats = cpu.run(&program, 1)?;
/// assert_eq!(cpu.read_word(0), 9);
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OooCpu {
    config: Arc<O3Config>,
    max_cores: usize,
    run: Option<OooRun>,
    last_stats: Option<RunStats>,
    commit_log: bool,
    commits: Vec<Commit>,
    tracer: Tracer,
    profiler: Profiler,
    observer: Observer,
}

impl OooCpu {
    /// Creates a multicore baseline with up to `max_cores` cores (the
    /// paper uses 12).
    ///
    /// # Panics
    ///
    /// Panics if `max_cores` is zero.
    pub fn new(config: O3Config, max_cores: usize) -> OooCpu {
        assert!(max_cores > 0, "need at least one core");
        OooCpu {
            config: Arc::new(config),
            max_cores,
            run: None,
            last_stats: None,
            commit_log: false,
            commits: Vec::new(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
            observer: Observer::off(),
        }
    }

    /// The paper's baseline: 12 cores of the aggressive 8-wide
    /// configuration.
    pub fn paper_baseline() -> OooCpu {
        OooCpu::new(O3Config::aggressive_8wide(), 12)
    }

    /// The core configuration.
    pub fn config(&self) -> &O3Config {
        &self.config
    }

    /// Statistics of the most recent run, if any.
    pub fn last_stats(&self) -> Option<&RunStats> {
        self.last_stats.as_ref()
    }

    /// Shared body of [`Machine::load`] / [`Machine::load_prepared`]:
    /// mounts the program, adopting a caller-prepared [`StationTable`]
    /// when one is supplied and lowering the text once otherwise.
    fn load_with(
        &mut self,
        program: &Program,
        stations: Option<&Arc<StationTable>>,
        threads: usize,
    ) {
        let threads = threads.max(1);
        let program = Arc::new(program.clone());
        let mem = MainMemory::with_program(&program);
        let l2 = SharedLevel::new(self.config.l2).into_shared();
        self.last_stats = None;
        self.commits.clear();
        let mut run = OooRun {
            stations: match stations {
                Some(table) => Arc::clone(table),
                None => Arc::new(StationTable::build(program.text_base(), program.text())),
            },
            program,
            threads,
            mem,
            l2,
            cores: Vec::new(),
            stats: RunStats {
                threads: threads as u64,
                freq_ghz: self.config.freq_ghz,
                ..RunStats::default()
            },
            committed: 0,
            next_tid: 0,
            wave_start: 0,
            finish_time: 0,
            halted: false,
        };
        run.launch_wave(
            &self.config,
            self.max_cores,
            self.commit_log,
            &self.tracer,
            &self.profiler,
            &self.observer,
        );
        self.run = Some(run);
    }
}

impl Machine for OooCpu {
    fn name(&self) -> String {
        format!("{}x{}", self.config.name, self.max_cores)
    }

    fn load(&mut self, program: &Program, threads: usize) {
        self.load_with(program, None, threads);
    }

    fn load_prepared(&mut self, program: &Program, stations: &Arc<StationTable>, threads: usize) {
        self.load_with(program, Some(stations), threads);
    }

    fn step(&mut self) -> Result<StepOutcome, SimError> {
        let run = self.run.as_mut().ok_or(SimError::NotLoaded)?;
        if run.halted {
            return Err(SimError::NotLoaded);
        }
        let next = run
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.halted)
            .min_by_key(|(_, c)| c.clock())
            .map(|(i, _)| i);
        if let Some(idx) = next {
            run.cores[idx].step(&mut run.mem)?;
            self.commits.append(&mut run.cores[idx].commits);
            if run.cores[idx].clock() > self.config.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.config.max_cycles,
                });
            }
            return Ok(StepOutcome::Running);
        }
        run.finish_wave(&self.profiler);
        if run.next_tid < run.threads {
            run.launch_wave(
                &self.config,
                self.max_cores,
                self.commit_log,
                &self.tracer,
                &self.profiler,
                &self.observer,
            );
            Ok(StepOutcome::Running)
        } else {
            run.stats.cycles = run.finish_time;
            run.stats.committed = run.committed;
            run.stats.activity.busy_cycles = run.finish_time;
            run.halted = true;
            self.last_stats = Some(run.stats);
            let _ = self.tracer.flush();
            Ok(StepOutcome::Halted)
        }
    }

    fn stats(&self) -> RunStats {
        if let Some(stats) = self.last_stats {
            return stats;
        }
        let Some(run) = &self.run else {
            return RunStats::default();
        };
        let mut stats = run.stats;
        stats.committed = run.committed;
        let mut clock = run.finish_time;
        for core in &run.cores {
            stats.activity += core.stats.activity;
            stats.stalls += core.stats.stalls;
            stats.committed += core.committed();
            clock = clock.max(core.clock());
        }
        stats.cycles = clock;
        stats.activity.busy_cycles = clock;
        stats
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    fn set_commit_log(&mut self, enabled: bool) {
        self.commit_log = enabled;
        if let Some(run) = &mut self.run {
            for core in &mut run.cores {
                core.commit_log = enabled;
            }
        }
    }

    fn take_commits(&mut self) -> Vec<Commit> {
        std::mem::take(&mut self.commits)
    }

    fn read_word(&self, addr: u32) -> u32 {
        self.run.as_ref().map_or(0, |r| r.mem.read_u32(addr))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    #[test]
    fn single_thread_loop() {
        let program = assemble(
            r#"
                li t0, 100
                li t1, 0
            loop:
                add t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                sw t1, 0(zero)
                ecall
            "#,
        )
        .unwrap();
        let mut cpu = OooCpu::paper_baseline();
        let stats = cpu.run(&program, 1).unwrap();
        assert_eq!(cpu.read_word(0), 5050);
        assert_eq!(stats.committed, 304);
        // An 8-wide OoO on a 3-instruction loop body with a serial
        // dependence chain should sustain close to one iteration per cycle.
        assert!(stats.ipc() > 1.0, "IPC = {:.2}", stats.ipc());
    }

    #[test]
    fn wide_ilp_beats_serial_chain() {
        let par = r#"
            li t0, 1
            li t1, 1
            li t2, 1
            li t3, 1
            add t0, t0, t0
            add t1, t1, t1
            add t2, t2, t2
            add t3, t3, t3
            ecall
        "#;
        let ser = r#"
            li t0, 1
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            ecall
        "#;
        let mut cpu = OooCpu::paper_baseline();
        let p = cpu.run(&assemble(par).unwrap(), 1).unwrap();
        let s = cpu.run(&assemble(ser).unwrap(), 1).unwrap();
        assert!(
            p.cycles < s.cycles,
            "parallel {} vs serial {}",
            p.cycles,
            s.cycles
        );
    }

    #[test]
    fn multithread_scales() {
        // Each thread sums a private array slice; more threads, same total
        // work, shorter wall-clock.
        let src = r#"
                li   t1, 4096
                div  t2, t1, a1
                mul  t0, t2, a0
                add  t2, t0, t2
                slli t3, t0, 2
                li   t4, 0
            loop:
                lw   t5, 0(t3)
                add  t4, t4, t5
                addi t3, t3, 4
                addi t0, t0, 1
                blt  t0, t2, loop
                slli t6, a0, 2
                li   s0, 0x80000
                add  t6, t6, s0
                sw   t4, 0(t6)
                ecall
            "#;
        let program = assemble(src).unwrap();
        let mut cpu = OooCpu::paper_baseline();
        let one = cpu.run(&program, 1).unwrap();
        let twelve = cpu.run(&program, 12).unwrap();
        assert!(
            twelve.cycles * 4 < one.cycles,
            "12 threads ({}) should be much faster than 1 ({})",
            twelve.cycles,
            one.cycles
        );
    }

    #[test]
    fn waves_beyond_core_count() {
        let program = assemble("slli t0, a0, 2\nsw a1, 0(t0)\necall\n").unwrap();
        let mut cpu = OooCpu::new(O3Config::aggressive_8wide(), 2);
        cpu.run(&program, 5).unwrap();
        for t in 0..5u32 {
            assert_eq!(cpu.read_word(4 * t), 5);
        }
    }

    #[test]
    fn branch_predictor_pays_off() {
        // A regular loop should mispredict rarely after warm-up.
        let program = assemble(
            r#"
                li t0, 1000
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ecall
            "#,
        )
        .unwrap();
        let mut cpu = OooCpu::paper_baseline();
        let stats = cpu.run(&program, 1).unwrap();
        assert!(
            stats.activity.mispredicts < 20,
            "mispredicts = {}",
            stats.activity.mispredicts
        );
    }
}
