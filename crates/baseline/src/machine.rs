//! The multicore out-of-order baseline machine.
//!
//! [`OooCpu`] instantiates one [`O3Core`](crate::core::O3Core) per hardware
//! thread (up to `max_cores`, beyond which threads run in waves), each with
//! a private L1 data cache, all backed by one shared L2 — the paper's
//! 12-core baseline topology (§7.1).

use diag_asm::Program;
use diag_mem::{MainMemory, PrivateCache, SharedLevel};
use diag_sim::{Machine, RunStats, SimError};

use crate::config::O3Config;
use crate::core::O3Core;

/// The out-of-order multicore baseline.
///
/// # Examples
///
/// ```
/// use diag_asm::assemble;
/// use diag_baseline::{O3Config, OooCpu};
/// use diag_sim::Machine;
///
/// let program = assemble("li a0, 9\nsw a0, 0(zero)\necall\n")?;
/// let mut cpu = OooCpu::new(O3Config::aggressive_8wide(), 12);
/// let stats = cpu.run(&program, 1)?;
/// assert_eq!(cpu.read_word(0), 9);
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OooCpu {
    config: O3Config,
    max_cores: usize,
    mem: Option<MainMemory>,
    last_stats: Option<RunStats>,
}

impl OooCpu {
    /// Creates a multicore baseline with up to `max_cores` cores (the
    /// paper uses 12).
    ///
    /// # Panics
    ///
    /// Panics if `max_cores` is zero.
    pub fn new(config: O3Config, max_cores: usize) -> OooCpu {
        assert!(max_cores > 0, "need at least one core");
        OooCpu { config, max_cores, mem: None, last_stats: None }
    }

    /// The paper's baseline: 12 cores of the aggressive 8-wide
    /// configuration.
    pub fn paper_baseline() -> OooCpu {
        OooCpu::new(O3Config::aggressive_8wide(), 12)
    }

    /// The core configuration.
    pub fn config(&self) -> &O3Config {
        &self.config
    }

    /// Statistics of the most recent run, if any.
    pub fn last_stats(&self) -> Option<&RunStats> {
        self.last_stats.as_ref()
    }
}

impl Machine for OooCpu {
    fn name(&self) -> String {
        format!("{}x{}", self.config.name, self.max_cores)
    }

    fn run(&mut self, program: &Program, threads: usize) -> Result<RunStats, SimError> {
        let threads = threads.max(1);
        let mut mem = MainMemory::with_program(program);
        let l2 = SharedLevel::new(self.config.l2).into_shared();
        let mut stats = RunStats {
            threads: threads as u64,
            freq_ghz: self.config.freq_ghz,
            ..RunStats::default()
        };
        let mut committed = 0u64;
        let mut finish_time = 0u64;

        let mut tid = 0usize;
        let mut wave_start = 0u64;
        while tid < threads {
            let batch = self.max_cores.min(threads - tid);
            let mut cores: Vec<O3Core<'_>> = (0..batch)
                .map(|k| {
                    let l1d = PrivateCache::new(self.config.l1d, std::rc::Rc::clone(&l2));
                    O3Core::new(program, &self.config, l1d, tid + k, threads, wave_start)
                })
                .collect();
            loop {
                let next = cores
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.halted)
                    .min_by_key(|(_, c)| c.clock())
                    .map(|(i, _)| i);
                let Some(idx) = next else { break };
                cores[idx].step(&mut mem)?;
                if cores[idx].clock() > self.config.max_cycles {
                    return Err(SimError::CycleLimit { limit: self.config.max_cycles });
                }
            }
            for core in &cores {
                committed += core.committed();
                stats.activity += core.stats.activity;
                stats.stalls += core.stats.stalls;
                wave_start = wave_start.max(core.clock());
            }
            finish_time = finish_time.max(wave_start);
            tid += batch;
        }

        stats.cycles = finish_time;
        stats.committed = committed;
        stats.activity.busy_cycles = finish_time;
        self.mem = Some(mem);
        self.last_stats = Some(stats);
        Ok(stats)
    }

    fn read_word(&self, addr: u32) -> u32 {
        self.mem.as_ref().map_or(0, |m| m.read_u32(addr))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    #[test]
    fn single_thread_loop() {
        let program = assemble(
            r#"
                li t0, 100
                li t1, 0
            loop:
                add t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                sw t1, 0(zero)
                ecall
            "#,
        )
        .unwrap();
        let mut cpu = OooCpu::paper_baseline();
        let stats = cpu.run(&program, 1).unwrap();
        assert_eq!(cpu.read_word(0), 5050);
        assert_eq!(stats.committed, 304);
        // An 8-wide OoO on a 3-instruction loop body with a serial
        // dependence chain should sustain close to one iteration per cycle.
        assert!(stats.ipc() > 1.0, "IPC = {:.2}", stats.ipc());
    }

    #[test]
    fn wide_ilp_beats_serial_chain() {
        let par = r#"
            li t0, 1
            li t1, 1
            li t2, 1
            li t3, 1
            add t0, t0, t0
            add t1, t1, t1
            add t2, t2, t2
            add t3, t3, t3
            ecall
        "#;
        let ser = r#"
            li t0, 1
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            ecall
        "#;
        let mut cpu = OooCpu::paper_baseline();
        let p = cpu.run(&assemble(par).unwrap(), 1).unwrap();
        let s = cpu.run(&assemble(ser).unwrap(), 1).unwrap();
        assert!(p.cycles < s.cycles, "parallel {} vs serial {}", p.cycles, s.cycles);
    }

    #[test]
    fn multithread_scales() {
        // Each thread sums a private array slice; more threads, same total
        // work, shorter wall-clock.
        let src = r#"
                li   t1, 4096
                div  t2, t1, a1
                mul  t0, t2, a0
                add  t2, t0, t2
                slli t3, t0, 2
                li   t4, 0
            loop:
                lw   t5, 0(t3)
                add  t4, t4, t5
                addi t3, t3, 4
                addi t0, t0, 1
                blt  t0, t2, loop
                slli t6, a0, 2
                li   s0, 0x80000
                add  t6, t6, s0
                sw   t4, 0(t6)
                ecall
            "#;
        let program = assemble(src).unwrap();
        let mut cpu = OooCpu::paper_baseline();
        let one = cpu.run(&program, 1).unwrap();
        let twelve = cpu.run(&program, 12).unwrap();
        assert!(
            twelve.cycles * 4 < one.cycles,
            "12 threads ({}) should be much faster than 1 ({})",
            twelve.cycles,
            one.cycles
        );
    }

    #[test]
    fn waves_beyond_core_count() {
        let program = assemble("slli t0, a0, 2\nsw a1, 0(t0)\necall\n").unwrap();
        let mut cpu = OooCpu::new(O3Config::aggressive_8wide(), 2);
        cpu.run(&program, 5).unwrap();
        for t in 0..5u32 {
            assert_eq!(cpu.read_word(4 * t), 5);
        }
    }

    #[test]
    fn branch_predictor_pays_off() {
        // A regular loop should mispredict rarely after warm-up.
        let program = assemble(
            r#"
                li t0, 1000
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ecall
            "#,
        )
        .unwrap();
        let mut cpu = OooCpu::paper_baseline();
        let stats = cpu.run(&program, 1).unwrap();
        assert!(
            stats.activity.mispredicts < 20,
            "mispredicts = {}",
            stats.activity.mispredicts
        );
    }
}
