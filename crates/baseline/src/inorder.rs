//! A single-issue in-order reference machine.
//!
//! This is the golden model for differential testing: the simplest
//! possible timing (one instruction per cycle, stall on RAW, flat memory
//! latency, taken-branch bubble) over the shared architectural
//! interpreter. The paper notes that "a DiAG processor with only one
//! functional unit is nearly identical to the back-end of an in-order
//! single-issue CPU" (§2) — this machine is that degenerate case.

use diag_asm::Program;
use diag_mem::MainMemory;
use diag_sim::interp::{arch_step, ArchState, MemEffect};
use diag_sim::{Machine, RunStats, SimError};

/// Flat memory access latency for the reference machine.
const MEM_LATENCY: u64 = 4;
/// Bubble cycles after a taken control transfer.
const BRANCH_BUBBLE: u64 = 2;

/// The single-issue in-order reference machine.
///
/// # Examples
///
/// ```
/// use diag_asm::assemble;
/// use diag_baseline::InOrder;
/// use diag_sim::Machine;
///
/// let program = assemble("li a0, 3\nsw a0, 0(zero)\necall\n")?;
/// let mut cpu = InOrder::new();
/// let stats = cpu.run(&program, 1)?;
/// assert_eq!(cpu.read_word(0), 3);
/// assert_eq!(stats.committed, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct InOrder {
    mem: Option<MainMemory>,
    max_cycles: u64,
}

impl InOrder {
    /// Creates the reference machine.
    pub fn new() -> InOrder {
        InOrder { mem: None, max_cycles: diag_sim::DEFAULT_CYCLE_LIMIT }
    }

    /// Sets the cycle limit.
    pub fn with_cycle_limit(mut self, limit: u64) -> InOrder {
        self.max_cycles = limit;
        self
    }
}

impl Machine for InOrder {
    fn name(&self) -> String {
        "inorder".to_string()
    }

    fn run(&mut self, program: &Program, threads: usize) -> Result<RunStats, SimError> {
        let threads = threads.max(1);
        let mut mem = MainMemory::with_program(program);
        let mut stats = RunStats { threads: threads as u64, freq_ghz: 2.0, ..RunStats::default() };
        let mut total_cycles = 0u64;
        // Threads run sequentially on the single core (time-sliced would
        // give the same total).
        for tid in 0..threads {
            let mut state = ArchState::new_thread(program.entry(), tid, threads);
            let mut reg_ready = [0u64; diag_isa::NUM_LANES];
            let mut clock = 0u64;
            while !state.halted {
                let info = arch_step(&mut state, program, &mut mem, None)?;
                let mut start = clock;
                for src in info.inst.sources().iter() {
                    start = start.max(reg_ready[src.index()]);
                }
                let latency = match info.mem {
                    MemEffect::None => info.inst.exec_latency() as u64,
                    _ => MEM_LATENCY,
                };
                let finish = start + latency;
                if let Some((lane, _)) = info.dest {
                    if !lane.is_zero() {
                        reg_ready[lane.index()] = finish;
                        stats.activity.reg_writes += 1;
                    }
                }
                clock = start + 1 + if info.redirected { BRANCH_BUBBLE } else { 0 };
                stats.committed += 1;
                stats.activity.decodes += 1;
                match info.mem {
                    MemEffect::Load { .. } => stats.activity.loads += 1,
                    MemEffect::Store { .. } => stats.activity.stores += 1,
                    MemEffect::None => {
                        if info.inst.uses_fpu() {
                            stats.activity.fp_ops += 1;
                        } else {
                            stats.activity.int_ops += 1;
                        }
                    }
                }
                if clock > self.max_cycles {
                    return Err(SimError::CycleLimit { limit: self.max_cycles });
                }
            }
            total_cycles += clock;
        }
        stats.cycles = total_cycles;
        self.mem = Some(mem);
        Ok(stats)
    }

    fn read_word(&self, addr: u32) -> u32 {
        self.mem.as_ref().map_or(0, |m| m.read_u32(addr))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    #[test]
    fn runs_a_loop() {
        let program = assemble(
            r#"
                li t0, 10
                li t1, 0
            loop:
                add t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                sw t1, 0(zero)
                ecall
            "#,
        )
        .unwrap();
        let mut cpu = InOrder::new();
        let stats = cpu.run(&program, 1).unwrap();
        assert_eq!(cpu.read_word(0), 55);
        assert_eq!(stats.committed, 2 + 30 + 2);
        assert!(stats.cycles >= stats.committed);
    }

    #[test]
    fn threads_run_sequentially() {
        let program = assemble("slli t0, a0, 2\nsw a1, 0(t0)\necall\n").unwrap();
        let mut cpu = InOrder::new();
        let stats = cpu.run(&program, 4).unwrap();
        for t in 0..4u32 {
            assert_eq!(cpu.read_word(4 * t), 4);
        }
        assert_eq!(stats.committed, 12);
    }

    #[test]
    fn cycle_limit() {
        let program = assemble("loop: j loop\n").unwrap();
        let mut cpu = InOrder::new().with_cycle_limit(1000);
        assert!(matches!(cpu.run(&program, 1), Err(SimError::CycleLimit { .. })));
    }
}
