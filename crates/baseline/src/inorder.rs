//! A single-issue in-order reference machine.
//!
//! This is the golden model for differential testing: the simplest
//! possible timing (one instruction per cycle, stall on RAW, flat memory
//! latency, taken-branch bubble) over the shared architectural
//! interpreter. The paper notes that "a DiAG processor with only one
//! functional unit is nearly identical to the back-end of an in-order
//! single-issue CPU" (§2) — this machine is that degenerate case.

use std::sync::Arc;

use diag_asm::Program;
use diag_isa::{StationSlot, StationTable};
use diag_mem::MainMemory;
use diag_sim::interp::{station_step, ArchState, MemEffect};
use diag_sim::{
    Bucket, Commit, Machine, Observer, Profiler, RetireSample, RunStats, SimError, StepOutcome,
};
use diag_trace::{Event, EventKind, Tracer, Track};

/// Flat memory access latency for the reference machine.
const MEM_LATENCY: u64 = 4;
/// Bubble cycles after a taken control transfer.
const BRANCH_BUBBLE: u64 = 2;

/// In-flight execution state of one reference run. Threads run
/// sequentially on the single core (time-sliced would give the same
/// total), so the state is one thread's registers plus the id of the
/// thread currently running.
#[derive(Debug)]
struct InOrderRun {
    program: Arc<Program>,
    /// Text segment predecoded once at load (or adopted already-lowered
    /// from the artifact pipeline); the step loop never touches the
    /// decoder (the *modeled* pipeline still decodes every dynamic
    /// instruction — see the `decodes` counter).
    stations: Arc<StationTable>,
    threads: usize,
    mem: MainMemory,
    state: ArchState,
    reg_ready: [u64; diag_isa::NUM_LANES],
    clock: u64,
    /// Thread currently executing.
    tid: usize,
    /// Cycles of threads that already finished.
    total_cycles: u64,
    stats: RunStats,
    halted: bool,
}

/// The single-issue in-order reference machine.
///
/// # Examples
///
/// ```
/// use diag_asm::assemble;
/// use diag_baseline::InOrder;
/// use diag_sim::Machine;
///
/// let program = assemble("li a0, 3\nsw a0, 0(zero)\necall\n")?;
/// let mut cpu = InOrder::new();
/// let stats = cpu.run(&program, 1)?;
/// assert_eq!(cpu.read_word(0), 3);
/// assert_eq!(stats.committed, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct InOrder {
    max_cycles: u64,
    run: Option<InOrderRun>,
    last_stats: Option<RunStats>,
    commit_log: bool,
    commits: Vec<Commit>,
    tracer: Tracer,
    profiler: Profiler,
    observer: Observer,
}

impl Default for InOrder {
    fn default() -> InOrder {
        InOrder::new()
    }
}

impl InOrder {
    /// Creates the reference machine.
    pub fn new() -> InOrder {
        InOrder {
            max_cycles: diag_sim::DEFAULT_CYCLE_LIMIT,
            run: None,
            last_stats: None,
            commit_log: false,
            commits: Vec::new(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
            observer: Observer::off(),
        }
    }

    /// Sets the cycle limit.
    pub fn with_cycle_limit(mut self, limit: u64) -> InOrder {
        self.max_cycles = limit;
        self
    }

    /// Shared body of [`Machine::load`] / [`Machine::load_prepared`]:
    /// mounts the program, adopting a caller-prepared [`StationTable`]
    /// when one is supplied and lowering the text once otherwise.
    fn load_with(
        &mut self,
        program: &Program,
        stations: Option<&Arc<StationTable>>,
        threads: usize,
    ) {
        let threads = threads.max(1);
        let program = Arc::new(program.clone());
        let mem = MainMemory::with_program(&program);
        self.last_stats = None;
        self.commits.clear();
        self.run = Some(InOrderRun {
            state: ArchState::new_thread(program.entry(), 0, threads),
            stations: match stations {
                Some(table) => Arc::clone(table),
                None => Arc::new(StationTable::build(program.text_base(), program.text())),
            },
            program,
            threads,
            mem,
            reg_ready: [0u64; diag_isa::NUM_LANES],
            clock: 0,
            tid: 0,
            total_cycles: 0,
            stats: RunStats {
                threads: threads as u64,
                freq_ghz: 2.0,
                ..RunStats::default()
            },
            halted: false,
        });
        self.tracer.emit(|| Event {
            cycle: 0,
            thread: 0,
            track: Track::Core(0),
            kind: EventKind::ThreadStart,
        });
    }
}

impl Machine for InOrder {
    fn name(&self) -> String {
        "inorder".to_string()
    }

    fn load(&mut self, program: &Program, threads: usize) {
        self.load_with(program, None, threads);
    }

    fn load_prepared(&mut self, program: &Program, stations: &Arc<StationTable>, threads: usize) {
        self.load_with(program, Some(stations), threads);
    }

    fn step(&mut self) -> Result<StepOutcome, SimError> {
        let run = self.run.as_mut().ok_or(SimError::NotLoaded)?;
        if run.halted {
            return Err(SimError::NotLoaded);
        }
        let st = match *run.stations.get(run.state.pc) {
            StationSlot::Ready(st) => st,
            StationSlot::Illegal { word } => {
                let pc = run.state.pc;
                return Err(SimError::IllegalInstruction { addr: pc, word });
            }
            StationSlot::Empty => {
                let pc = run.state.pc;
                return Err(SimError::PcOutOfRange { pc });
            }
        };
        let info = station_step(&mut run.state, &run.stations, &mut run.mem, None)?;
        self.observer.retire(
            info.pc,
            info.dest,
            match info.mem {
                MemEffect::Load { addr, .. } | MemEffect::Store { addr, .. } => Some(addr),
                MemEffect::None => None,
            },
        );
        let prev_clock = run.clock;
        let mut start = run.clock;
        for src in st.srcs.iter() {
            start = start.max(run.reg_ready[src.index()]);
        }
        let latency = match info.mem {
            MemEffect::None => st.latency as u64,
            _ => MEM_LATENCY,
        };
        let finish = start + latency;
        if let Some((lane, _)) = info.dest {
            if !lane.is_zero() {
                run.reg_ready[lane.index()] = finish;
                run.stats.activity.reg_writes += 1;
            }
        }
        run.clock = start + 1 + if info.redirected { BRANCH_BUBBLE } else { 0 };
        let new_clock = run.clock;
        self.profiler.retire(|| {
            // [prev, start) waits on sources, the single-issue cycle is
            // retiring (memory-bound for loads/stores), and a taken
            // branch's bubble is transit — summing to the clock delta.
            let mut parts = [0u64; 5];
            parts[Bucket::LaneWait.index()] += start - prev_clock;
            let exec_bucket = if matches!(info.mem, MemEffect::None) {
                Bucket::Retiring
            } else {
                Bucket::MemoryBound
            };
            parts[exec_bucket.index()] += 1;
            parts[Bucket::RingTransit.index()] += new_clock - start - 1;
            RetireSample {
                pc: info.pc,
                cluster: 0,
                slot: 0,
                reused: false,
                parts,
            }
        });
        run.stats.committed += 1;
        run.stats.activity.decodes += 1;
        match info.mem {
            MemEffect::Load { .. } => run.stats.activity.loads += 1,
            MemEffect::Store { .. } => run.stats.activity.stores += 1,
            MemEffect::None => {
                if st.uses_fpu {
                    run.stats.activity.fp_ops += 1;
                } else {
                    run.stats.activity.int_ops += 1;
                }
            }
        }
        if self.commit_log {
            self.commits.push(Commit {
                thread: run.tid as u32,
                pc: info.pc,
                dest: info.dest.filter(|(lane, _)| !lane.is_zero()),
            });
        }
        let tid = run.tid as u32;
        self.tracer.emit(|| Event {
            cycle: run.clock,
            thread: tid,
            track: Track::Core(tid),
            kind: EventKind::PeRetire {
                pc: info.pc,
                start,
                finish,
            },
        });
        if run.clock > self.max_cycles {
            return Err(SimError::CycleLimit {
                limit: self.max_cycles,
            });
        }
        if run.state.halted {
            let at = run.clock;
            self.tracer.emit(|| Event {
                cycle: at,
                thread: tid,
                track: Track::Core(tid),
                kind: EventKind::ThreadHalt,
            });
            self.profiler.thread_span(tid, 0, run.clock);
            run.total_cycles += run.clock;
            run.tid += 1;
            if run.tid < run.threads {
                // Next thread takes over the (single) core with fresh
                // architectural and timing state.
                run.state = ArchState::new_thread(run.program.entry(), run.tid, run.threads);
                run.reg_ready = [0u64; diag_isa::NUM_LANES];
                run.clock = 0;
                let next = run.tid as u32;
                self.tracer.emit(|| Event {
                    cycle: 0,
                    thread: next,
                    track: Track::Core(next),
                    kind: EventKind::ThreadStart,
                });
            } else {
                run.stats.cycles = run.total_cycles;
                run.halted = true;
                self.last_stats = Some(run.stats);
                let _ = self.tracer.flush();
                return Ok(StepOutcome::Halted);
            }
        }
        Ok(StepOutcome::Running)
    }

    fn stats(&self) -> RunStats {
        if let Some(stats) = self.last_stats {
            return stats;
        }
        let Some(run) = &self.run else {
            return RunStats::default();
        };
        let mut stats = run.stats;
        stats.cycles = run.total_cycles + run.clock;
        stats
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    fn set_commit_log(&mut self, enabled: bool) {
        self.commit_log = enabled;
    }

    fn take_commits(&mut self) -> Vec<Commit> {
        std::mem::take(&mut self.commits)
    }

    fn read_word(&self, addr: u32) -> u32 {
        self.run.as_ref().map_or(0, |r| r.mem.read_u32(addr))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    #[test]
    fn runs_a_loop() {
        let program = assemble(
            r#"
                li t0, 10
                li t1, 0
            loop:
                add t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                sw t1, 0(zero)
                ecall
            "#,
        )
        .unwrap();
        let mut cpu = InOrder::new();
        let stats = cpu.run(&program, 1).unwrap();
        assert_eq!(cpu.read_word(0), 55);
        assert_eq!(stats.committed, 2 + 30 + 2);
        assert!(stats.cycles >= stats.committed);
    }

    #[test]
    fn threads_run_sequentially() {
        let program = assemble("slli t0, a0, 2\nsw a1, 0(t0)\necall\n").unwrap();
        let mut cpu = InOrder::new();
        let stats = cpu.run(&program, 4).unwrap();
        for t in 0..4u32 {
            assert_eq!(cpu.read_word(4 * t), 4);
        }
        assert_eq!(stats.committed, 12);
    }

    #[test]
    fn cycle_limit() {
        let program = assemble("loop: j loop\n").unwrap();
        let mut cpu = InOrder::new().with_cycle_limit(1000);
        assert!(matches!(
            cpu.run(&program, 1),
            Err(SimError::CycleLimit { .. })
        ));
    }
}
