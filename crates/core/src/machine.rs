//! The complete DiAG processor model.
//!
//! [`Diag`] assembles the shared memory system, partitions clusters into
//! dataflow rings according to the thread count (paper §7.2.1: one ring of
//! all clusters for a single thread, "16-by-2" rings for multi-threaded
//! runs), interleaves ring execution in time order so shared-resource
//! contention (L1D banks, L2, DRAM channel, 512-bit bus) is modelled, and
//! aggregates statistics.

use std::sync::Arc;

use diag_asm::Program;
use diag_mem::MainMemory;
use diag_sim::{Commit, Machine, Observer, Profiler, RunStats, SimError, StepOutcome};
use diag_trace::{Event, EventKind, Tracer, Track};

use crate::config::DiagConfig;
use crate::ring::RingSim;
use crate::shared::SharedParts;

/// In-flight execution state of one DiAG run (between
/// [`Machine::load`] and the final [`Machine::step`]).
#[derive(Debug)]
struct DiagRun {
    program: Arc<Program>,
    threads: usize,
    ring_count: usize,
    clusters_per_ring: usize,
    shared: SharedParts,
    /// Rings of the current wave (empty only transiently).
    rings: Vec<RingSim>,
    /// Aggregate statistics of completed waves.
    stats: RunStats,
    committed: u64,
    /// First thread id not yet launched.
    next_tid: usize,
    wave_start: u64,
    wave_floor: u64,
    finish_time: u64,
    halted: bool,
}

impl DiagRun {
    /// Launches the next wave of threads onto fresh rings.
    fn launch_wave(
        &mut self,
        config: &Arc<DiagConfig>,
        commit_log: bool,
        profiler: &Profiler,
        observer: &Observer,
    ) {
        let batch = self.ring_count.min(self.threads - self.next_tid);
        self.rings = (0..batch)
            .map(|k| {
                let mut ring = RingSim::new(
                    Arc::clone(&self.program),
                    Arc::clone(config),
                    self.clusters_per_ring,
                    self.next_tid + k,
                    self.threads,
                    self.wave_start,
                );
                ring.commit_log = commit_log;
                ring.tracer = self.shared.tracer.clone();
                ring.profiler = profiler.clone();
                ring.observer = observer.clone();
                ring
            })
            .collect();
        let at = self.wave_start;
        for ring in &self.rings {
            let thread = ring.thread_id() as u32;
            self.shared.tracer.emit(|| Event {
                cycle: at,
                thread,
                track: Track::Control,
                kind: EventKind::ThreadStart,
            });
        }
        self.next_tid += batch;
    }
}

/// A DiAG processor instance.
///
/// # Examples
///
/// ```
/// use diag_asm::assemble;
/// use diag_core::{Diag, DiagConfig};
/// use diag_sim::Machine;
///
/// let program = assemble("li a0, 7\nsw a0, 0(zero)\necall\n")?;
/// let mut diag = Diag::new(DiagConfig::f4c2());
/// let stats = diag.run(&program, 1)?;
/// assert_eq!(diag.read_word(0), 7);
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Or stepped externally:
///
/// ```
/// use diag_asm::assemble;
/// use diag_core::{Diag, DiagConfig};
/// use diag_sim::Machine;
///
/// let program = assemble("li a0, 7\nsw a0, 0(zero)\necall\n")?;
/// let mut diag = Diag::new(DiagConfig::f4c2());
/// diag.load(&program, 1);
/// while !diag.step()?.is_halted() {}
/// assert_eq!(diag.read_word(0), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Diag {
    config: Arc<DiagConfig>,
    run: Option<DiagRun>,
    last_stats: Option<RunStats>,
    last_trace: Vec<crate::ring::TraceEvent>,
    commit_log: bool,
    commits: Vec<Commit>,
    tracer: Tracer,
    profiler: Profiler,
    observer: Observer,
}

impl Diag {
    /// Creates a DiAG processor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent
    /// (see [`DiagConfig::validate`]).
    pub fn new(config: DiagConfig) -> Diag {
        if let Err(e) = config.validate() {
            panic!("invalid DiagConfig {:?}: {e}", config.name);
        }
        Diag {
            config: Arc::new(config),
            run: None,
            last_stats: None,
            last_trace: Vec::new(),
            commit_log: false,
            commits: Vec::new(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
            observer: Observer::off(),
        }
    }

    /// The processor's configuration.
    pub fn config(&self) -> &DiagConfig {
        &self.config
    }

    /// Statistics of the most recent run, if any.
    pub fn last_stats(&self) -> Option<&RunStats> {
        self.last_stats.as_ref()
    }

    /// Per-instruction execution trace of the most recent run (empty
    /// unless [`DiagConfig::collect_trace`] is set).
    ///
    /// # Ordering guarantee
    ///
    /// Events are sorted by retirement (commit) time *within each ring*;
    /// across rings they are merely concatenated — first wave by wave,
    /// then ring by ring in thread-id order within a wave — so the slice
    /// as a whole is **not** globally cycle-sorted for multi-threaded
    /// runs. Use [`Diag::merged_trace`] for a globally cycle-sorted view.
    /// Events of waves completed so far are visible mid-run.
    pub fn last_trace(&self) -> &[crate::ring::TraceEvent] {
        &self.last_trace
    }

    /// [`Diag::last_trace`] merged across rings into a single
    /// retirement-time-sorted stream. Ties on commit cycle are broken by
    /// thread id, then start cycle, then PC, so the view is deterministic.
    pub fn merged_trace(&self) -> Vec<crate::ring::TraceEvent> {
        let mut merged = self.last_trace.clone();
        merged.sort_by_key(|e| (e.commit, e.thread, e.start, e.pc));
        merged
    }

    /// Folds a finished wave's rings into the aggregate statistics.
    fn finish_wave(&mut self, run: &mut DiagRun) {
        for ring in &mut run.rings {
            self.last_trace.append(&mut ring.trace);
            self.profiler
                .thread_span(ring.thread_id() as u32, run.wave_floor, ring.clock());
            run.committed += ring.commit.committed();
            run.stats.activity += ring.stats.activity();
            run.stats.stalls += ring.stats.stalls;
            // Resident-PE·cycles: a loaded cluster's PEs, register-lane
            // segments, and decoder latches stay powered while resident
            // (paper §7.3.1: register lanes and control are always
            // powered; idle PEs are clock-gated).
            run.stats.activity.pe_resident_cycles +=
                (ring.max_resident_clusters() * self.config.pes_per_cluster) as u64
                    * ring.clock().saturating_sub(run.wave_floor);
            run.wave_start = run.wave_start.max(ring.clock());
        }
        run.finish_time = run.finish_time.max(run.wave_start);
        run.wave_floor = run.wave_start;
        run.rings.clear();
    }
}

impl Machine for Diag {
    fn name(&self) -> String {
        format!("diag-{}", self.config.name.to_lowercase())
    }

    fn load(&mut self, program: &Program, threads: usize) {
        let threads = threads.max(1);
        let program = Arc::new(program.clone());
        let mut shared = SharedParts::new(&self.config, MainMemory::with_program(&program));
        shared.tracer = self.tracer.clone();
        self.last_trace.clear();
        self.commits.clear();
        self.last_stats = None;
        let mut run = DiagRun {
            threads,
            ring_count: self.config.rings_for(threads),
            clusters_per_ring: self.config.clusters_per_ring(threads),
            program,
            shared,
            rings: Vec::new(),
            stats: RunStats {
                threads: threads as u64,
                freq_ghz: self.config.freq_ghz,
                ..RunStats::default()
            },
            committed: 0,
            next_tid: 0,
            wave_start: 0,
            wave_floor: 0,
            finish_time: 0,
            halted: false,
        };
        // Threads beyond the ring capacity run in waves (the scheduling
        // table frees rings as threads halt; waves are a conservative
        // approximation).
        run.launch_wave(
            &self.config,
            self.commit_log,
            &self.profiler,
            &self.observer,
        );
        self.run = Some(run);
    }

    fn step(&mut self) -> Result<StepOutcome, SimError> {
        let mut run = self.run.take().ok_or(SimError::NotLoaded)?;
        let result = (|| {
            if run.halted {
                return Err(SimError::NotLoaded);
            }
            // Advance the ring that is furthest behind, so shared
            // busy-until state is updated in approximate time order.
            let next = run
                .rings
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.halted)
                .min_by_key(|(_, r)| r.clock())
                .map(|(i, _)| i);
            if let Some(idx) = next {
                run.rings[idx].step(&mut run.shared)?;
                self.commits.append(&mut run.rings[idx].commits);
                if run.rings[idx].clock() > self.config.max_cycles {
                    return Err(SimError::CycleLimit {
                        limit: self.config.max_cycles,
                    });
                }
                return Ok(StepOutcome::Running);
            }
            // Every ring of the wave has halted: fold it in and launch the
            // next wave, or finish the run.
            self.finish_wave(&mut run);
            if run.next_tid < run.threads {
                run.launch_wave(
                    &self.config,
                    self.commit_log,
                    &self.profiler,
                    &self.observer,
                );
                Ok(StepOutcome::Running)
            } else {
                run.stats.cycles = run.finish_time;
                run.stats.committed = run.committed;
                run.stats.activity.busy_cycles = run.finish_time;
                run.halted = true;
                self.last_stats = Some(run.stats);
                let _ = self.tracer.flush();
                Ok(StepOutcome::Halted)
            }
        })();
        self.run = Some(run);
        result
    }

    fn stats(&self) -> RunStats {
        if let Some(stats) = self.last_stats {
            return stats;
        }
        let Some(run) = &self.run else {
            return RunStats::default();
        };
        let mut stats = run.stats;
        stats.committed = run.committed;
        let mut clock = run.finish_time;
        for ring in &run.rings {
            stats.activity += ring.stats.activity();
            stats.stalls += ring.stats.stalls;
            stats.committed += ring.commit.committed();
            clock = clock.max(ring.clock());
        }
        stats.cycles = clock;
        stats.activity.busy_cycles = clock;
        stats
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    fn set_commit_log(&mut self, enabled: bool) {
        self.commit_log = enabled;
        if let Some(run) = &mut self.run {
            for ring in &mut run.rings {
                ring.commit_log = enabled;
            }
        }
    }

    fn take_commits(&mut self) -> Vec<Commit> {
        std::mem::take(&mut self.commits)
    }

    fn read_word(&self, addr: u32) -> u32 {
        self.run.as_ref().map_or(0, |r| r.shared.mem.read_u32(addr))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    fn run(src: &str) -> (Diag, RunStats) {
        let program = assemble(src).unwrap();
        let mut diag = Diag::new(DiagConfig::f4c2());
        let stats = diag.run(&program, 1).unwrap();
        (diag, stats)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (diag, stats) = run(r#"
            li   t0, 6
            li   t1, 7
            mul  t2, t0, t1
            sw   t2, 0(zero)
            ecall
            "#);
        assert_eq!(diag.read_word(0), 42);
        assert_eq!(stats.committed, 5);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn loop_sums_and_reuses_datapath() {
        let (diag, stats) = run(r#"
                li   t0, 100
                li   t1, 0
            loop:
                add  t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                sw   t1, 64(zero)
                ecall
            "#);
        assert_eq!(diag.read_word(64), 5050);
        // 2 + 100*3 + 2 = 304 committed instructions.
        assert_eq!(stats.committed, 304);
        // The loop body re-executes from the resident datapath.
        assert!(
            stats.activity.reuse_commits > 250,
            "reuse = {}",
            stats.activity.reuse_commits
        );
        assert!(stats.activity.decodes < 20);
    }

    #[test]
    fn ilp_executes_in_parallel() {
        // Eight independent chains should overlap; a strictly serial
        // machine would need ~8x the cycles of one chain.
        let (_, par) = run(r#"
            li t0, 1
            li t1, 1
            li t2, 1
            li t3, 1
            add t0, t0, t0
            add t1, t1, t1
            add t2, t2, t2
            add t3, t3, t3
            ecall
            "#);
        let (_, ser) = run(r#"
            li t0, 1
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            add t0, t0, t0
            ecall
            "#);
        assert!(
            par.cycles < ser.cycles,
            "independent chains ({}) should beat a serial chain ({})",
            par.cycles,
            ser.cycles
        );
    }

    #[test]
    fn memory_round_trip() {
        let (diag, _) = run(r#"
            li   t0, 0x1234
            sw   t0, 0(zero)
            lw   t1, 0(zero)
            addi t1, t1, 1
            sw   t1, 4(zero)
            sb   t1, 8(zero)
            lbu  t2, 8(zero)
            sw   t2, 12(zero)
            ecall
            "#);
        assert_eq!(diag.read_word(0), 0x1234);
        assert_eq!(diag.read_word(4), 0x1235);
        assert_eq!(diag.read_word(12), 0x35);
    }

    #[test]
    fn fp_kernel() {
        let (diag, _) = run(r#"
            .data
            vals:
                .float 3.0, 4.0
            .text
                la    a2, vals
                flw   ft0, 0(a2)
                flw   ft1, 4(a2)
                fmul.s ft2, ft0, ft0
                fmadd.s ft2, ft1, ft1, ft2
                fsqrt.s ft3, ft2
                fsw   ft3, 8(a2)
                ecall
            "#);
        let addr = 8;
        let p = assemble("nop").unwrap();
        let _ = p;
        let v = f32::from_bits(diag.read_word(diag_asm::DATA_BASE + addr));
        assert_eq!(v, 5.0);
    }

    #[test]
    fn forward_branch_skips() {
        let (diag, _) = run(r#"
                li t0, 1
                beqz t0, skip
                li t1, 111
                j out
            skip:
                li t1, 222
            out:
                sw t1, 0(zero)
                ecall
            "#);
        assert_eq!(diag.read_word(0), 111);
    }

    #[test]
    fn multithreaded_disjoint_sums() {
        // Each thread t writes t+1 to word 4*t.
        let program = assemble(
            r#"
                slli t0, a0, 2
                addi t1, a0, 1
                sw   t1, 0(t0)
                ecall
            "#,
        )
        .unwrap();
        let mut diag = Diag::new(DiagConfig::f4c32());
        let stats = diag.run(&program, 12).unwrap();
        for t in 0..12u32 {
            assert_eq!(diag.read_word(4 * t), t + 1, "thread {t}");
        }
        assert_eq!(stats.threads, 12);
        assert_eq!(stats.committed, 4 * 12);
    }

    #[test]
    fn thread_waves_beyond_ring_capacity() {
        // F4C2 in multi-thread mode has 1 ring of 2 clusters; 3 threads
        // need two waves.
        let program = assemble(
            r#"
                slli t0, a0, 2
                sw   a1, 0(t0)
                ecall
            "#,
        )
        .unwrap();
        let mut diag = Diag::new(DiagConfig::f4c2());
        diag.run(&program, 3).unwrap();
        for t in 0..3u32 {
            assert_eq!(diag.read_word(4 * t), 3);
        }
    }

    #[test]
    fn simt_region_pipelines() {
        // for (i = 0; i < 64; i++) out[i] = i * 3;
        let src = r#"
            .data
            out:
                .zero 256
            .text
                la   a2, out
                li   t0, 0
                li   t1, 1
                li   t2, 64
            head:
                simt_s t0, t1, t2, 1
                li   t3, 3
                mul  t4, t0, t3
                slli t5, t0, 2
                add  t5, t5, a2
                sw   t4, 0(t5)
                simt_e t0, t2, head
                ecall
        "#;
        let program = assemble(src).unwrap();
        let mut with = Diag::new(DiagConfig::f4c32());
        let s_with = with.run(&program, 1).unwrap();
        let out = program.symbol("out").unwrap();
        for i in 0..64u32 {
            assert_eq!(with.read_word(out + 4 * i), i * 3, "i={i}");
        }
        // Sequential-fallback semantics must agree.
        let mut cfg = DiagConfig::f4c32();
        cfg.enable_simt = false;
        let mut without = Diag::new(cfg);
        let s_without = without.run(&program, 1).unwrap();
        for i in 0..64u32 {
            assert_eq!(without.read_word(out + 4 * i), i * 3, "seq i={i}");
        }
        assert!(
            s_with.cycles < s_without.cycles,
            "pipelined ({}) should beat sequential ({})",
            s_with.cycles,
            s_without.cycles
        );
    }

    #[test]
    fn reuse_ablation_slows_loops() {
        let src = r#"
                li   t0, 200
                li   t1, 0
            loop:
                add  t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                ecall
            "#;
        let program = assemble(src).unwrap();
        let mut on = Diag::new(DiagConfig::f4c2());
        let s_on = on.run(&program, 1).unwrap();
        let mut cfg = DiagConfig::f4c2();
        cfg.enable_reuse = false;
        let mut off = Diag::new(cfg);
        let s_off = off.run(&program, 1).unwrap();
        assert!(
            s_on.cycles < s_off.cycles,
            "reuse on ({}) should beat reuse off ({})",
            s_on.cycles,
            s_off.cycles
        );
        assert!(s_on.activity.line_fetches < s_off.activity.line_fetches);
    }

    #[test]
    fn ebreak_traps_to_vector() {
        // Trap vector at the `handler` label: writes a marker then halts.
        let src = r#"
                li  t0, 5
                ebreak
                ecall
            handler:
                li  t1, 0xAB
                sw  t1, 0(zero)
                ecall
            "#;
        let program = assemble(src).unwrap();
        let mut cfg = DiagConfig::f4c2();
        // handler is at instruction index 3 (li t0 = 1, ebreak, ecall).
        cfg.trap_vector = Some(program.text_base() + 3 * 4);
        let mut diag = Diag::new(cfg);
        diag.run(&program, 1).unwrap();
        assert_eq!(diag.read_word(0), 0xAB);
    }

    #[test]
    fn cycle_limit_detects_runaway() {
        let program = assemble("loop: j loop\n").unwrap();
        let mut cfg = DiagConfig::f4c2();
        cfg.max_cycles = 10_000;
        let mut diag = Diag::new(cfg);
        match diag.run(&program, 1) {
            Err(SimError::CycleLimit { limit }) => assert_eq!(limit, 10_000),
            other => panic!("expected CycleLimit, got {other:?}"),
        }
    }

    #[test]
    fn illegal_instruction_reported() {
        use diag_isa::Inst;
        use std::collections::BTreeMap;
        // Craft a program with a raw illegal word.
        let text = vec![diag_isa::encode(&Inst::NOP), 0xFFFF_FFFF];
        let program = diag_asm::Program::from_parts(
            text,
            diag_asm::TEXT_BASE,
            vec![],
            diag_asm::DATA_BASE,
            diag_asm::TEXT_BASE,
            BTreeMap::new(),
        );
        let mut diag = Diag::new(DiagConfig::f4c2());
        match diag.run(&program, 1) {
            Err(SimError::IllegalInstruction { word, .. }) => assert_eq!(word, 0xFFFF_FFFF),
            other => panic!("expected IllegalInstruction, got {other:?}"),
        }
    }

    #[test]
    fn stall_taxonomy_populated_for_memory_bound() {
        // A pointer-chasing loop over a large ring of addresses misses
        // caches; memory stalls should dominate.
        let mut b = diag_asm::ProgramBuilder::new();
        use diag_isa::regs::*;
        // Build a 64K-entry linked ring with stride 1024 bytes.
        let n = 4096u32;
        let stride = 1024u32;
        let mut next = vec![0u32; (n as usize) * (stride as usize) / 4];
        for i in 0..n {
            let idx = (i * stride / 4) as usize;
            next[idx] = diag_asm::DATA_BASE + ((i + 1) % n) * stride;
        }
        b.data_words("ring", &next);
        b.la(A2, "ring");
        b.li(T0, 8192);
        let top = b.bind_new_label();
        b.lw(A2, A2, 0);
        b.addi(T0, T0, -1);
        b.bnez(T0, top);
        b.ecall();
        let program = b.build().unwrap();
        let mut diag = Diag::new(DiagConfig::f4c2());
        let stats = diag.run(&program, 1).unwrap();
        let (mem, _, _) = stats.stalls.shares();
        assert!(mem > 50.0, "memory share = {mem:.1}%");
    }
}
