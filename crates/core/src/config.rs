//! DiAG processor configuration and the paper's evaluation presets.
//!
//! Table 2 of the paper defines four configurations; the presets here
//! reproduce them. Everything the paper calls "parametrizable" (§5) is a
//! field: PEs per cluster, cluster count, ring partitioning, register-lane
//! buffer interval, cache geometry, LSU depth, and the SIMT/reuse feature
//! switches used by the ablation benches.

use diag_mem::CacheConfig;
use std::fmt;

/// A structural constraint violated by a [`DiagConfig`].
///
/// One variant per invariant checked by [`DiagConfig::validate`], so
/// callers that receive configurations from the CLI or the wire can map
/// each violation to a precise diagnostic instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `pes_per_cluster` is zero.
    NoPes,
    /// Fewer than two clusters (§4.3 needs two to alternate).
    TooFewClusters(usize),
    /// Fewer than two clusters per ring.
    TooFewRingClusters(usize),
    /// `lane_buffer_interval` does not divide `pes_per_cluster`.
    IntervalMismatch {
        /// PEs per processing cluster.
        pes_per_cluster: usize,
        /// The offending buffer interval.
        lane_buffer_interval: usize,
    },
    /// `commit_width` is zero.
    ZeroCommitWidth,
    /// `lsu_depth` is zero.
    ZeroLsuDepth,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoPes => write!(f, "need at least one PE per cluster"),
            ConfigError::TooFewClusters(n) => {
                write!(f, "need at least two clusters to alternate (§4.3), got {n}")
            }
            ConfigError::TooFewRingClusters(n) => {
                write!(f, "a ring needs at least two clusters, got {n}")
            }
            ConfigError::IntervalMismatch {
                pes_per_cluster,
                lane_buffer_interval,
            } => write!(
                f,
                "lane buffer interval must divide PEs per cluster \
                 ({lane_buffer_interval} does not divide {pes_per_cluster})"
            ),
            ConfigError::ZeroCommitWidth => write!(f, "commit width must be positive"),
            ConfigError::ZeroLsuDepth => write!(f, "LSU depth must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete parameter set for one DiAG processor instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagConfig {
    /// Configuration name (e.g. `"F4C32"`).
    pub name: String,
    /// PEs per processing cluster (paper: 16, one I-cache line's worth).
    pub pes_per_cluster: usize,
    /// Total processing clusters.
    pub clusters: usize,
    /// Clusters allocated per dataflow ring when running multiple threads
    /// (paper §7.2.1 runs multi-threaded DiAG in "16-by-2 format": two
    /// clusters per ring).
    pub ring_clusters: usize,
    /// Register lanes are buffered every this many PEs (paper §6.1.2:
    /// "register lanes buffered every 8 PEs").
    pub lane_buffer_interval: usize,
    /// Whether the F extension hardware is present (I4C2 is integer-only).
    pub fp_enabled: bool,
    /// Modelled clock frequency in GHz (paper Table 2 "Freq. (Sim.)").
    pub freq_ghz: f64,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry (banked, shared by all rings — §5.2).
    pub l1d: CacheConfig,
    /// Unified L2 geometry, if present.
    pub l2: Option<CacheConfig>,
    /// Outstanding-request window of each cluster's load/store unit.
    pub lsu_depth: usize,
    /// Fast-forwarding window of the per-ring memory lanes (§5.2).
    pub memlane_capacity: usize,
    /// Cycles to transport a fetched I-line to a cluster and latch it
    /// (excludes the I-cache hit latency and bus arbitration).
    pub line_load_cycles: u64,
    /// Maximum simulated cycles before aborting.
    pub max_cycles: u64,
    /// Datapath reuse on backward branches (paper §4.3.2); disabling it
    /// forces a reload of resident lines (ablation).
    pub enable_reuse: bool,
    /// Honour `simt_s`/`simt_e` thread pipelining (§4.4, §5.4); when
    /// disabled the markers execute with their sequential-loop semantics.
    pub enable_simt: bool,
    /// Trap vector for `ebreak` (precise-interrupt support, §5.1.4);
    /// `None` halts the thread instead.
    pub trap_vector: Option<u32>,
    /// Inject an asynchronous interrupt: at the first instruction boundary
    /// after this cycle, thread 0 redirects to the vector (§5.1.4: "when
    /// an interrupt is encountered at instruction i, all instructions from
    /// i+1 … are automatically disabled" and earlier ones retire — precise
    /// by construction).
    pub interrupt_at: Option<(u64, u32)>,
    /// Maximum instructions retiring per cycle per ring (PC-lane
    /// bandwidth through one cluster).
    pub commit_width: usize,
    /// Speculatively construct the datapath on both sides of forward
    /// branches (paper §7.3.2: control penalties "can potentially be
    /// ameliorated by simultaneously constructing multiple speculative
    /// datapaths since DiAG's hardware resources are abundant but usually
    /// sparsely enabled"). Off by default — the paper leaves it as future
    /// work; the `ablation-spec` bench quantifies it.
    pub speculative_datapaths: bool,
    /// Record a per-instruction execution trace (address, PE slot, start/
    /// finish cycles, reuse flag) retrievable via `Diag::last_trace`.
    pub collect_trace: bool,
}

impl DiagConfig {
    fn base(
        name: &str,
        clusters: usize,
        fp: bool,
        l1d_kib: u32,
        l2_mib: Option<u32>,
    ) -> DiagConfig {
        DiagConfig {
            name: name.to_string(),
            pes_per_cluster: 16,
            clusters,
            ring_clusters: 2,
            lane_buffer_interval: 8,
            fp_enabled: fp,
            freq_ghz: if fp { 2.0 } else { 0.1 },
            l1i: CacheConfig::l1i_32k(),
            l1d: CacheConfig::l1d(l1d_kib),
            l2: l2_mib.map(CacheConfig::l2),
            lsu_depth: 16,
            memlane_capacity: 16,
            line_load_cycles: 1,
            max_cycles: diag_sim::DEFAULT_CYCLE_LIMIT,
            enable_reuse: true,
            enable_simt: true,
            trap_vector: None,
            interrupt_at: None,
            commit_width: 16,
            speculative_datapaths: false,
            collect_trace: false,
        }
    }

    /// `I4C2`: RV32I, 2 clusters / 32 PEs, no FPU, 100 MHz FPGA proof of
    /// concept (paper Table 2 and §6.2).
    pub fn i4c2() -> DiagConfig {
        let mut c = DiagConfig::base("I4C2", 2, false, 32, None);
        c.l1d = CacheConfig::l1d(32);
        c
    }

    /// `F4C2`: RV32IMF, 2 clusters / 32 PEs, 64 KiB L1D, 4 MiB L2, 2 GHz.
    pub fn f4c2() -> DiagConfig {
        DiagConfig::base("F4C2", 2, true, 64, Some(4))
    }

    /// `F4C16`: RV32IMF, 16 clusters / 256 PEs, 128 KiB L1D, 4 MiB L2.
    pub fn f4c16() -> DiagConfig {
        DiagConfig::base("F4C16", 16, true, 128, Some(4))
    }

    /// `F4C32`: RV32IMF, 32 clusters / 512 PEs, 128 KiB L1D, 4 MiB L2 —
    /// the paper's headline configuration.
    pub fn f4c32() -> DiagConfig {
        DiagConfig::base("F4C32", 32, true, 128, Some(4))
    }

    /// Total PEs in the processor.
    pub fn total_pes(&self) -> usize {
        self.pes_per_cluster * self.clusters
    }

    /// Instruction bytes per cluster (one I-cache line, §5.1.1).
    pub fn line_bytes(&self) -> u32 {
        (self.pes_per_cluster as u32) * 4
    }

    /// Number of dataflow rings available when running `threads` hardware
    /// threads: each thread needs `ring_clusters` clusters (§7.2.1).
    pub fn rings_for(&self, threads: usize) -> usize {
        if threads <= 1 {
            1
        } else {
            (self.clusters / self.ring_clusters).min(threads).max(1)
        }
    }

    /// Clusters allocated to each ring when running `threads` threads
    /// (single-threaded runs use the whole processor as one ring).
    pub fn clusters_per_ring(&self, threads: usize) -> usize {
        if threads <= 1 {
            self.clusters
        } else {
            self.ring_clusters
        }
    }

    /// Distinct I-lines one ring can hold resident simultaneously — the
    /// datapath-reuse capacity of §4.3.2. A loop whose body spans more
    /// distinct I-lines than this cannot keep its whole datapath resident,
    /// so backward branches reload lines instead of reusing them.
    pub fn reuse_line_capacity(&self, threads: usize) -> usize {
        self.clusters_per_ring(threads)
    }

    /// Instructions a ring can keep resident at once (`reuse_line_capacity`
    /// lines of `pes_per_cluster` PEs) — the loop-body size limit for
    /// datapath reuse used by the static analyzer's capacity lint.
    pub fn reuse_inst_capacity(&self, threads: usize) -> usize {
        self.reuse_line_capacity(threads) * self.pes_per_cluster
    }

    /// Buffered segments per register lane within one cluster (§6.1.2:
    /// lanes are re-driven every `lane_buffer_interval` PEs).
    pub fn lane_segments_per_cluster(&self) -> usize {
        self.pes_per_cluster / self.lane_buffer_interval
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: PEs per cluster must be a
    /// multiple of the lane-buffer interval, and no structural parameter
    /// may be zero. Configurations now arrive from the CLI and the wire,
    /// so violations are typed errors rather than panics.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pes_per_cluster == 0 {
            return Err(ConfigError::NoPes);
        }
        if self.clusters < 2 {
            return Err(ConfigError::TooFewClusters(self.clusters));
        }
        if self.ring_clusters < 2 {
            return Err(ConfigError::TooFewRingClusters(self.ring_clusters));
        }
        if !self
            .pes_per_cluster
            .is_multiple_of(self.lane_buffer_interval)
        {
            return Err(ConfigError::IntervalMismatch {
                pes_per_cluster: self.pes_per_cluster,
                lane_buffer_interval: self.lane_buffer_interval,
            });
        }
        if self.commit_width == 0 {
            return Err(ConfigError::ZeroCommitWidth);
        }
        if self.lsu_depth == 0 {
            return Err(ConfigError::ZeroLsuDepth);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_presets() {
        let i4c2 = DiagConfig::i4c2();
        assert_eq!(i4c2.total_pes(), 32);
        assert!(!i4c2.fp_enabled);
        assert!(i4c2.l2.is_none());

        let f4c2 = DiagConfig::f4c2();
        assert_eq!(f4c2.total_pes(), 32);
        assert_eq!(f4c2.l1d.size_bytes, 64 << 10);

        let f4c16 = DiagConfig::f4c16();
        assert_eq!(f4c16.total_pes(), 256);

        let f4c32 = DiagConfig::f4c32();
        assert_eq!(f4c32.total_pes(), 512);
        assert_eq!(f4c32.l1d.size_bytes, 128 << 10);
        assert_eq!(f4c32.l2.unwrap().size_bytes, 4 << 20);
        assert_eq!(f4c32.freq_ghz, 2.0);
        assert_eq!(f4c32.validate(), Ok(()));
    }

    #[test]
    fn ring_partitioning() {
        let c = DiagConfig::f4c32();
        // Single thread: whole processor is one ring.
        assert_eq!(c.rings_for(1), 1);
        assert_eq!(c.clusters_per_ring(1), 32);
        // Multi-thread: 16-by-2 format.
        assert_eq!(c.rings_for(12), 12);
        assert_eq!(c.rings_for(16), 16);
        assert_eq!(c.rings_for(64), 16);
        assert_eq!(c.clusters_per_ring(12), 2);
    }

    #[test]
    fn analyzer_geometry() {
        let c = DiagConfig::f4c32();
        // Single-threaded: the whole processor is one ring, 32 lines / 512
        // instructions of resident loop capacity.
        assert_eq!(c.reuse_line_capacity(1), 32);
        assert_eq!(c.reuse_inst_capacity(1), 512);
        // Multi-threaded 16-by-2: two lines per ring.
        assert_eq!(c.reuse_line_capacity(8), 2);
        assert_eq!(c.reuse_inst_capacity(8), 32);
        // 16 PEs buffered every 8 → 2 segments per lane per cluster.
        assert_eq!(c.lane_segments_per_cluster(), 2);
    }

    #[test]
    fn line_bytes_matches_cache_line() {
        let c = DiagConfig::f4c32();
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn validate_rejects_bad_interval() {
        let mut c = DiagConfig::f4c32();
        c.lane_buffer_interval = 5;
        assert_eq!(
            c.validate(),
            Err(ConfigError::IntervalMismatch {
                pes_per_cluster: 16,
                lane_buffer_interval: 5,
            })
        );
        assert!(c
            .validate()
            .unwrap_err()
            .to_string()
            .contains("lane buffer interval"));
    }

    #[test]
    fn validate_reports_each_constraint() {
        let mut c = DiagConfig::f4c32();
        c.pes_per_cluster = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoPes));

        let mut c = DiagConfig::f4c32();
        c.clusters = 1;
        assert_eq!(c.validate(), Err(ConfigError::TooFewClusters(1)));

        let mut c = DiagConfig::f4c32();
        c.ring_clusters = 1;
        assert_eq!(c.validate(), Err(ConfigError::TooFewRingClusters(1)));

        let mut c = DiagConfig::f4c32();
        c.commit_width = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCommitWidth));

        let mut c = DiagConfig::f4c32();
        c.lsu_depth = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroLsuDepth));
    }
}
