//! Register lanes: value, validity time, and writer position per
//! architectural register, plus the PC-lane commit tracker.
//!
//! A register lane (paper §2, §4.1) carries one architectural register's
//! value and valid bit through the row of PEs. In this cycle-level model a
//! lane is `(value, ready_time, writer_slot)`: the *value* for functional
//! execution, the *time* the valid bit rises at the writer, and the
//! writer's global PE slot so consumers can add the propagation delay of
//! the lane buffers between writer and reader (§6.1.2: a register buffer
//! every 8 PEs and one between clusters).

use diag_isa::{ArchReg, NUM_LANES};

/// Geometry needed to compute lane propagation delays within a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneGeometry {
    /// PEs per lane-buffer segment (paper: 8).
    pub buffer_interval: usize,
    /// Total PE slots in the ring (clusters × PEs per cluster).
    pub ring_slots: usize,
}

impl LaneGeometry {
    /// Total buffered segments around the ring.
    pub fn segments(&self) -> usize {
        self.ring_slots.div_ceil(self.buffer_interval)
    }

    /// Lane-buffer segment containing global PE `slot` (used by the trace
    /// subsystem to attribute segment-buffer traffic).
    pub fn segment_of(&self, slot: usize) -> usize {
        (slot % self.ring_slots) / self.buffer_interval
    }

    /// Cycles for a cross-cluster register transfer over the shared
    /// 512-bit bus, including arbitration (paper §5.1.3: "in two cycles",
    /// plus one to arbitrate). Lane transports never cost more than this:
    /// the central control unit routes distant transfers over the bus
    /// rather than rippling them through every lane buffer.
    pub const BUS_SHORTCUT: u64 = 2;

    /// Propagation delay in cycles from a value produced at `writer` slot
    /// to a consumer at `reader` slot: one cycle per lane-buffer boundary
    /// crossed walking forward around the ring, capped at
    /// [`LaneGeometry::BUS_SHORTCUT`] for distant or wrapping transfers.
    /// Values consumed within the writer's own segment forward
    /// combinationally.
    pub fn delay(&self, writer: usize, reader: usize) -> u64 {
        let sw = self.segment_of(writer);
        let sr = self.segment_of(reader);
        let segs = self.segments();
        let reader_m = reader % self.ring_slots;
        let writer_m = writer % self.ring_slots;
        let walk = if sw == sr {
            if reader_m >= writer_m {
                0
            } else {
                // Same segment but the reader is behind: a full circle.
                segs as u64
            }
        } else {
            ((sr + segs - sw) % segs) as u64
        };
        walk.min(Self::BUS_SHORTCUT)
    }
}

/// The full set of 64 register lanes for one hardware thread.
#[derive(Debug, Clone)]
pub struct LaneFile {
    values: [u32; NUM_LANES],
    ready: [u64; NUM_LANES],
    writer: [usize; NUM_LANES],
}

impl LaneFile {
    /// Creates lanes that are all valid at time zero with value zero,
    /// written at slot 0.
    pub fn new() -> LaneFile {
        LaneFile {
            values: [0; NUM_LANES],
            ready: [0; NUM_LANES],
            writer: [0; NUM_LANES],
        }
    }

    /// Architectural value of a lane (the `x0` lane always reads zero).
    pub fn value(&self, lane: ArchReg) -> u32 {
        if lane.is_zero() {
            0
        } else {
            self.values[lane.index()]
        }
    }

    /// Sets a lane's architectural value without touching timing (used for
    /// thread initialization).
    pub fn set_value(&mut self, lane: ArchReg, value: u32) {
        if !lane.is_zero() {
            self.values[lane.index()] = value;
        }
    }

    /// Time at which a consumer at `reader` slot observes the lane valid,
    /// including lane-buffer propagation from the writer.
    #[inline]
    pub fn ready_at(&self, lane: ArchReg, reader: usize, geom: LaneGeometry) -> u64 {
        if lane.is_zero() {
            return 0;
        }
        let i = lane.index();
        self.ready[i] + geom.delay(self.writer[i], reader)
    }

    /// Raw validity time at the writer (no propagation).
    pub fn raw_ready(&self, lane: ArchReg) -> u64 {
        if lane.is_zero() {
            0
        } else {
            self.ready[lane.index()]
        }
    }

    /// Global PE slot of the lane's most recent writer (slot 0 for
    /// never-written lanes and the `x0` lane).
    pub fn writer_of(&self, lane: ArchReg) -> usize {
        if lane.is_zero() {
            0
        } else {
            self.writer[lane.index()]
        }
    }

    /// Drives a lane from a PE: sets value, validity time, and writer slot.
    /// Writes to the `x0` lane are discarded.
    pub fn write(&mut self, lane: ArchReg, value: u32, time: u64, slot: usize) {
        if lane.is_zero() {
            return;
        }
        let i = lane.index();
        self.values[i] = value;
        self.ready[i] = time;
        self.writer[i] = slot;
    }

    /// Re-times every lane to `time` at `slot` (used at thread start and
    /// after a register-file transfer over the shared bus, §5.1.3).
    pub fn retime_all(&mut self, time: u64, slot: usize) {
        for i in 1..NUM_LANES {
            self.ready[i] = time;
            self.writer[i] = slot;
        }
    }

    /// The latest raw validity time across all lanes (pipeline-drain time).
    pub fn latest_ready(&self) -> u64 {
        self.ready.iter().copied().max().unwrap_or(0)
    }
}

impl Default for LaneFile {
    fn default() -> LaneFile {
        LaneFile::new()
    }
}

/// In-order retirement through the PC lane (paper §5.1.4: "the PC lane
/// essentially retires instructions in-order like a reorder buffer"), with
/// bounded retirement bandwidth per cycle.
#[derive(Debug, Clone)]
pub struct CommitTracker {
    width: usize,
    last_time: u64,
    at_last: usize,
    committed: u64,
}

impl CommitTracker {
    /// Creates a tracker retiring at most `width` instructions per cycle.
    pub fn new(width: usize) -> CommitTracker {
        CommitTracker {
            width,
            last_time: 0,
            at_last: 0,
            committed: 0,
        }
    }

    /// Retires an instruction that finished execution at `finish`; returns
    /// its commit time (≥ finish, ≥ all previous commits).
    pub fn commit(&mut self, finish: u64) -> u64 {
        let mut t = finish.max(self.last_time);
        if t == self.last_time && self.at_last >= self.width {
            t += 1;
        }
        if t > self.last_time {
            self.last_time = t;
            self.at_last = 0;
        }
        self.at_last += 1;
        self.committed += 1;
        t
    }

    /// Total retired instructions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Time of the most recent retirement.
    pub fn last_commit(&self) -> u64 {
        self.last_time
    }

    /// Fast-forwards the tracker to at least `time` (used when a SIMT
    /// region retires as a block).
    pub fn advance_to(&mut self, time: u64) {
        if time > self.last_time {
            self.last_time = time;
            self.at_last = 0;
        }
    }

    /// Adds `count` retirements accounted inside a SIMT region.
    pub fn add_bulk(&mut self, count: u64) {
        self.committed += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_isa::{regs, ArchReg};

    const GEOM: LaneGeometry = LaneGeometry {
        buffer_interval: 8,
        ring_slots: 32,
    };

    #[test]
    fn same_segment_is_combinational() {
        assert_eq!(GEOM.delay(0, 7), 0);
        assert_eq!(GEOM.delay(3, 3), 0);
        assert_eq!(GEOM.delay(8, 15), 0);
    }

    #[test]
    fn each_boundary_costs_one() {
        assert_eq!(GEOM.delay(0, 8), 1); // mid-cluster buffer
        assert_eq!(GEOM.delay(0, 16), 2); // into next cluster
        assert_eq!(GEOM.delay(7, 31), LaneGeometry::BUS_SHORTCUT); // capped
    }

    #[test]
    fn wrap_around_uses_circular_connection() {
        // Writer in last segment, reader in first: one boundary (the
        // circular cluster connection).
        assert_eq!(GEOM.delay(31, 0), 1);
        // Same segment, reader behind writer: a full circle, but never
        // worse than the 512-bit bus shortcut.
        assert_eq!(GEOM.delay(5, 2), LaneGeometry::BUS_SHORTCUT);
    }

    #[test]
    fn long_transfers_capped_by_bus() {
        let big = LaneGeometry {
            buffer_interval: 8,
            ring_slots: 512,
        };
        // 32 clusters apart would be 62 buffer crossings on the lanes;
        // the control unit routes it over the bus instead (§5.1.3).
        assert_eq!(big.delay(0, 500), LaneGeometry::BUS_SHORTCUT);
        assert_eq!(big.delay(500, 4), 2); // short wrap uses the circular link
                                          // Short hops still use the lanes.
        assert_eq!(big.delay(0, 9), 1);
    }

    #[test]
    fn lane_write_and_read() {
        let mut lanes = LaneFile::new();
        let a0 = ArchReg::from(regs::A0);
        lanes.write(a0, 42, 10, 4);
        assert_eq!(lanes.value(a0), 42);
        assert_eq!(lanes.ready_at(a0, 5, GEOM), 10); // same segment
        assert_eq!(lanes.ready_at(a0, 9, GEOM), 11); // one buffer
        assert_eq!(lanes.ready_at(a0, 20, GEOM), 12);
    }

    #[test]
    fn zero_lane_immutable() {
        let mut lanes = LaneFile::new();
        let zero = ArchReg::from(regs::ZERO);
        lanes.write(zero, 99, 50, 3);
        assert_eq!(lanes.value(zero), 0);
        assert_eq!(lanes.ready_at(zero, 31, GEOM), 0);
    }

    #[test]
    fn fp_lanes_are_independent() {
        let mut lanes = LaneFile::new();
        lanes.write(ArchReg::from(regs::FA0), 7, 3, 0);
        assert_eq!(lanes.value(ArchReg::from(regs::A0)), 0);
        assert_eq!(lanes.value(ArchReg::from(regs::FA0)), 7);
    }

    #[test]
    fn retime_all_moves_every_lane() {
        let mut lanes = LaneFile::new();
        lanes.write(ArchReg::from(regs::A0), 1, 5, 2);
        lanes.retime_all(100, 0);
        assert_eq!(lanes.raw_ready(ArchReg::from(regs::A0)), 100);
        assert_eq!(
            lanes.value(ArchReg::from(regs::A0)),
            1,
            "values survive retiming"
        );
        assert_eq!(lanes.latest_ready(), 100);
    }

    #[test]
    fn commit_bandwidth_enforced() {
        let mut c = CommitTracker::new(2);
        assert_eq!(c.commit(10), 10);
        assert_eq!(c.commit(10), 10);
        assert_eq!(c.commit(10), 11); // third in the same cycle spills over
        assert_eq!(c.commit(5), 11); // in-order: can't commit before previous
        assert_eq!(c.committed(), 4);
    }

    #[test]
    fn commit_monotone_under_random_finishes() {
        let mut c = CommitTracker::new(4);
        let mut last = 0;
        for finish in [5u64, 3, 9, 9, 9, 9, 9, 2, 40] {
            let t = c.commit(finish);
            assert!(t >= last);
            assert!(t >= finish);
            last = t;
        }
    }

    #[test]
    fn advance_and_bulk() {
        let mut c = CommitTracker::new(4);
        c.advance_to(500);
        c.add_bulk(32);
        assert_eq!(c.committed(), 32);
        assert_eq!(
            c.commit(0),
            500,
            "post-region commits cannot precede the region"
        );
    }
}
