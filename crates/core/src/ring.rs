//! The serial dataflow execution engine of one DiAG ring.
//!
//! A dataflow ring (paper §5.1) chains processing clusters circularly and
//! runs one hardware thread. Instructions are assigned to PEs in program
//! order; each begins execution as soon as its source register lanes are
//! valid (§4.1), resolving RAW hazards implicitly and WAR/WAW by
//! construction (§4.2). The PC lane retires instructions in order (§5.1.4).
//!
//! The engine is *dependence-timed*: it walks the correct dynamic
//! instruction stream (functional execution is program-ordered and exact)
//! and computes per-instruction start/finish times from the same structural
//! rules the hardware obeys — lane-buffer propagation (§6.1.2), cluster
//! residency and line fetches (§4.3, §5.1.1), per-cluster LSU queues and
//! memory lanes (§5.2), backward-branch datapath reuse (§4.3.2), and the
//! shared 512-bit bus (§5.1.3). Wrong-path execution is not simulated; a
//! taken branch charges the paper's redirect penalty instead (§7.3.2).

use std::rc::Rc;
use std::sync::Arc;

use diag_asm::Program;
use diag_isa::{decode, exec, ArchReg, ExecKind, Inst, Reg, Station, StationSlot, INST_BYTES};
use diag_mem::{LaneLookup, MemLane, REGFILE_BEATS};
use diag_sim::{
    Activity, Bucket, Commit, Observer, Profiler, RetireSample, SimError, StallBreakdown,
};
use diag_trace::{Counter, Counters, Event, EventKind, StallCause, Tracer, Track};

use crate::cluster::Cluster;

/// Data-line granularity of the cluster line buffers (64-byte lines).
fn shared_line_mask() -> u32 {
    63
}
use crate::config::DiagConfig;
use crate::lane::{CommitTracker, LaneFile, LaneGeometry};
use crate::shared::SharedParts;

/// One traced dynamic instruction (enabled by
/// [`DiagConfig::collect_trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Hardware thread the instruction retired on.
    pub thread: u32,
    /// Instruction address.
    pub pc: u32,
    /// Global PE slot the instruction executed on.
    pub slot: usize,
    /// Cycle execution began.
    pub start: u64,
    /// Cycle the result (or memory data) was available.
    pub finish: u64,
    /// Cycle the PC lane retired it.
    pub commit: u64,
    /// Whether it executed from the resident datapath (no fetch/decode).
    pub reused: bool,
}

/// Per-ring statistics merged into the machine's [`diag_sim::RunStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RingStats {
    /// Component activity as a `diag-trace` counter bank; folded into the
    /// machine's [`Activity`] via [`RingStats::activity`].
    pub counters: Counters,
    /// Stall-source cycles (§7.3.2 taxonomy).
    pub stalls: StallBreakdown,
}

impl RingStats {
    /// The counter bank viewed as the energy model's [`Activity`] record.
    pub fn activity(&self) -> Activity {
        Activity::from(&self.counters)
    }
}

/// One dataflow ring executing one hardware thread.
#[derive(Debug)]
pub struct RingSim {
    pub(crate) program: Arc<Program>,
    pub(crate) config: Arc<DiagConfig>,
    pub(crate) geom: LaneGeometry,
    pub(crate) clusters: Vec<Cluster>,
    pub(crate) resident: diag_mem::FxHashMap<u32, usize>,
    pub(crate) alloc_rr: usize,
    /// Last sequentially-loaded line and the time its bus transport ended,
    /// modelling the control unit's preemptive next-line fetch (§5.1.3).
    pub(crate) last_line: Option<(u32, u64)>,
    /// Lines that have been backward-branch targets: the control unit's
    /// scheduling table knows the thread loops through them and prefetches
    /// them into freed clusters (§5.1.3 "preemptively loading instruction
    /// lines"), hiding the fetch latency on re-entry.
    pub(crate) loop_lines: diag_mem::FxHashSet<u32>,
    pub(crate) lanes: LaneFile,
    pub(crate) commit: CommitTracker,
    pub(crate) memlane: MemLane,
    /// Current architectural PC (next instruction to process).
    pub pc: u32,
    /// Whether the thread has halted (`ecall`).
    pub halted: bool,
    /// Earliest time the next instruction may begin (control redirects).
    pub(crate) time_floor: u64,
    /// Whether the pending floor came from a control redirect (attributes
    /// the following line fetch to control).
    pub(crate) redirect_pending: bool,
    /// Store-ordering floor (stores issue in order among themselves).
    pub(crate) mem_floor: u64,
    /// Floor applied to every memory access after a `fence`.
    pub(crate) fence_floor: u64,
    /// Statistics for this ring.
    pub stats: RingStats,
    /// High-water mark of simultaneously resident I-lines (powered
    /// clusters), for the lane/leakage energy model (§7.3.1).
    pub(crate) max_resident: usize,
    /// Whether the configured asynchronous interrupt has been delivered.
    pub(crate) interrupt_taken: bool,
    /// Collected execution trace (when configured).
    pub(crate) trace: Vec<TraceEvent>,
    /// In-flight lane transports per buffered segment (arrival times),
    /// maintained only while a tracer is attached to feed
    /// [`diag_trace::EventKind::SegOccupancy`] events.
    pub(crate) seg_inflight: Vec<Vec<u64>>,
    pub(crate) thread_id: usize,
    /// Whether retirements are appended to `commits`. Commit logging also
    /// forces SIMT regions onto the sequential marker path so the stream
    /// matches the architectural reference retirement-for-retirement.
    pub(crate) commit_log: bool,
    /// Retirements logged since the machine last drained them.
    pub(crate) commits: Vec<Commit>,
    /// The shared tracer, cloned once at wave launch so the per-step hot
    /// loop performs no `Rc` refcount traffic. [`Tracer::off`] until the
    /// machine installs the shared sink.
    pub(crate) tracer: Tracer,
    /// The shared cycle-accounting profiler, cloned at wave launch like
    /// `tracer`. [`Profiler::off`] until the machine installs a
    /// collector.
    pub(crate) profiler: Profiler,
    /// The shared verifier-soundness observer, cloned at wave launch like
    /// `profiler`. [`Observer::off`] until the machine installs a log.
    pub(crate) observer: Observer,
    /// Validated-SIMT-region cache keyed by the `simt_s` address. Region
    /// well-formedness is a static property of the program text, so each
    /// `simt_s` is scanned and its body lowered to stations exactly once;
    /// `None` records a validation fallback (sequential execution).
    pub(crate) region_cache: diag_mem::FxHashMap<u32, Option<Rc<crate::simt::CachedRegion>>>,
    /// Scratch memory lane reused across SIMT instances (cleared, not
    /// reallocated, per instance).
    pub(crate) simt_memlane: MemLane,
}

impl RingSim {
    /// Creates a ring of `clusters` processing clusters running `program`
    /// as hardware thread `thread_id` of `thread_count`.
    pub fn new(
        program: Arc<Program>,
        config: Arc<DiagConfig>,
        clusters: usize,
        thread_id: usize,
        thread_count: usize,
        start_time: u64,
    ) -> RingSim {
        let ppc = config.pes_per_cluster;
        let mut lanes = LaneFile::new();
        lanes.set_value(Reg::A0.into(), thread_id as u32);
        lanes.set_value(Reg::A1.into(), thread_count as u32);
        lanes.set_value(
            Reg::SP.into(),
            diag_asm::STACK_TOP - (thread_id as u32) * diag_asm::STACK_STRIDE,
        );
        lanes.retime_all(start_time, 0);
        let mut commit = CommitTracker::new(config.commit_width);
        commit.advance_to(start_time);
        let entry = program.entry();
        RingSim {
            geom: LaneGeometry {
                buffer_interval: config.lane_buffer_interval,
                ring_slots: clusters * ppc,
            },
            clusters: (0..clusters)
                .map(|_| Cluster::new(ppc, config.lsu_depth))
                .collect(),
            resident: diag_mem::FxHashMap::default(),
            alloc_rr: 0,
            last_line: None,
            loop_lines: diag_mem::FxHashSet::default(),
            lanes,
            commit,
            memlane: MemLane::new(config.memlane_capacity),
            simt_memlane: MemLane::new(config.memlane_capacity),
            pc: entry,
            halted: false,
            time_floor: start_time,
            redirect_pending: false,
            mem_floor: start_time,
            fence_floor: start_time,
            stats: RingStats::default(),
            max_resident: 0,
            interrupt_taken: false,
            trace: Vec::new(),
            seg_inflight: Vec::new(),
            thread_id,
            commit_log: false,
            commits: Vec::new(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
            observer: Observer::off(),
            region_cache: diag_mem::FxHashMap::default(),
            program,
            config,
        }
    }

    /// This ring's hardware-thread id.
    pub fn thread_id(&self) -> usize {
        self.thread_id
    }

    /// The ring's current notion of time (last retirement).
    pub fn clock(&self) -> u64 {
        self.commit.last_commit()
    }

    /// High-water mark of simultaneously resident (powered) clusters.
    pub fn max_resident_clusters(&self) -> usize {
        self.max_resident
    }

    /// Read an architectural register value (program-order exact).
    pub(crate) fn reg(&self, lane: ArchReg) -> u32 {
        self.lanes.value(lane)
    }

    fn line_mask(&self) -> u32 {
        !(self.config.line_bytes() - 1)
    }

    /// Records `cycles` of stall attributed to `cause`, ending at `end`,
    /// both in the §7.3.2 breakdown and — when a tracer is attached — as a
    /// paired `StallBegin`/`StallEnd` interval on `track`. Every stall the
    /// ring accounts flows through here, which is what lets the
    /// stall-attribution timeline reconcile exactly with
    /// [`StallBreakdown`].
    pub(crate) fn stall(&mut self, track: Track, cause: StallCause, end: u64, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.stats.stalls.add_cycles(cause, cycles);
        self.profiler.stall(self.pc, cause, cycles);
        let thread = self.thread_id as u32;
        self.tracer.emit(|| Event {
            cycle: end.saturating_sub(cycles),
            thread,
            track,
            kind: EventKind::StallBegin { cause },
        });
        self.tracer.emit(|| Event {
            cycle: end,
            thread,
            track,
            kind: EventKind::StallEnd { cause, cycles },
        });
    }

    /// Emits segment-buffer traffic events for one lane transport that
    /// departs the writer at `depart` and reaches the reader at `arrive`
    /// (only called with an enabled tracer).
    fn emit_transport(&mut self, lane: ArchReg, reader_slot: usize, depart: u64, arrive: u64) {
        let tracer = self.tracer.clone();
        let thread = self.thread_id as u32;
        let l = lane.index() as u8;
        let from_slot = self.lanes.writer_of(lane);
        let seg_from = self.geom.segment_of(from_slot) as u32;
        let seg_to = self.geom.segment_of(reader_slot) as u32;
        let to_slot = (reader_slot % self.geom.ring_slots) as u32;
        tracer.emit(|| Event {
            cycle: depart,
            thread,
            track: Track::Lane(l),
            kind: EventKind::LaneForward {
                lane: l,
                from_slot: from_slot as u32,
                to_slot,
                hops: (arrive - depart) as u32,
            },
        });
        tracer.emit(|| Event {
            cycle: depart,
            thread,
            track: Track::Lane(l),
            kind: EventKind::SegPush {
                lane: l,
                segment: seg_from,
            },
        });
        tracer.emit(|| Event {
            cycle: arrive,
            thread,
            track: Track::Lane(l),
            kind: EventKind::SegPop {
                lane: l,
                segment: seg_to,
            },
        });
        let segments = self.geom.segments();
        if self.seg_inflight.len() < segments {
            self.seg_inflight.resize(segments, Vec::new());
        }
        let row = &mut self.seg_inflight[seg_from as usize];
        row.retain(|&e| e > depart);
        row.push(arrive);
        let occupancy = row.len() as u32;
        tracer.emit(|| Event {
            cycle: depart,
            thread,
            track: Track::Lane(l),
            kind: EventKind::SegOccupancy {
                segment: seg_from,
                occupancy,
            },
        });
    }

    /// Ensures the I-line containing `line` is resident; returns its
    /// cluster index. `was_redirect` attributes any fetch wait to control.
    fn ensure_resident(
        &mut self,
        line: u32,
        was_redirect: bool,
        shared: &mut SharedParts,
    ) -> usize {
        if let Some(&c) = self.resident.get(&line) {
            return c;
        }
        let c = self.alloc_rr;
        self.alloc_rr = (self.alloc_rr + 1) % self.clusters.len();
        // The control unit initiates the fetch: on a sequential line
        // transition the fetch was launched when the previous line arrived
        // (preemptive loading, §5.1.3); on a redirect it starts at the
        // redirect floor.
        let initiate = match self.last_line {
            Some((prev, arrived))
                if line == prev.wrapping_add(self.config.line_bytes()) && !was_redirect =>
            {
                arrived
            }
            _ => self.time_floor,
        };
        // A known loop target was prefetched while the victim cluster was
        // draining; its transport cost was already paid in the background.
        let thread = self.thread_id as u32;
        let prefetched = was_redirect && self.loop_lines.contains(&line);
        let arrived = if prefetched {
            initiate
        } else {
            let (arrived, bus_wait) = shared.fetch_line(line, initiate, thread);
            self.stall(Track::Bus, StallCause::Structural, arrived, bus_wait);
            arrived
        };
        let free = self.clusters[c].last_commit;
        if free > arrived {
            self.stall(
                Track::Cluster(c as u32),
                StallCause::Structural,
                free,
                free - arrived,
            );
        }
        let latch = arrived.max(free);
        let decode_ready = latch + self.config.line_load_cycles + 1;
        if was_redirect && decode_ready > self.time_floor {
            self.stall(
                Track::Cluster(c as u32),
                StallCause::Control,
                decode_ready,
                decode_ready - self.time_floor,
            );
        }
        if let Some(old) = self.clusters[c].line_addr {
            self.resident.remove(&old);
        }
        self.clusters[c].load_line(line, decode_ready);
        self.populate_stations(c, line);
        self.resident.insert(line, c);
        self.max_resident = self.max_resident.max(self.resident.len());
        self.last_line = Some((line, arrived));
        self.stats.counters.inc(Counter::LineFetches);
        self.stats
            .counters
            .add(Counter::BusBeats, diag_mem::ILINE_BEATS);
        self.tracer.emit(|| Event {
            cycle: arrived,
            thread,
            track: Track::Cluster(c as u32),
            kind: EventKind::LineFetch { line, prefetched },
        });
        c
    }

    /// Predecodes the just-loaded line into cluster `c`'s station arena —
    /// the per-PE `RV_DECODER` pass of a line load (§4.2, Table 3). Each
    /// slot that holds a decodable instruction counts one decode;
    /// subsequent executions from the arena are datapath reuse and touch
    /// neither the program bytes nor the decoder.
    pub(crate) fn populate_stations(&mut self, c: usize, line: u32) {
        let program = Arc::clone(&self.program);
        let ppc = self.config.pes_per_cluster;
        let mut decoded = 0u64;
        for i in 0..ppc {
            let pc = line + (i as u32) * INST_BYTES;
            self.clusters[c].stations[i] = match program.fetch(pc) {
                None => StationSlot::Empty,
                Some(word) => match decode(word) {
                    Ok(inst) => {
                        decoded += 1;
                        StationSlot::Ready(Station::lower(inst, pc, |a| program.decode_at(a)))
                    }
                    Err(_) => StationSlot::Illegal { word },
                },
            };
        }
        self.stats.counters.add(Counter::Decodes, decoded);
    }

    /// Handles a taken control transfer resolved at `resolve` from global
    /// PE slot `from_slot`; sets the floor for the next instruction.
    fn redirect(&mut self, target: u32, resolve: u64, from_slot: usize, shared: &mut SharedParts) {
        let thread = self.thread_id as u32;
        let backward = target <= self.pc;
        let from_pc = self.pc;
        self.tracer.emit(|| Event {
            cycle: resolve,
            thread,
            track: Track::Control,
            kind: EventKind::BranchRedirect {
                from_pc,
                to_pc: target,
                backward,
            },
        });
        let line = target & self.line_mask();
        match self.resident.get(&line).copied() {
            Some(c) => {
                if backward && !self.config.enable_reuse {
                    // Ablation: no datapath reuse — evict so the line
                    // reloads through the full fetch/decode path.
                    self.clusters[c].evict();
                    self.resident.remove(&line);
                    self.time_floor = resolve + 1;
                } else {
                    let slot_in = ((target - line) / INST_BYTES) as usize;
                    let target_slot = c * self.config.pes_per_cluster + slot_in;
                    let walk = self.geom.delay(from_slot, target_slot).max(1);
                    let delay = if walk <= REGFILE_BEATS {
                        walk
                    } else {
                        // Partial register-file transfer over the 512-bit
                        // bus: two cycles plus arbitration (§5.1.3).
                        let granted = shared.bus.request_traced(
                            resolve,
                            REGFILE_BEATS,
                            &shared.tracer,
                            thread,
                        );
                        self.stats.counters.add(Counter::BusBeats, REGFILE_BEATS);
                        granted + REGFILE_BEATS - resolve
                    };
                    self.time_floor = resolve + delay;
                    // Backward reuse redirects are the steady-state loop
                    // mechanism, not flushes. Taken *forward* branches
                    // disable the skipped PEs — wasted slots the paper's
                    // taxonomy counts as control (§7.3.2).
                    if !backward {
                        self.stall(Track::Control, StallCause::Control, resolve + delay, delay);
                    }
                    self.redirect_pending = true;
                    return;
                }
            }
            None => {
                // Target line must be fetched; ensure_resident adds the
                // fetch latency on the next step (≥3 cycles total, §7.3.2).
                // The scheduling table records loop targets for preemptive
                // loading on future iterations.
                if backward && self.config.enable_reuse {
                    // Preemptive loop-line loading is part of the reuse
                    // machinery; the ablation disables both.
                    self.loop_lines.insert(line);
                }
                if !backward && self.config.speculative_datapaths {
                    // §7.3.2 future work: the taken-path line was being
                    // constructed speculatively in a spare cluster, so the
                    // redirect only pays the PC-lane switch.
                    self.loop_lines.insert(line);
                }
                self.time_floor = resolve + 1;
            }
        }
        let floor = self.time_floor;
        self.stall(Track::Control, StallCause::Control, floor, floor - resolve);
        self.redirect_pending = true;
    }

    /// Issues one memory access through the cluster's LSU and the memory
    /// lanes; returns `(issue_time, data_ready_time)`. Stores issue in
    /// order among themselves; loads reorder freely except around
    /// overlapping buffered stores (the memory lanes "enable access
    /// reordering", §5.2). The PE frees once the request is handed to the
    /// LSU queue (the queue depth bounds how many iterations' accesses
    /// overlap under reuse).
    fn issue_mem(
        &mut self,
        cluster: usize,
        addr: u32,
        size: u32,
        write: bool,
        start: u64,
        shared: &mut SharedParts,
    ) -> (u64, u64) {
        let thread = self.thread_id as u32;
        let unit = cluster as u32;
        if write {
            let want = start.max(self.mem_floor);
            let (issue, waited, id) = self.clusters[cluster].lsu.issue_blocking_traced(
                want,
                true,
                &self.tracer,
                thread,
                unit,
            );
            self.stall(Track::Lsu(unit), StallCause::Memory, issue, waited);
            self.mem_floor = issue;
            self.memlane.push_store(addr, size, 0, issue);
            self.memlane.trim();
            let out = shared
                .l1d
                .access_traced(addr, true, issue, &self.tracer, thread);
            self.count_cache(&out);
            self.clusters[cluster].line_buf_fill(addr & !(shared_line_mask()));
            let ready = issue + 1;
            self.clusters[cluster]
                .lsu
                .complete_at_traced(ready, id, &self.tracer, thread, unit);
            (issue, ready)
        } else {
            let (want, forward) = match self.memlane.lookup(addr, size) {
                LaneLookup::HitFast { store_time, .. } => {
                    (start.max(self.fence_floor).max(store_time), true)
                }
                LaneLookup::HitSlow { store_time, .. } | LaneLookup::Conflict { store_time } => {
                    (start.max(self.fence_floor).max(store_time + 1), false)
                }
                LaneLookup::Miss => (start.max(self.fence_floor), false),
            };
            // Cluster-level line buffer (§5.2): a load to the previously
            // accessed line is served locally without consuming the LSU
            // queue or an L1D port.
            let line = addr & !(shared_line_mask());
            if !forward && self.clusters[cluster].line_buf_hit(line) {
                self.stats.counters.inc(Counter::MemlaneHits);
                return (want, want + 1);
            }
            let (issue, waited, id) = self.clusters[cluster].lsu.issue_blocking_traced(
                want,
                false,
                &self.tracer,
                thread,
                unit,
            );
            self.stall(Track::Lsu(unit), StallCause::Memory, issue, waited);
            let ready = if forward {
                self.stats.counters.inc(Counter::MemlaneHits);
                issue + 1
            } else {
                let out = shared
                    .l1d
                    .access_traced(addr, false, issue, &self.tracer, thread);
                self.count_cache(&out);
                if !out.l1_hit {
                    let hit_time = issue + self.config.l1d.hit_latency as u64;
                    self.stall(
                        Track::Cache(1),
                        StallCause::Memory,
                        out.ready_at,
                        out.ready_at.saturating_sub(hit_time),
                    );
                }
                self.clusters[cluster].line_buf_fill(line);
                out.ready_at
            };
            self.clusters[cluster]
                .lsu
                .complete_at_traced(ready, id, &self.tracer, thread, unit);
            (issue, ready)
        }
    }

    pub(crate) fn count_cache(&mut self, out: &diag_mem::MemOutcome) {
        self.stats.counters.inc(Counter::L1dAccesses);
        if !out.l1_hit {
            self.stats.counters.inc(Counter::L1dMisses);
            self.stats.counters.inc(Counter::L2Accesses);
            if !out.l2_hit {
                self.stats.counters.inc(Counter::L2Misses);
            }
        }
    }

    /// Executes one dynamic instruction (or one whole SIMT region when it
    /// begins at the current PC). Advances architectural and timing state.
    pub fn step(&mut self, shared: &mut SharedParts) -> Result<(), SimError> {
        if self.halted {
            return Err(SimError::Halted);
        }
        // Asynchronous interrupt (§5.1.4): taken at an instruction
        // boundary on thread 0 once the PC lane has passed the injection
        // cycle. All older instructions have retired (this engine is
        // program-ordered), younger PEs are disabled by the PC mismatch.
        if let Some((cycle, vector)) = self.config.interrupt_at {
            if self.thread_id == 0 && !self.interrupt_taken && self.clock() >= cycle {
                self.interrupt_taken = true;
                let resolve = self.clock() + 1;
                let slot = 0;
                let old_pc = self.pc;
                self.pc = vector;
                self.redirect(vector, resolve, slot, shared);
                // The interrupted PC is preserved for the handler in the
                // conventional scratch register (a simplified mepc).
                self.lanes
                    .write(diag_isa::Reg::GP.into(), old_pc, resolve, slot);
                self.stall(Track::Control, StallCause::Control, resolve, 1);
            }
        }
        let pc = self.pc;
        if !self.program.contains_text_addr(pc) {
            return Err(SimError::PcOutOfRange { pc });
        }
        let line = pc & self.line_mask();

        // Commit logging forces the sequential marker path: pipelined
        // SIMT retires whole regions in bulk, which cannot be diffed
        // retirement-for-retirement against the reference. The peek comes
        // from the resident station when available; only a cold miss on a
        // region entry consults the decoder.
        if self.config.enable_simt && !self.commit_log {
            let peeked = match self.resident.get(&line).copied() {
                Some(c) => {
                    let slot_in = ((pc - line) / INST_BYTES) as usize;
                    match self.clusters[c].stations[slot_in] {
                        StationSlot::Ready(st) if matches!(st.kind, ExecKind::SimtS { .. }) => {
                            Some(st.inst)
                        }
                        _ => None,
                    }
                }
                None => self
                    .program
                    .decode_at(pc)
                    .filter(|i| matches!(i, Inst::SimtS { .. })),
            };
            if let Some(inst) = peeked {
                if self.try_simt(pc, inst, shared)? {
                    return Ok(());
                }
            }
        }

        let was_redirect = std::mem::take(&mut self.redirect_pending);
        let cluster = self.ensure_resident(line, was_redirect, shared);
        let slot_in = ((pc - line) / INST_BYTES) as usize;
        let slot = cluster * self.config.pes_per_cluster + slot_in;

        let st = match self.clusters[cluster].stations[slot_in] {
            StationSlot::Ready(st) => st,
            StationSlot::Illegal { word } => {
                return Err(SimError::IllegalInstruction { addr: pc, word })
            }
            StationSlot::Empty => return Err(SimError::PcOutOfRange { pc }),
        };

        let thread = self.thread_id as u32;
        let prev_clock = self.commit.last_commit();
        let reused = !self.clusters[cluster].mark_decoded(slot_in);
        if reused {
            self.stats.counters.inc(Counter::ReuseCommits);
        }
        let decode_ready = self.clusters[cluster].decode_ready;

        // Source operands: value + validity time at this PE slot.
        let mut op_ready = 0u64;
        for src in st.srcs.iter() {
            let t = self.lanes.ready_at(src, slot, self.geom);
            let raw = self.lanes.raw_ready(src);
            self.stats.counters.add(Counter::LaneTransports, t - raw);
            if t > raw && self.tracer.enabled() {
                self.emit_transport(src, slot, raw, t);
            }
            op_ready = op_ready.max(t);
        }

        let slot_free = self.clusters[cluster].slot_busy[slot_in];
        let start = op_ready
            .max(decode_ready)
            .max(self.time_floor)
            .max(slot_free);
        self.tracer.emit(|| Event {
            cycle: start,
            thread,
            track: Track::Pe {
                cluster: cluster as u32,
                slot: slot_in as u32,
            },
            kind: EventKind::PeIssue { pc, reused },
        });

        let mut next_pc = pc.wrapping_add(INST_BYTES);
        let mut lane_write: Option<(ArchReg, u32)> = None;
        let mut mem_addr: Option<u32> = None;
        let mut slot_release: Option<u64> = None;
        let finish: u64;

        match st.kind {
            ExecKind::Const { value } => {
                finish = start + 1;
                lane_write = st.dest.map(|d| (d, value));
            }
            ExecKind::AluImm { op, rs1, imm } => {
                finish = start + st.latency as u64;
                let v = exec::alu(op, self.lanes.value(rs1), imm);
                lane_write = st.dest.map(|d| (d, v));
            }
            ExecKind::Alu { op, rs1, rs2 } => {
                finish = start + st.latency as u64;
                let v = exec::alu(op, self.lanes.value(rs1), self.lanes.value(rs2));
                lane_write = st.dest.map(|d| (d, v));
            }
            ExecKind::Jal { target, link } => {
                finish = start + 1;
                lane_write = st.dest.map(|d| (d, link));
                next_pc = target;
                self.redirect(next_pc, finish, slot, shared);
            }
            ExecKind::Jalr { rs1, offset, link } => {
                finish = start + 1;
                let target = self.lanes.value(rs1).wrapping_add(offset as u32) & !1;
                lane_write = st.dest.map(|d| (d, link));
                next_pc = target;
                self.redirect(next_pc, finish, slot, shared);
            }
            ExecKind::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                finish = start + 1;
                let taken = exec::branch_taken(op, self.lanes.value(rs1), self.lanes.value(rs2));
                if taken {
                    next_pc = target;
                    self.redirect(next_pc, finish, slot, shared);
                }
            }
            ExecKind::Load { op, rs1, offset } => {
                let addr = self.lanes.value(rs1).wrapping_add(offset as u32);
                let size = op.size();
                if !addr.is_multiple_of(size) {
                    return Err(SimError::Misaligned { addr, size });
                }
                mem_addr = Some(addr);
                let (issue, ready) = self.issue_mem(cluster, addr, size, false, start, shared);
                slot_release = Some(issue + 1);
                finish = ready;
                let raw = shared.mem.read(addr, size);
                lane_write = st.dest.map(|d| (d, exec::extend_load(op, raw)));
                self.stats.counters.inc(Counter::Loads);
            }
            ExecKind::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.lanes.value(rs1).wrapping_add(offset as u32);
                let size = op.size();
                if !addr.is_multiple_of(size) {
                    return Err(SimError::Misaligned { addr, size });
                }
                mem_addr = Some(addr);
                let value = self.lanes.value(rs2);
                shared.mem.write(addr, size, value);
                let (issue, ready) = self.issue_mem(cluster, addr, size, true, start, shared);
                slot_release = Some(issue + 1);
                finish = ready;
                self.stats.counters.inc(Counter::Stores);
            }
            ExecKind::LoadFp { rs1, offset } => {
                let addr = self.lanes.value(rs1).wrapping_add(offset as u32);
                if !addr.is_multiple_of(4) {
                    return Err(SimError::Misaligned { addr, size: 4 });
                }
                mem_addr = Some(addr);
                let (issue, ready) = self.issue_mem(cluster, addr, 4, false, start, shared);
                slot_release = Some(issue + 1);
                finish = ready;
                lane_write = st.dest.map(|d| (d, shared.mem.read_u32(addr)));
                self.stats.counters.inc(Counter::Loads);
            }
            ExecKind::StoreFp { rs1, rs2, offset } => {
                let addr = self.lanes.value(rs1).wrapping_add(offset as u32);
                if !addr.is_multiple_of(4) {
                    return Err(SimError::Misaligned { addr, size: 4 });
                }
                mem_addr = Some(addr);
                shared.mem.write_u32(addr, self.lanes.value(rs2));
                let (issue, ready) = self.issue_mem(cluster, addr, 4, true, start, shared);
                slot_release = Some(issue + 1);
                finish = ready;
                self.stats.counters.inc(Counter::Stores);
            }
            ExecKind::FpOp { op, rs1, rs2 } => {
                finish = start + st.latency as u64;
                let v = exec::fp_op(op, self.lanes.value(rs1), self.lanes.value(rs2));
                lane_write = st.dest.map(|d| (d, v));
            }
            ExecKind::FpFma { op, rs1, rs2, rs3 } => {
                finish = start + st.latency as u64;
                let v = exec::fp_fma(
                    op,
                    self.lanes.value(rs1),
                    self.lanes.value(rs2),
                    self.lanes.value(rs3),
                );
                lane_write = st.dest.map(|d| (d, v));
            }
            ExecKind::FpCmp { op, rs1, rs2 } => {
                finish = start + st.latency as u64;
                let v = exec::fp_cmp(op, self.lanes.value(rs1), self.lanes.value(rs2));
                lane_write = st.dest.map(|d| (d, v));
            }
            ExecKind::FpToInt { op, rs1 } => {
                finish = start + st.latency as u64;
                lane_write = st
                    .dest
                    .map(|d| (d, exec::fp_to_int(op, self.lanes.value(rs1))));
            }
            ExecKind::IntToFp { op, rs1 } => {
                finish = start + st.latency as u64;
                lane_write = st
                    .dest
                    .map(|d| (d, exec::int_to_fp(op, self.lanes.value(rs1))));
            }
            ExecKind::Fence => {
                // Serialize the memory stream.
                finish = start + 1;
                self.mem_floor = self.mem_floor.max(finish);
                self.fence_floor = self.fence_floor.max(finish);
            }
            ExecKind::Ecall => {
                finish = start + 1;
                self.halted = true;
            }
            ExecKind::Ebreak => {
                finish = start + 1;
                match self.config.trap_vector {
                    Some(vector) => {
                        // Precise trap (§5.1.4): older instructions have
                        // committed (program-order engine), younger PEs are
                        // disabled by the PC-lane mismatch.
                        next_pc = vector;
                        self.redirect(vector, finish, slot, shared);
                    }
                    None => self.halted = true,
                }
            }
            ExecKind::SimtS { rc } => {
                // Sequential marker semantics: rc passes through unchanged.
                finish = start + 1;
                lane_write = Some((rc, self.lanes.value(rc)));
            }
            ExecKind::SimtE {
                rc,
                r_end,
                start_pc,
                step,
            } => {
                finish = start + 1;
                let step = match step {
                    Some(r_step) => self.lanes.value(r_step),
                    None => {
                        let other = self.program.decode_at(start_pc);
                        return Err(SimError::InvalidSimtRegion {
                            reason: format!(
                                "simt_e at {pc:#x} points to {other:?} at {start_pc:#x}, not simt_s"
                            ),
                        });
                    }
                };
                let rc_new = self.lanes.value(rc).wrapping_add(step);
                lane_write = Some((rc, rc_new));
                if (rc_new as i32) < (self.lanes.value(r_end) as i32) {
                    next_pc = start_pc.wrapping_add(INST_BYTES);
                    self.redirect(next_pc, finish, slot, shared);
                }
            }
        }

        if self.commit_log {
            self.commits.push(Commit {
                thread: self.thread_id as u32,
                pc,
                dest: lane_write.filter(|(lane, _)| !lane.is_zero()),
            });
        }
        self.observer.retire(pc, lane_write, mem_addr);
        // Drive the destination lane and retire through the PC lane.
        if let Some((lane, value)) = lane_write {
            self.lanes.write(lane, value, finish, slot);
            if !lane.is_zero() {
                self.stats.counters.inc(Counter::RegWrites);
                self.tracer.emit(|| Event {
                    cycle: finish,
                    thread,
                    track: Track::Lane(lane.index() as u8),
                    kind: EventKind::LaneWrite {
                        lane: lane.index() as u8,
                    },
                });
            }
        }
        let exec_cycles = finish - start;
        self.stats
            .counters
            .add(Counter::PeActiveCycles, exec_cycles.max(1));
        if st.uses_fpu {
            self.stats
                .counters
                .add(Counter::FpuActiveCycles, exec_cycles.max(1));
            self.stats.counters.inc(Counter::FpOps);
        } else if !st.is_mem {
            self.stats.counters.inc(Counter::IntOps);
        }
        let commit_t = self.commit.commit(finish);
        self.profiler.retire(|| {
            // Partition this retirement's commit-clock delta: waiting
            // before issue, executing (memory-bound for loads/stores),
            // then commit-bandwidth queueing. Each boundary is clipped
            // to the previous commit clock so the parts telescope. The
            // wait is attributed to whichever structure held the issue
            // back: line fetch/predecode first (frontend), then source
            // lanes, then everything else (redirect floors, PE
            // occupancy) as transit.
            let wait_bucket = if decode_ready == start {
                Bucket::LineLoadFrontend
            } else if op_ready == start {
                Bucket::LaneWait
            } else {
                Bucket::RingTransit
            };
            let w_end = start.max(prev_clock);
            let x_end = finish.max(prev_clock);
            let mut parts = [0u64; 5];
            parts[wait_bucket.index()] += w_end - prev_clock;
            let exec_bucket = if st.is_mem {
                Bucket::MemoryBound
            } else {
                Bucket::Retiring
            };
            parts[exec_bucket.index()] += x_end - w_end;
            parts[Bucket::Retiring.index()] += commit_t - x_end;
            RetireSample {
                pc,
                cluster: cluster as u32,
                slot: slot_in as u32,
                reused,
                parts,
            }
        });
        self.tracer.emit(|| Event {
            cycle: commit_t,
            thread,
            track: Track::Pe {
                cluster: cluster as u32,
                slot: slot_in as u32,
            },
            kind: EventKind::PeRetire { pc, start, finish },
        });
        if self.halted {
            self.tracer.emit(|| Event {
                cycle: commit_t,
                thread,
                track: Track::Control,
                kind: EventKind::ThreadHalt,
            });
        }
        if self.config.collect_trace {
            self.trace.push(TraceEvent {
                thread,
                pc,
                slot,
                start,
                finish,
                commit: commit_t,
                reused,
            });
        }
        self.clusters[cluster].last_commit = self.clusters[cluster].last_commit.max(commit_t);
        // A PE accepts its next dynamic instance once its unit can issue
        // again: pipelined units every cycle (the buffered lane segments
        // pipeline the value flow), unpipelined dividers after their full
        // latency, memory PEs once the LSU accepted the request.
        let occupancy = match st.fu {
            diag_isa::FuKind::IntDiv | diag_isa::FuKind::FpDiv => finish,
            _ => start + 1,
        };
        self.clusters[cluster].slot_busy[slot_in] = slot_release.unwrap_or(occupancy);
        self.pc = next_pc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiagConfig;
    use diag_asm::assemble;
    use diag_mem::MainMemory;

    /// Stepping a halted ring must be a hard error in every build
    /// profile, not just a `debug_assert`: the parallel runner relies on
    /// the error to catch scheduler bugs in release mode too.
    #[test]
    fn step_after_halt_is_an_error() {
        let program = Arc::new(assemble("li t0, 1\necall\n").unwrap());
        let config = Arc::new(DiagConfig::f4c2());
        let mem = MainMemory::with_program(&program);
        let mut shared = SharedParts::new(&config, mem);
        let mut ring = RingSim::new(Arc::clone(&program), Arc::clone(&config), 2, 0, 1, 0);
        while !ring.halted {
            ring.step(&mut shared).unwrap();
        }
        assert!(matches!(ring.step(&mut shared), Err(SimError::Halted)));
        // The error is sticky: a second attempt reports the same thing.
        assert!(matches!(ring.step(&mut shared), Err(SimError::Halted)));
    }
}
