//! # diag-core — the DiAG processor model (the paper's primary contribution)
//!
//! A cycle-level model of DiAG, the dataflow-inspired general-purpose
//! architecture of Wang & Kim (ASPLOS 2021): register lanes in place of a
//! register file ([`LaneFile`]), processing clusters holding one I-line
//! each ([`Cluster`]), dataflow rings executing instructions as soon as
//! their lanes are valid while the PC lane retires in order ([`RingSim`]),
//! datapath reuse on backward branches, and SIMT thread pipelining.
//!
//! The entry point is [`Diag`], configured by [`DiagConfig`] (the paper's
//! Table 2 presets are constructors), implementing the workspace-wide
//! [`diag_sim::Machine`] trait.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod config;
mod lane;
mod machine;
mod ring;
mod shared;
mod simt;
mod spec;

pub use cluster::Cluster;
pub use config::{ConfigError, DiagConfig};
pub use lane::{CommitTracker, LaneFile, LaneGeometry};
pub use machine::Diag;
pub use ring::{RingSim, RingStats, TraceEvent};
pub use shared::SharedParts;
pub use spec::{apply_override, MachineSpec, DEFAULT_OOO_CORES};
