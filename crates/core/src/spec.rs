//! First-class machine identity: the one place machine strings are
//! parsed and rendered.
//!
//! A [`MachineSpec`] names a machine *as data* — the DiAG model with a
//! full [`DiagConfig`], or one of the two baselines — so every layer
//! (CLI, sweep runner, artifact pipeline, serve wire protocol) can carry,
//! hash, and echo the same value instead of re-deriving a preset from a
//! closed string. The canonical textual grammar is:
//!
//! ```text
//! machine   := "diag" [":" preset] ["+" overrides]
//!            | "ooo" [":" cores]
//!            | "inorder"
//! preset    := "i4c2" | "f4c2" | "f4c16" | "f4c32"      (default f4c32)
//! overrides := key "=" value ("," key "=" value)*
//! ```
//!
//! e.g. `diag:f4c32+clusters=16,lsu_depth=8,ring_clusters=4`. The
//! override keys are the parameters the paper calls "parametrizable"
//! (§5): `pes_per_cluster`, `clusters`, `ring_clusters`,
//! `lane_buffer_interval`, `lsu_depth`, `memlane_capacity`,
//! `commit_width`, `max_cycles`, and the feature switches `reuse` and
//! `simt`. [`MachineSpec::render`] emits the canonical form — preset
//! spelled out, overrides restricted to fields that differ from the
//! preset, in declaration order — so `parse(render(s)) == s` for every
//! spec obtained from [`MachineSpec::parse`].

use crate::config::DiagConfig;
use std::fmt;

/// Core count of the `ooo` baseline when none is given (the paper's
/// 12-core evaluation machine, §7.1).
pub const DEFAULT_OOO_CORES: usize = 12;

/// Which machine to run, as plain serializable data.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineSpec {
    /// A DiAG processor with the given configuration.
    Diag(DiagConfig),
    /// The out-of-order baseline with up to this many cores.
    Ooo(usize),
    /// The in-order reference.
    InOrder,
}

/// The DiAG presets nameable in the spec grammar, with their
/// constructors — also the bases [`MachineSpec::render`] diffs against.
fn presets() -> [(&'static str, DiagConfig); 4] {
    [
        ("i4c2", DiagConfig::i4c2()),
        ("f4c2", DiagConfig::f4c2()),
        ("f4c16", DiagConfig::f4c16()),
        ("f4c32", DiagConfig::f4c32()),
    ]
}

fn preset_config(name: &str) -> Option<DiagConfig> {
    presets()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, c)| c)
}

fn parse_usize(key: &str, value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| format!("override `{key}` needs an unsigned integer, got `{value}`"))
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "1" | "true" | "on" => Ok(true),
        "0" | "false" | "off" => Ok(false),
        _ => Err(format!(
            "override `{key}` needs a boolean (0|1|true|false), got `{value}`"
        )),
    }
}

/// Applies one `key=value` override to a configuration. This is the
/// single catalogue of wire/CLI-settable fields: the spec grammar, the
/// serve `config` object, and `harness tune` all funnel through it.
///
/// # Errors
///
/// Returns a one-line message on an unknown key or an unparsable value.
pub fn apply_override(cfg: &mut DiagConfig, key: &str, value: &str) -> Result<(), String> {
    match key {
        "pes_per_cluster" => cfg.pes_per_cluster = parse_usize(key, value)?,
        "clusters" => cfg.clusters = parse_usize(key, value)?,
        "ring_clusters" => cfg.ring_clusters = parse_usize(key, value)?,
        "lane_buffer_interval" => cfg.lane_buffer_interval = parse_usize(key, value)?,
        "lsu_depth" => cfg.lsu_depth = parse_usize(key, value)?,
        "memlane_capacity" => cfg.memlane_capacity = parse_usize(key, value)?,
        "commit_width" => cfg.commit_width = parse_usize(key, value)?,
        "max_cycles" => {
            cfg.max_cycles = value.parse::<u64>().map_err(|_| {
                format!("override `{key}` needs an unsigned integer, got `{value}`")
            })?;
        }
        "reuse" => cfg.enable_reuse = parse_bool(key, value)?,
        "simt" => cfg.enable_simt = parse_bool(key, value)?,
        _ => {
            return Err(format!(
                "unknown override `{key}` (pes_per_cluster|clusters|ring_clusters|\
                 lane_buffer_interval|lsu_depth|memlane_capacity|commit_width|\
                 max_cycles|reuse|simt)"
            ))
        }
    }
    Ok(())
}

/// Renders the overrides of `cfg` relative to `base` in canonical
/// (declaration) order — the inverse of [`apply_override`].
fn render_overrides(cfg: &DiagConfig, base: &DiagConfig) -> Vec<String> {
    let mut out = Vec::new();
    let mut num = |key: &str, have: usize, base: usize| {
        if have != base {
            out.push(format!("{key}={have}"));
        }
    };
    num("pes_per_cluster", cfg.pes_per_cluster, base.pes_per_cluster);
    num("clusters", cfg.clusters, base.clusters);
    num("ring_clusters", cfg.ring_clusters, base.ring_clusters);
    num(
        "lane_buffer_interval",
        cfg.lane_buffer_interval,
        base.lane_buffer_interval,
    );
    num("lsu_depth", cfg.lsu_depth, base.lsu_depth);
    num(
        "memlane_capacity",
        cfg.memlane_capacity,
        base.memlane_capacity,
    );
    num("commit_width", cfg.commit_width, base.commit_width);
    if cfg.max_cycles != base.max_cycles {
        out.push(format!("max_cycles={}", cfg.max_cycles));
    }
    if cfg.enable_reuse != base.enable_reuse {
        out.push(format!("reuse={}", u8::from(cfg.enable_reuse)));
    }
    if cfg.enable_simt != base.enable_simt {
        out.push(format!("simt={}", u8::from(cfg.enable_simt)));
    }
    out
}

impl MachineSpec {
    /// Parses the canonical machine grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a one-line message on an unknown machine, preset, or
    /// override key, an unparsable value, or a configuration that fails
    /// [`DiagConfig::validate`].
    pub fn parse(text: &str) -> Result<MachineSpec, String> {
        if text == "inorder" {
            return Ok(MachineSpec::InOrder);
        }
        if let Some(rest) = text.strip_prefix("ooo") {
            let cores = match rest.strip_prefix(':') {
                None if rest.is_empty() => DEFAULT_OOO_CORES,
                Some(n) => n.parse::<usize>().ok().filter(|&c| c > 0).ok_or_else(|| {
                    format!("ooo core count must be a positive integer, got `{n}`")
                })?,
                None => return Err(format!("unknown machine `{text}` (diag|ooo|inorder)")),
            };
            return Ok(MachineSpec::Ooo(cores));
        }
        let Some(rest) = text.strip_prefix("diag") else {
            return Err(format!("unknown machine `{text}` (diag|ooo|inorder)"));
        };
        let (preset, overrides) = match rest.split_once('+') {
            Some((head, tail)) => (head, Some(tail)),
            None => (rest, None),
        };
        let preset = match preset.strip_prefix(':') {
            None if preset.is_empty() => "f4c32",
            Some(name) => name,
            None => return Err(format!("unknown machine `{text}` (diag|ooo|inorder)")),
        };
        let mut cfg = preset_config(preset)
            .ok_or_else(|| format!("unknown preset `{preset}` (i4c2|f4c2|f4c16|f4c32)"))?;
        if let Some(overrides) = overrides {
            for pair in overrides.split(',') {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("override `{pair}` is not of the form key=value"))?;
                apply_override(&mut cfg, key, value)?;
            }
        }
        cfg.validate().map_err(|e| e.to_string())?;
        Ok(MachineSpec::Diag(cfg))
    }

    /// Renders the canonical textual form. For specs obtained from
    /// [`MachineSpec::parse`] this is exact — re-parsing yields an equal
    /// spec and rendering is a fixed point. For hand-built configurations
    /// it is a best-effort label: the preset is chosen by the config's
    /// `name` (falling back to `f4c32`) and only grammar-covered fields
    /// are diffed; content-addressed hashing always uses the full config,
    /// never this string.
    pub fn render(&self) -> String {
        match self {
            MachineSpec::InOrder => "inorder".to_string(),
            MachineSpec::Ooo(cores) if *cores == DEFAULT_OOO_CORES => "ooo".to_string(),
            MachineSpec::Ooo(cores) => format!("ooo:{cores}"),
            MachineSpec::Diag(cfg) => {
                let lower = cfg.name.to_ascii_lowercase();
                let (preset, base) = match preset_config(&lower) {
                    Some(base) => (lower, base),
                    None => ("f4c32".to_string(), DiagConfig::f4c32()),
                };
                let overrides = render_overrides(cfg, &base);
                if overrides.is_empty() {
                    format!("diag:{preset}")
                } else {
                    format!("diag:{preset}+{}", overrides.join(","))
                }
            }
        }
    }

    /// Short human label for reports (the canonical form is
    /// [`MachineSpec::render`]; this one is for table headings).
    pub fn label(&self) -> String {
        match self {
            MachineSpec::Diag(cfg) => format!("DiAG {} ({} PEs)", cfg.name, cfg.total_pes()),
            MachineSpec::Ooo(cores) => format!("OoO 8-wide x{cores}"),
            MachineSpec::InOrder => "in-order".to_string(),
        }
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_names_parse_to_defaults() {
        assert_eq!(
            MachineSpec::parse("diag").unwrap(),
            MachineSpec::Diag(DiagConfig::f4c32())
        );
        assert_eq!(
            MachineSpec::parse("ooo").unwrap(),
            MachineSpec::Ooo(DEFAULT_OOO_CORES)
        );
        assert_eq!(MachineSpec::parse("inorder").unwrap(), MachineSpec::InOrder);
    }

    #[test]
    fn presets_and_overrides_parse() {
        let spec = MachineSpec::parse("diag:f4c2").unwrap();
        assert_eq!(spec, MachineSpec::Diag(DiagConfig::f4c2()));

        let spec = MachineSpec::parse("diag:f4c32+clusters=16,lsu_depth=8").unwrap();
        let MachineSpec::Diag(cfg) = &spec else {
            panic!("not diag")
        };
        assert_eq!(cfg.clusters, 16);
        assert_eq!(cfg.lsu_depth, 8);
        assert_eq!(cfg.name, "F4C32", "overrides keep the preset name");

        let spec = MachineSpec::parse("diag+reuse=0,simt=off,max_cycles=5000").unwrap();
        let MachineSpec::Diag(cfg) = &spec else {
            panic!("not diag")
        };
        assert!(!cfg.enable_reuse);
        assert!(!cfg.enable_simt);
        assert_eq!(cfg.max_cycles, 5000);

        assert_eq!(MachineSpec::parse("ooo:4").unwrap(), MachineSpec::Ooo(4));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "vax",
            "diag:f9c9",
            "diag:f4c32+clusters",
            "diag+clusters=lots",
            "diag+warp_size=32",
            "ooo:0",
            "ooo:many",
            "diagx",
            "oooo",
        ] {
            assert!(MachineSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn parse_rejects_invalid_configs_with_the_constraint() {
        let err = MachineSpec::parse("diag+clusters=1").unwrap_err();
        assert!(err.contains("two clusters"), "{err}");
        let err = MachineSpec::parse("diag+lane_buffer_interval=5").unwrap_err();
        assert!(err.contains("lane buffer interval"), "{err}");
    }

    #[test]
    fn render_is_canonical() {
        assert_eq!(MachineSpec::parse("diag").unwrap().render(), "diag:f4c32");
        assert_eq!(MachineSpec::parse("ooo:12").unwrap().render(), "ooo");
        assert_eq!(MachineSpec::parse("inorder").unwrap().render(), "inorder");
        assert_eq!(
            MachineSpec::parse("diag:f4c32+lsu_depth=8,clusters=16")
                .unwrap()
                .render(),
            "diag:f4c32+clusters=16,lsu_depth=8",
            "overrides render in declaration order"
        );
        // Overriding a field back to its preset value is not an override.
        assert_eq!(
            MachineSpec::parse("diag+clusters=32").unwrap().render(),
            "diag:f4c32"
        );
    }

    #[test]
    fn round_trip_property() {
        // Deterministic sweep over the grammar: every rendered canonical
        // form re-parses to an equal spec, and rendering is a fixed point.
        let mut cases: Vec<String> = vec![
            "diag".into(),
            "inorder".into(),
            "ooo".into(),
            "ooo:1".into(),
            "ooo:64".into(),
        ];
        for preset in ["i4c2", "f4c2", "f4c16", "f4c32"] {
            cases.push(format!("diag:{preset}"));
            for clusters in [2, 8, 32] {
                for (key, value) in [
                    ("ring_clusters", 4),
                    ("lane_buffer_interval", 4),
                    ("lsu_depth", 3),
                    ("memlane_capacity", 64),
                    ("commit_width", 5),
                    ("max_cycles", 1234),
                    ("reuse", 0),
                    ("simt", 0),
                ] {
                    cases.push(format!("diag:{preset}+clusters={clusters},{key}={value}"));
                }
            }
        }
        for text in cases {
            let spec = match MachineSpec::parse(&text) {
                Ok(spec) => spec,
                Err(e) => panic!("`{text}` failed to parse: {e}"),
            };
            let rendered = spec.render();
            let reparsed = MachineSpec::parse(&rendered)
                .unwrap_or_else(|e| panic!("rendered `{rendered}` failed to re-parse: {e}"));
            assert_eq!(reparsed, spec, "`{text}` -> `{rendered}` is lossy");
            assert_eq!(
                reparsed.render(),
                rendered,
                "`{rendered}` is not a fixed point"
            );
        }
    }

    #[test]
    fn display_is_render() {
        assert_eq!(
            MachineSpec::parse("diag").unwrap().to_string(),
            "diag:f4c32"
        );
    }
}
