//! SIMT thread pipelining (paper §4.4 and §5.4).
//!
//! When a `simt_s`/`simt_e` region is well-formed — fits in the ring, no
//! backward branches or indirect jumps, body does not write the control
//! register — DiAG pipelines loop *instances* through the region's
//! clusters: pipeline registers sit between clusters (not between PEs,
//! Figure 7's caveat), each instance carries its own register lanes and
//! PC, forward branches nullify mismatched PEs, and a new instance is
//! initiated at most once every `interval` cycles. Ill-formed regions fall
//! back to the markers' sequential-loop semantics, as the paper prescribes
//! ("otherwise the threads are executed sequentially", §4.4.3).
//!
//! Functionally, instances execute in loop order, so memory side effects
//! are exactly those of the sequential loop; only the *timing* is
//! pipelined.

use std::rc::Rc;

use diag_isa::{exec, ArchReg, ExecKind, Inst, Reg, Station, INST_BYTES};
use diag_mem::{LaneLookup, MemLane};
use diag_sim::{RegionSample, RegionStation, SimError};
use diag_trace::{Counter, Event, EventKind, StallCause, Track};

use crate::lane::LaneFile;
use crate::ring::RingSim;
use crate::shared::SharedParts;

/// Cycles a PE's functional unit is unavailable after accepting an
/// instance: pipelined units re-issue every cycle; unpipelined dividers
/// block for their full latency (§5.1.2's FDIV concern).
fn occupancy(st: &Station) -> u64 {
    use diag_isa::FuKind;
    match st.fu {
        FuKind::IntDiv | FuKind::FpDiv => st.latency as u64,
        _ => 1,
    }
}

/// A validated SIMT region description, cached per `simt_s` address.
///
/// Region well-formedness is a static property of the program text, so the
/// scan/validate/lower pass runs once; every later entry to the same
/// region executes straight from the cached station body.
#[derive(Debug)]
pub(crate) struct CachedRegion {
    /// Address of the `simt_s`.
    pc_s: u32,
    /// Address of the matching `simt_e`.
    pc_e: u32,
    /// Body instructions (between the markers) lowered to stations, with
    /// addresses.
    body: Vec<(u32, Station)>,
    /// I-line base addresses covered by the region, in order (one pipeline
    /// stage per line/cluster).
    lines: Vec<u32>,
}

impl RingSim {
    /// Attempts pipelined execution of the SIMT region whose `simt_s` is
    /// at `pc_s`. Returns `Ok(true)` when the region was executed in
    /// pipeline mode (all architectural and timing state advanced past
    /// it), `Ok(false)` to fall back to sequential marker semantics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSimtRegion`] for malformed pairs (zero
    /// step or a non-terminating bound) — these are program bugs, not
    /// fallback cases.
    pub(crate) fn try_simt(
        &mut self,
        pc_s: u32,
        inst: Inst,
        shared: &mut SharedParts,
    ) -> Result<bool, SimError> {
        let Inst::SimtS {
            rc,
            r_step,
            r_end,
            interval,
        } = inst
        else {
            return Ok(false);
        };
        let region = match self.region_cache.get(&pc_s) {
            Some(Some(r)) => Rc::clone(r),
            Some(None) => return Ok(false),
            None => match self.find_region(pc_s, rc)? {
                Some(r) => {
                    let r = Rc::new(r);
                    self.region_cache.insert(pc_s, Some(Rc::clone(&r)));
                    r
                }
                None => {
                    self.region_cache.insert(pc_s, None);
                    return Ok(false);
                }
            },
        };
        if region.lines.len() > self.clusters.len() {
            // Region does not fit in this ring: execute sequentially
            // (paper §4.4.3).
            return Ok(false);
        }

        let rc0 = self.reg(rc.into()) as i32;
        let step = self.reg(r_step.into()) as i32;
        let end = self.reg(r_end.into()) as i32;
        if step == 0 {
            return Err(SimError::InvalidSimtRegion {
                reason: format!("simt_s at {pc_s:#x} has zero step"),
            });
        }
        if step < 0 && rc0.wrapping_add(step) < end {
            return Err(SimError::InvalidSimtRegion {
                reason: format!("simt_s at {pc_s:#x}: negative step never reaches r_end"),
            });
        }

        // Pipelined execution is now committed. The observer sees the same
        // architectural stream the sequential marker path would retire:
        // simt_s once per region entry (rc passes through unchanged) …
        self.observer
            .retire(pc_s, Some((rc.into(), rc0 as u32)), None);

        // Spawn time: simt_s needs its operands and a loaded first stage.
        let entry_slot = self.stage_slot(0, pc_s, &region);
        let mut t0 = self.time_floor;
        for src in [rc, r_step, r_end] {
            t0 = t0.max(self.lanes.ready_at(src.into(), entry_slot, self.geom));
        }
        let (stage_ready, fetched) = self.load_region(&region, t0, shared);
        let t0 = (t0 + 1).max(stage_ready[0]);

        // Per-PE issue-occupancy state across instances, plus per-station
        // busy/exec accumulators for the cycle-accounting profiler (the
        // pro-rata weights the region's commit-clock span is split by).
        let stages = region.lines.len();
        let mut slot_busy = vec![0u64; region.body.len()];
        let mut busy = vec![0u64; region.body.len()];
        let mut execs = vec![0u64; region.body.len()];
        let mut total_body_commits = 0u64;
        let mut end_time = t0;
        let final_lanes: LaneFile;

        let thread = self.thread_id as u32;
        let mut i: u64 = 0;
        loop {
            let rc_i = rc0.wrapping_add((i as i32).wrapping_mul(step));
            let spawn = t0 + i * interval as u64;
            self.tracer.emit(|| Event {
                cycle: spawn,
                thread,
                track: Track::Control,
                kind: EventKind::SimtSpawn {
                    instance: i,
                    rc: rc_i as u32,
                },
            });

            // Per-instance register lanes: the register file as of simt_s
            // with the control register advanced (paper §5.4).
            let mut lanes = self.lanes.clone();
            lanes.set_value(rc.into(), rc_i as u32);
            lanes.retime_all(spawn, entry_slot);

            let exit = self.run_instance(
                &region,
                &mut lanes,
                spawn,
                &stage_ready,
                &mut slot_busy,
                &mut busy,
                &mut execs,
                &mut total_body_commits,
                shared,
            )?;
            end_time = end_time.max(exit);

            let rc_next = rc_i.wrapping_add(step);
            // … and simt_e once per instance, writing the advanced rc.
            self.observer
                .retire(region.pc_e, Some((rc.into(), rc_next as u32)), None);
            let done = rc_next >= end;
            if done {
                lanes.set_value(rc.into(), rc_next as u32);
                final_lanes = lanes;
                break;
            }
            i += 1;
            if end_time > self.config.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.config.max_cycles,
                });
            }
        }
        let instances = i + 1;

        // Only the last instance's register lanes propagate onward
        // (simt_e semantics, §5.4).
        let mut lanes = final_lanes;
        let exit_slot = self.stage_slot(stages - 1, region.pc_e, &region);
        lanes.retime_all(end_time, exit_slot);
        self.lanes = lanes;

        // Retirement: body commits plus the two markers. Decode activity
        // was already counted when the region's lines populated their
        // station arenas; commits beyond the first (fetched) pass are
        // datapath reuse.
        let commits = total_body_commits + 2;
        let prev_clock = self.commit.last_commit();
        self.commit.advance_to(end_time);
        self.commit.add_bulk(commits);
        let first_cost = if fetched {
            region.body.len() as u64 + 2
        } else {
            0
        };
        self.stats
            .counters
            .add(Counter::ReuseCommits, commits.saturating_sub(first_cost));
        self.tracer.emit(|| Event {
            cycle: end_time,
            thread,
            track: Track::Control,
            kind: EventKind::SimtRegion {
                pc_s: region.pc_s,
                pc_e: region.pc_e,
                instances,
            },
        });
        let line_bytes = self.config.line_bytes();
        self.profiler.region(|| {
            let stations = region
                .body
                .iter()
                .enumerate()
                .map(|(k, &(pc, st))| {
                    let line = pc & !(line_bytes - 1);
                    RegionStation {
                        pc,
                        cluster: (line - region.lines[0]) / line_bytes,
                        slot: (pc - line) / INST_BYTES,
                        busy: busy[k],
                        execs: execs[k],
                        is_mem: st.is_mem,
                    }
                })
                .collect();
            let last = region.lines.len() - 1;
            RegionSample {
                pc_s: region.pc_s,
                pc_e: region.pc_e,
                s_station: (0, (region.pc_s - region.lines[0]) / INST_BYTES),
                e_station: (last as u32, (region.pc_e - region.lines[last]) / INST_BYTES),
                span: end_time.saturating_sub(prev_clock),
                fetched,
                stations,
            }
        });

        self.pc = region.pc_e.wrapping_add(INST_BYTES);
        self.time_floor = end_time;
        self.mem_floor = self.mem_floor.max(end_time);
        debug_assert!(instances >= 1);
        Ok(true)
    }

    /// Locates and validates the region, lowering its body to stations.
    /// `Ok(None)` means "fall back to sequential execution". Both outcomes
    /// are cached in [`RingSim::region_cache`] by the caller; errors are
    /// program bugs and propagate uncached.
    fn find_region(&self, pc_s: u32, rc: Reg) -> Result<Option<CachedRegion>, SimError> {
        let mut body: Vec<(u32, Inst)> = Vec::new();
        let mut pc = pc_s.wrapping_add(INST_BYTES);
        let pc_e = loop {
            let Some(inst) = self.program.decode_at(pc) else {
                // Ran off the text segment without a matching simt_e.
                return Err(SimError::InvalidSimtRegion {
                    reason: format!("simt_s at {pc_s:#x} has no matching simt_e"),
                });
            };
            match inst {
                Inst::SimtE { l_offset, .. } => {
                    if pc.wrapping_add(l_offset as u32) == pc_s {
                        break pc;
                    }
                    // A simt_e for some other region: malformed nesting.
                    return Ok(None);
                }
                Inst::SimtS { .. } => return Ok(None), // nested region
                Inst::Jalr { .. } | Inst::Ecall | Inst::Ebreak | Inst::Fence => return Ok(None),
                Inst::Jal { offset, .. } | Inst::Branch { offset, .. } if offset < 0 => {
                    // Backward control flow inside the region (§4.4.3).
                    return Ok(None);
                }
                Inst::Jal { offset, .. } | Inst::Branch { offset, .. } => {
                    // Forward targets must stay inside the region.
                    let target = pc.wrapping_add(offset as u32);
                    if target <= pc_s {
                        return Ok(None);
                    }
                    body.push((pc, inst));
                }
                other => {
                    // The body must not write the control register — the
                    // hardware owns rc during pipelining (§5.4).
                    if other.dest() == Some(ArchReg::from(rc)) {
                        return Ok(None);
                    }
                    body.push((pc, inst));
                }
            }
            pc = pc.wrapping_add(INST_BYTES);
            if pc.wrapping_sub(pc_s) > 64 * INST_BYTES * 8 {
                return Err(SimError::InvalidSimtRegion {
                    reason: format!("simt_s at {pc_s:#x}: region exceeds scan limit"),
                });
            }
        };
        // Re-check forward branch targets now that pc_e is known.
        for &(bpc, binst) in &body {
            if let Some(target) = binst.static_target(bpc) {
                if target > pc_e {
                    return Ok(None);
                }
            }
        }
        let line_bytes = self.config.line_bytes();
        let first_line = pc_s & !(line_bytes - 1);
        let last_line = pc_e & !(line_bytes - 1);
        let lines = (first_line..=last_line)
            .step_by(line_bytes as usize)
            .collect();
        let body = body
            .into_iter()
            .map(|(pc, inst)| (pc, Station::lower(inst, pc, |a| self.program.decode_at(a))))
            .collect();
        Ok(Some(CachedRegion {
            pc_s,
            pc_e,
            body,
            lines,
        }))
    }

    /// Global PE slot of address `pc` within stage `stage`.
    fn stage_slot(&self, stage: usize, pc: u32, region: &CachedRegion) -> usize {
        let line = region.lines[stage.min(region.lines.len() - 1)];
        let ppc = self.config.pes_per_cluster;
        // Stages occupy clusters 0..stages for the duration of the region.
        stage * ppc + ((pc - line) / INST_BYTES) as usize
    }

    /// Makes all region lines resident in consecutive clusters; returns
    /// per-stage decode-ready times and whether any fetching happened.
    fn load_region(
        &mut self,
        region: &CachedRegion,
        now: u64,
        shared: &mut SharedParts,
    ) -> (Vec<u64>, bool) {
        let already = region
            .lines
            .iter()
            .enumerate()
            .all(|(i, l)| self.resident.get(l) == Some(&i));
        if already {
            return (
                (0..region.lines.len())
                    .map(|i| self.clusters[i].decode_ready)
                    .collect(),
                false,
            );
        }
        self.resident.clear();
        let thread = self.thread_id as u32;
        let mut ready = Vec::with_capacity(region.lines.len());
        for (i, &line) in region.lines.iter().enumerate() {
            let free = self.clusters[i].last_commit;
            let (arrived, bus_wait) = shared.fetch_line(line, now, thread);
            self.stall(Track::Bus, StallCause::Structural, arrived, bus_wait);
            let decode_ready = arrived.max(free) + self.config.line_load_cycles + 1;
            self.clusters[i].load_line(line, decode_ready);
            self.populate_stations(i, line);
            self.resident.insert(line, i);
            self.max_resident = self.max_resident.max(self.resident.len());
            self.stats.counters.inc(Counter::LineFetches);
            self.stats
                .counters
                .add(Counter::BusBeats, diag_mem::ILINE_BEATS);
            self.tracer.emit(|| Event {
                cycle: arrived,
                thread,
                track: Track::Cluster(i as u32),
                kind: EventKind::LineFetch {
                    line,
                    prefetched: false,
                },
            });
            ready.push(decode_ready);
        }
        self.alloc_rr = region.lines.len() % self.clusters.len();
        self.last_line = None;
        (ready, true)
    }

    /// Runs one loop instance through the pipeline; returns its exit time
    /// (latest finish among its executed instructions).
    ///
    /// Instances overlap freely: a PE accepts the next instance as soon as
    /// its functional unit can issue again (pipelined units every cycle,
    /// unpipelined dividers after their full latency; memory PEs after the
    /// cluster LSU accepts the request). This realizes the paper's
    /// initiation model — "threads are only initiated once every
    /// `interval` cycles" (§5.4) with CPI → 1 per thread when nothing
    /// stalls (§4.4.1) — while cache misses back-pressure the pipeline
    /// through the bounded LSU queues (§7.2.1 "load congestion").
    #[allow(clippy::too_many_arguments)]
    fn run_instance(
        &mut self,
        region: &CachedRegion,
        lanes: &mut LaneFile,
        spawn: u64,
        stage_ready: &[u64],
        slot_busy: &mut [u64],
        busy: &mut [u64],
        execs: &mut [u64],
        commits: &mut u64,
        shared: &mut SharedParts,
    ) -> Result<u64, SimError> {
        let line_bytes = self.config.line_bytes();
        // Per-instance store-forwarding state, on the reused scratch lane
        // (cleared, not reallocated, between instances).
        let mut memlane = std::mem::replace(&mut self.simt_memlane, MemLane::new(0));
        let mut store_floor = spawn;
        let mut exit = spawn;
        // The instance's private PC starts after simt_s; forward branches
        // move it, nullifying skipped PEs (§4.4.3).
        let mut inst_pc = region.pc_s.wrapping_add(INST_BYTES);

        for (k, &(pc, st)) in region.body.iter().enumerate() {
            if pc != inst_pc {
                // Nullified by a taken forward branch: PE disabled.
                continue;
            }
            inst_pc = inst_pc.wrapping_add(INST_BYTES);
            let stage = (((pc & !(line_bytes - 1)) - region.lines[0]) / line_bytes) as usize;
            let slot = self.stage_slot(stage, pc, region);
            let mut start = spawn.max(stage_ready[stage]).max(slot_busy[k]);
            for src in st.srcs.iter() {
                start = start.max(lanes.ready_at(src, slot, self.geom));
            }
            let result = self.eval_body_station(
                &st,
                pc,
                start,
                stage,
                slot,
                lanes,
                &mut inst_pc,
                &mut memlane,
                &mut store_floor,
                shared,
            );
            let (finish, write) = match result {
                Ok(out) => out,
                Err(e) => {
                    memlane.clear();
                    self.simt_memlane = memlane;
                    return Err(e);
                }
            };
            slot_busy[k] = start + occupancy(&st);
            if let Some((lane, value)) = write {
                lanes.write(lane, value, finish, slot);
                self.stats.counters.inc(Counter::RegWrites);
            }
            let cycles = (finish - start).max(1);
            self.stats.counters.add(Counter::PeActiveCycles, cycles);
            if st.uses_fpu {
                self.stats.counters.add(Counter::FpuActiveCycles, cycles);
                self.stats.counters.inc(Counter::FpOps);
            } else if !st.is_mem {
                self.stats.counters.inc(Counter::IntOps);
            }
            *commits += 1;
            busy[k] += cycles;
            execs[k] += 1;
            exit = exit.max(finish);
        }
        memlane.clear();
        self.simt_memlane = memlane;
        Ok(exit)
    }

    /// Evaluates one body station of a SIMT instance. Returns
    /// `(finish_time, lane_write)`.
    #[allow(clippy::too_many_arguments)]
    fn eval_body_station(
        &mut self,
        st: &Station,
        pc: u32,
        start: u64,
        stage: usize,
        _slot: usize,
        lanes: &LaneFile,
        inst_pc: &mut u32,
        memlane: &mut MemLane,
        store_floor: &mut u64,
        shared: &mut SharedParts,
    ) -> Result<(u64, Option<(diag_isa::ArchReg, u32)>), SimError> {
        let latency = st.latency as u64;
        let dst = |value: u32| st.dest.map(|d| (d, value));
        let mut mem_addr: Option<u32> = None;
        let out = match st.kind {
            ExecKind::Const { value } => (start + 1, dst(value)),
            ExecKind::AluImm { op, rs1, imm } => {
                (start + latency, dst(exec::alu(op, lanes.value(rs1), imm)))
            }
            ExecKind::Alu { op, rs1, rs2 } => (
                start + latency,
                dst(exec::alu(op, lanes.value(rs1), lanes.value(rs2))),
            ),
            ExecKind::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                if exec::branch_taken(op, lanes.value(rs1), lanes.value(rs2)) {
                    *inst_pc = target;
                }
                (start + 1, None)
            }
            ExecKind::Jal { target, link } => {
                *inst_pc = target;
                (start + 1, dst(link))
            }
            ExecKind::Load { op, rs1, offset } => {
                let addr = lanes.value(rs1).wrapping_add(offset as u32);
                let size = op.size();
                if !addr.is_multiple_of(size) {
                    return Err(SimError::Misaligned { addr, size });
                }
                mem_addr = Some(addr);
                let ready = self.simt_mem(
                    stage,
                    addr,
                    size,
                    false,
                    start,
                    memlane,
                    store_floor,
                    shared,
                );
                self.stats.counters.inc(Counter::Loads);
                let raw = shared.mem.read(addr, size);
                (ready, dst(exec::extend_load(op, raw)))
            }
            ExecKind::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = lanes.value(rs1).wrapping_add(offset as u32);
                let size = op.size();
                if !addr.is_multiple_of(size) {
                    return Err(SimError::Misaligned { addr, size });
                }
                mem_addr = Some(addr);
                shared.mem.write(addr, size, lanes.value(rs2));
                let ready =
                    self.simt_mem(stage, addr, size, true, start, memlane, store_floor, shared);
                self.stats.counters.inc(Counter::Stores);
                (ready, None)
            }
            ExecKind::LoadFp { rs1, offset } => {
                let addr = lanes.value(rs1).wrapping_add(offset as u32);
                if !addr.is_multiple_of(4) {
                    return Err(SimError::Misaligned { addr, size: 4 });
                }
                mem_addr = Some(addr);
                let ready =
                    self.simt_mem(stage, addr, 4, false, start, memlane, store_floor, shared);
                self.stats.counters.inc(Counter::Loads);
                (ready, dst(shared.mem.read_u32(addr)))
            }
            ExecKind::StoreFp { rs1, rs2, offset } => {
                let addr = lanes.value(rs1).wrapping_add(offset as u32);
                if !addr.is_multiple_of(4) {
                    return Err(SimError::Misaligned { addr, size: 4 });
                }
                mem_addr = Some(addr);
                shared.mem.write_u32(addr, lanes.value(rs2));
                let ready =
                    self.simt_mem(stage, addr, 4, true, start, memlane, store_floor, shared);
                self.stats.counters.inc(Counter::Stores);
                (ready, None)
            }
            ExecKind::FpOp { op, rs1, rs2 } => (
                start + latency,
                dst(exec::fp_op(op, lanes.value(rs1), lanes.value(rs2))),
            ),
            ExecKind::FpFma { op, rs1, rs2, rs3 } => (
                start + latency,
                dst(exec::fp_fma(
                    op,
                    lanes.value(rs1),
                    lanes.value(rs2),
                    lanes.value(rs3),
                )),
            ),
            ExecKind::FpCmp { op, rs1, rs2 } => (
                start + latency,
                dst(exec::fp_cmp(op, lanes.value(rs1), lanes.value(rs2))),
            ),
            ExecKind::FpToInt { op, rs1 } => {
                (start + latency, dst(exec::fp_to_int(op, lanes.value(rs1))))
            }
            ExecKind::IntToFp { op, rs1 } => {
                (start + latency, dst(exec::int_to_fp(op, lanes.value(rs1))))
            }
            // find_region filtered everything else out.
            _ => {
                let other = st.inst;
                return Err(SimError::InvalidSimtRegion {
                    reason: format!("unexpected instruction {other:?} in validated SIMT body"),
                });
            }
        };
        self.observer.retire(pc, out.1, mem_addr);
        Ok(out)
    }

    /// Memory access for a SIMT instance through its stage cluster's LSU.
    #[allow(clippy::too_many_arguments)]
    fn simt_mem(
        &mut self,
        stage: usize,
        addr: u32,
        size: u32,
        write: bool,
        start: u64,
        memlane: &mut MemLane,
        store_floor: &mut u64,
        shared: &mut SharedParts,
    ) -> u64 {
        let thread = self.thread_id as u32;
        let unit = stage as u32;
        if write {
            let want = start.max(*store_floor);
            let (issue, waited, id) = self.clusters[stage].lsu.issue_blocking_traced(
                want,
                true,
                &self.tracer,
                thread,
                unit,
            );
            self.stall(Track::Lsu(unit), StallCause::Memory, issue, waited);
            *store_floor = issue;
            memlane.push_store(addr, size, 0, issue);
            memlane.trim();
            let out = shared
                .l1d
                .access_traced(addr, true, issue, &self.tracer, thread);
            self.count_cache(&out);
            self.clusters[stage].line_buf_fill(addr & !63);
            let ready = issue + 1;
            self.clusters[stage]
                .lsu
                .complete_at_traced(ready, id, &self.tracer, thread, unit);
            ready
        } else {
            let (want, forward) = match memlane.lookup(addr, size) {
                LaneLookup::HitFast { store_time, .. } => (start.max(store_time), true),
                LaneLookup::HitSlow { store_time, .. } | LaneLookup::Conflict { store_time } => {
                    (start.max(store_time + 1), false)
                }
                LaneLookup::Miss => (start, false),
            };
            let line = addr & !63;
            if !forward && self.clusters[stage].line_buf_hit(line) {
                self.stats.counters.inc(Counter::MemlaneHits);
                return want + 1;
            }
            let (issue, waited, id) = self.clusters[stage].lsu.issue_blocking_traced(
                want,
                false,
                &self.tracer,
                thread,
                unit,
            );
            self.stall(Track::Lsu(unit), StallCause::Memory, issue, waited);
            let ready = if forward {
                self.stats.counters.inc(Counter::MemlaneHits);
                issue + 1
            } else {
                let out = shared
                    .l1d
                    .access_traced(addr, false, issue, &self.tracer, thread);
                self.count_cache(&out);
                if !out.l1_hit {
                    let hit_time = issue + self.config.l1d.hit_latency as u64;
                    self.stall(
                        Track::Cache(1),
                        StallCause::Memory,
                        out.ready_at,
                        out.ready_at.saturating_sub(hit_time),
                    );
                }
                self.clusters[stage].line_buf_fill(line);
                out.ready_at
            };
            self.clusters[stage]
                .lsu
                .complete_at_traced(ready, id, &self.tracer, thread, unit);
            ready
        }
    }
}
