//! Per-processing-cluster state for the serial dataflow engine.
//!
//! A processing cluster (paper §4.3, §5.1) holds one I-cache line's worth
//! of instructions — 16 PEs in every evaluated configuration — along with
//! the cluster-level load/store unit. The [`Cluster`] here tracks the
//! resident line, when its instructions became usable (fetch + decode),
//! which PE slots have been decoded (for reuse accounting), and when each
//! slot's last dynamic instance finished (a PE holds one instruction
//! instance at a time).

use diag_isa::StationSlot;
use diag_mem::Lsu;

/// Timing and residency state of one processing cluster.
#[derive(Debug)]
pub struct Cluster {
    /// Base address of the resident I-line, if any.
    pub line_addr: Option<u32>,
    /// Predecoded PE stations for the resident line, one per slot (paper
    /// §4.2: the line is decoded once into the PEs' latched control
    /// signals; re-executions skip fetch/decode). The arena is sized at
    /// construction and overwritten in place on every line load — the hot
    /// path never allocates.
    pub stations: Vec<StationSlot>,
    /// Cycle at which the resident instructions finished decoding and may
    /// begin execution (§5.1.1: one cycle after assignment).
    pub decode_ready: u64,
    /// Bitmask of PE slots that have decoded their instruction since the
    /// line was loaded; subsequent executions are datapath reuse.
    pub decoded_slots: u32,
    /// Finish time of the most recent dynamic instance at each PE slot.
    pub slot_busy: Vec<u64>,
    /// Latest commit time among instructions executed since the line was
    /// loaded — the cluster may only be reloaded after this (§4.3: "a
    /// cluster is freed if all its functional units have completed").
    pub last_commit: u64,
    /// The cluster's load/store unit (§5.1: loads and stores are queued at
    /// the level of the processing cluster).
    pub lsu: Lsu,
    /// Recently-accessed data lines held at the cluster LSU and memory
    /// lanes (§5.2: "a load store unit at the cluster level, where the
    /// previously accessed line is stored" + set-associative memory lanes
    /// passing data "for immediate access"). Timing-only: hits bypass the
    /// L1D entirely.
    line_buf: Vec<u32>,
    line_buf_capacity: usize,
}

impl Cluster {
    /// Creates an empty cluster with `pes` PE slots and an LSU of the
    /// given depth.
    pub fn new(pes: usize, lsu_depth: usize) -> Cluster {
        Cluster {
            line_addr: None,
            stations: vec![StationSlot::Empty; pes],
            decode_ready: 0,
            decoded_slots: 0,
            slot_busy: vec![0; pes],
            last_commit: 0,
            lsu: Lsu::new(lsu_depth),
            line_buf: Vec::with_capacity(8),
            line_buf_capacity: 8,
        }
    }

    /// Whether `line` is held in the cluster's line buffer; a hit promotes
    /// it to most-recently-used.
    pub fn line_buf_hit(&mut self, line: u32) -> bool {
        if let Some(pos) = self.line_buf.iter().position(|&l| l == line) {
            let l = self.line_buf.remove(pos);
            self.line_buf.push(l);
            true
        } else {
            false
        }
    }

    /// Installs `line` as the most-recently-accessed data line.
    pub fn line_buf_fill(&mut self, line: u32) {
        if !self.line_buf_hit(line) {
            if self.line_buf.len() == self.line_buf_capacity {
                self.line_buf.remove(0);
            }
            self.line_buf.push(line);
        }
    }

    /// Loads a new I-line, resetting per-residency state. `decode_ready`
    /// is when the instructions become executable.
    pub fn load_line(&mut self, line_addr: u32, decode_ready: u64) {
        self.line_addr = Some(line_addr);
        self.decode_ready = decode_ready;
        self.decoded_slots = 0;
        for slot in &mut self.slot_busy {
            *slot = decode_ready;
        }
        self.last_commit = self.last_commit.max(decode_ready);
        self.lsu.reset();
    }

    /// Marks a PE slot decoded; returns `true` if this was the first
    /// execution since the line loaded (i.e. a real decode, not reuse).
    pub fn mark_decoded(&mut self, slot: usize) -> bool {
        let bit = 1u32 << slot;
        let first = self.decoded_slots & bit == 0;
        self.decoded_slots |= bit;
        first
    }

    /// Invalidates the resident line (reuse-ablation support).
    pub fn evict(&mut self) {
        self.line_addr = None;
        self.decoded_slots = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_line_resets_state() {
        let mut c = Cluster::new(16, 4);
        c.mark_decoded(3);
        c.slot_busy[5] = 99;
        c.last_commit = 80;
        c.load_line(0x1000, 120);
        assert_eq!(c.line_addr, Some(0x1000));
        assert_eq!(c.decoded_slots, 0);
        assert_eq!(c.slot_busy[5], 120);
        assert_eq!(c.last_commit, 120);
        assert_eq!(c.decode_ready, 120);
    }

    #[test]
    fn decode_then_reuse() {
        let mut c = Cluster::new(16, 4);
        c.load_line(0x1000, 0);
        assert!(c.mark_decoded(7), "first execution decodes");
        assert!(!c.mark_decoded(7), "second execution reuses");
        assert!(c.mark_decoded(8), "other slots decode independently");
    }

    #[test]
    fn evict_clears_residency() {
        let mut c = Cluster::new(16, 4);
        c.load_line(0x40, 0);
        c.mark_decoded(0);
        c.evict();
        assert_eq!(c.line_addr, None);
        assert!(c.mark_decoded(0), "decode required after eviction");
    }
}
