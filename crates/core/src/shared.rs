//! Resources shared by every dataflow ring in a DiAG processor: main
//! memory, the instruction cache, the banked L1 data cache, the unified
//! L2, and the on-chip 512-bit bus (paper §5.1.3, §5.2).

use std::cell::RefCell;
use std::rc::Rc;

use diag_mem::{Bus, CacheArray, CacheConfig, MainMemory, PrivateCache, SharedLevel};
use diag_trace::Tracer;

use crate::config::DiagConfig;

/// L2 hit latency charged to an I-cache miss (instruction lines refill
/// from the unified L2).
const L1I_MISS_PENALTY: u64 = 18;

/// The shared memory-side state of one DiAG processor.
#[derive(Debug)]
pub struct SharedParts {
    /// Functional memory (all architectural data).
    pub mem: MainMemory,
    /// Direct-mapped L1 instruction cache (§5.1.1).
    pub l1i: CacheArray,
    /// Banked L1 data cache shared by all rings through per-cluster LSUs
    /// (§5.2; "technically a second level cache").
    pub l1d: PrivateCache,
    /// Unified last-level cache + DRAM.
    pub l2: Rc<RefCell<SharedLevel>>,
    /// Shared 512-bit bus for I-lines and register-file transfers.
    pub bus: Bus,
    /// Trace sink shared by every ring (disabled by default; set from
    /// [`Machine::set_tracer`](diag_sim::Machine::set_tracer) before a program is loaded).
    pub tracer: Tracer,
}

impl SharedParts {
    /// Builds the shared memory system for `config`, preloading `mem`.
    pub fn new(config: &DiagConfig, mem: MainMemory) -> SharedParts {
        // A configuration without an L2 (I4C2) backs the L1D directly with
        // DRAM: a degenerate one-line "L2" whose hits are impossible in
        // practice models that without a second code path.
        let l2_config = config.l2.unwrap_or(CacheConfig {
            size_bytes: 64,
            line_bytes: 64,
            ways: 1,
            hit_latency: 0,
            banks: 1,
        });
        let l2 = SharedLevel::new(l2_config).into_shared();
        let l1d = PrivateCache::new(config.l1d, Rc::clone(&l2));
        SharedParts {
            mem,
            l1i: CacheArray::new(config.l1i),
            l1d,
            l2,
            bus: Bus::new(),
            tracer: Tracer::off(),
        }
    }

    /// Fetches the I-line containing `line_addr` at `now` on behalf of
    /// hardware thread `thread`; returns the cycle at which the line has
    /// been transported to a cluster over the shared bus (before
    /// per-cluster latch and decode), and the cycles spent waiting for the
    /// bus (a structural stall, §7.3.2). Bus arbitration is reported on
    /// the tracer when one is attached.
    pub fn fetch_line(&mut self, line_addr: u32, now: u64, thread: u32) -> (u64, u64) {
        let hit = self.l1i.access(line_addr, false).hit;
        let after_icache = now + 1 + if hit { 0 } else { L1I_MISS_PENALTY };
        let granted =
            self.bus
                .request_traced(after_icache, diag_mem::ILINE_BEATS, &self.tracer, thread);
        (granted + diag_mem::ILINE_BEATS, granted - after_icache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiagConfig;

    #[test]
    fn iline_hit_is_fast() {
        let mut shared = SharedParts::new(&DiagConfig::f4c2(), MainMemory::new());
        let (cold, wait) = shared.fetch_line(0x1000, 0, 0);
        assert_eq!(cold, 1 + L1I_MISS_PENALTY + 1);
        assert_eq!(wait, 0);
        let (warm, _) = shared.fetch_line(0x1000, 100, 0);
        assert_eq!(warm, 102);
    }

    #[test]
    fn bus_shared_between_fetches() {
        let mut shared = SharedParts::new(&DiagConfig::f4c2(), MainMemory::new());
        shared.fetch_line(0x1000, 0, 0);
        shared.fetch_line(0x1040, 0, 1);
        // Two transfers, at least one contended.
        assert_eq!(shared.bus.transfers(), 2);
    }

    #[test]
    fn no_l2_config_still_builds() {
        let shared = SharedParts::new(&DiagConfig::i4c2(), MainMemory::new());
        assert_eq!(shared.l2.borrow().stats().accesses, 0);
    }
}
