//! `bfs`: breadth-first search over a CSR graph (integer, irregular).
//!
//! The memory- and control-bound end of the Rodinia spectrum, where the
//! paper observes DiAG "performs much worse than the CPU baseline"
//! (§7.2.1): pointer-indirect loads, data-dependent branches, and a work
//! queue. Threads run *replicated* private graphs; no SIMT region exists
//! (the frontier loop is inherently serial).

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::check_words;

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "bfs",
        suite: Suite::Rodinia,
        description: "CSR breadth-first search with a work queue (integer)",
        simt_capable: false,
        thread_model: ThreadModel::Replicated,
        fp_heavy: false,
        build,
    }
}

fn nodes(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 32,
        Scale::Small => 6144,
        Scale::Full => 16384,
    }
}

/// A random connected-ish graph in CSR form (ring + random chords).
fn gen_graph(n: usize, rng: &mut SplitMix64) -> (Vec<u32>, Vec<u32>) {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (v, edges) in adj.iter_mut().enumerate() {
        edges.push(((v + 1) % n) as u32);
        for _ in 0..3 {
            edges.push(rng.gen_range(0..n) as u32);
        }
    }
    let mut row = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    row.push(0u32);
    for edges in &adj {
        col.extend_from_slice(edges);
        row.push(col.len() as u32);
    }
    (row, col)
}

fn expected(row: &[u32], col: &[u32], n: usize) -> Vec<u32> {
    let mut level = vec![u32::MAX; n];
    let mut queue = Vec::with_capacity(n);
    level[0] = 0;
    queue.push(0u32);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head] as usize;
        head += 1;
        for e in row[u]..row[u + 1] {
            let v = col[e as usize] as usize;
            if level[v] == u32::MAX {
                level[v] = level[u] + 1;
                queue.push(v as u32);
            }
        }
    }
    level
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = nodes(p.scale);
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6266);
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut expects = Vec::new();
    let mut col_len = 0;
    for _ in 0..threads {
        let (row, col) = gen_graph(n, &mut rng);
        expects.push(expected(&row, &col, n));
        col_len = col.len(); // identical degree structure per instance
        rows.push(row);
        cols.push(col);
    }

    let mut b = ProgramBuilder::new();
    let row_base = b.data_words("row", &rows.concat());
    let col_base = b.data_words("col", &cols.concat());
    let level_base = b.data_bytes("level", &vec![0xFFu8; 4 * n * threads]);
    let queue_base = b.data_zeroed("queue", 4 * n * threads);

    // Instance bases: s0 = row, s1 = col, s2 = level, s3 = queue.
    b.li(T0, ((n + 1) * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S0, row_base as i32);
    b.add(S0, S0, T0);
    b.li(T0, (col_len * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S1, col_base as i32);
    b.add(S1, S1, T0);
    b.li(T0, (n * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S2, level_base as i32);
    b.add(S2, S2, T0);
    b.li(S3, queue_base as i32);
    b.add(S3, S3, T0);

    // level[0] = 0; queue[0] = 0; head = 0 (s4), tail = 1 (s5).
    b.sw(ZERO, S2, 0);
    b.sw(ZERO, S3, 0);
    b.li(S4, 0);
    b.li(S5, 1);
    b.li(S6, -1); // sentinel

    let done = b.new_label();
    let outer = b.bind_new_label();
    b.bge(S4, S5, done);
    // u = queue[head++]
    b.slli(T0, S4, 2);
    b.add(T0, T0, S3);
    b.lw(T1, T0, 0); // u
    b.addi(S4, S4, 1);
    // lu = level[u] + 1
    b.slli(T0, T1, 2);
    b.add(T2, T0, S2);
    b.lw(S7, T2, 0);
    b.addi(S7, S7, 1);
    // edge range
    b.add(T2, T0, S0);
    b.lw(T3, T2, 0); // e = row[u]
    b.lw(T4, T2, 4); // end = row[u+1]
    let edges_done = b.new_label();
    let edge_loop = b.bind_new_label();
    b.bge(T3, T4, edges_done);
    b.slli(T0, T3, 2);
    b.add(T0, T0, S1);
    b.lw(T5, T0, 0); // v
    b.slli(T0, T5, 2);
    b.add(T6, T0, S2); // &level[v]
    b.lw(T0, T6, 0);
    let visited = b.new_label();
    b.bne(T0, S6, visited);
    b.sw(S7, T6, 0);
    b.slli(T0, S5, 2);
    b.add(T0, T0, S3);
    b.sw(T5, T0, 0);
    b.addi(S5, S5, 1);
    b.bind(visited);
    b.addi(T3, T3, 1);
    b.j(edge_loop);
    b.bind(edges_done);
    b.j(outer);
    b.bind(done);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |machine: &dyn diag_sim::Machine| {
        for (t, exp) in expects.iter().enumerate() {
            check_words(machine, level_base + (t * n * 4) as u32, exp, "bfs level")?;
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * 4 * 12 * threads) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn ring_edges_make_graph_connected() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let (row, col) = gen_graph(64, &mut rng);
        let levels = expected(&row, &col, 64);
        assert!(levels.iter().all(|&l| l != u32::MAX), "all nodes reachable");
    }

    #[test]
    fn verifies_replicated_threads() {
        let w = build(&Params::tiny().with_threads(2)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 2).unwrap();
        (w.verify)(&m).unwrap();
    }
}
