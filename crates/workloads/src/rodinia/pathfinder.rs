//! `pathfinder`: dynamic programming over a grid (integer).
//!
//! Rodinia's pathfinder finds a minimum-cost path through a 2D grid, row
//! by row: `dst[j] = grid[r][j] + min(src[j-1], src[j], src[j+1])`. Rows
//! depend on each other, so threads run *replicated* private instances;
//! the independent inner column loop is the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_words, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "pathfinder",
        suite: Suite::Rodinia,
        description: "grid DP: per-row min-of-three relaxation (integer)",
        simt_capable: true,
        thread_model: ThreadModel::Replicated,
        fp_heavy: false,
        build,
    }
}

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Tiny => (5, 16),
        Scale::Small => (16, 64),
        Scale::Full => (32, 192),
    }
}

/// Reference computation mirroring the kernel's operation order.
fn expected(grid: &[u32], rows: usize, cols: usize) -> Vec<u32> {
    let mut src: Vec<u32> = grid[..cols].to_vec();
    let mut dst = vec![0u32; cols];
    for r in 1..rows {
        for j in 0..cols {
            let mut m = src[j];
            if j > 0 && (src[j - 1] as i32) < (m as i32) {
                m = src[j - 1];
            }
            if j + 1 < cols && (src[j + 1] as i32) < (m as i32) {
                m = src[j + 1];
            }
            dst[j] = grid[r * cols + j].wrapping_add(m);
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let (rows, cols) = dims(p.scale);
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x7066);

    // Per-thread instance data.
    let mut grids: Vec<Vec<u32>> = Vec::with_capacity(threads);
    let mut expect: Vec<Vec<u32>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let grid: Vec<u32> = (0..rows * cols).map(|_| rng.gen_range(0..10)).collect();
        expect.push(expected(&grid, rows, cols));
        grids.push(grid);
    }

    let mut b = ProgramBuilder::new();
    let flat: Vec<u32> = grids.concat();
    let grid_base = b.data_words("grid", &flat);
    let src_base = b.data_zeroed("src", 4 * cols * threads);
    let dst_base = b.data_zeroed("dst", 4 * cols * threads);
    let out_base = b.data_zeroed("out", 4 * cols * threads);

    let inst_words = (rows * cols) as i32;
    // s0 = &grid[r][0] for this instance, s1 = src row, s2 = dst row,
    // s3 = cols, s4 = remaining rows, s5 = instance grid base.
    b.li(S3, cols as i32);
    b.li(T0, inst_words);
    b.mul(T0, A0, T0);
    b.slli(T0, T0, 2);
    b.li(S5, grid_base as i32);
    b.add(S5, S5, T0);
    b.li(T1, (cols * 4) as i32);
    b.mul(T0, A0, T1);
    b.li(S1, src_base as i32);
    b.add(S1, S1, T0);
    b.li(S2, dst_base as i32);
    b.add(S2, S2, T0);
    b.li(S8, out_base as i32);
    b.add(S8, S8, T0);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    // src = grid row 0 (copy loop).
    b.li(T0, 0);
    let copy0 = b.bind_new_label();
    b.slli(T1, T0, 2);
    b.add(T2, S5, T1);
    b.lw(T3, T2, 0);
    b.add(T2, S1, T1);
    b.sw(T3, T2, 0);
    b.addi(T0, T0, 1);
    b.blt(T0, S3, copy0);

    // Row loop: r = 1..rows.
    b.li(S4, (rows - 1) as i32);
    b.li(T1, (cols * 4) as i32);
    b.add(S0, S5, T1); // &grid[1][0]
    let row_loop = b.bind_new_label();

    // Inner column loop over j in [0, cols): the SIMT region.
    b.li(T0, 0); // rc = j
    b.li(T1, 1); // step
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S3, 1);
    }
    {
        // Body: t2 = &src[j]; min-of-three; dst[j] = grid[r][j] + min.
        b.slli(T2, T0, 2);
        b.add(T3, S1, T2);
        b.lw(T4, T3, 0); // mid
        let no_left = b.new_label();
        b.beqz(T0, no_left);
        b.lw(T5, T3, -4);
        b.bge(T5, T4, no_left);
        b.mv(T4, T5);
        b.bind(no_left);
        let no_right = b.new_label();
        b.addi(T6, T0, 1);
        b.beq(T6, S3, no_right);
        b.lw(T5, T3, 4);
        b.bge(T5, T4, no_right);
        b.mv(T4, T5);
        b.bind(no_right);
        b.add(T3, S0, T2);
        b.lw(T5, T3, 0);
        b.add(T5, T5, T4);
        b.add(T3, S2, T2);
        b.sw(T5, T3, 0);
    }
    if p.simt {
        b.simt_e(T0, S3, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S3, head);
    }

    // Swap src/dst, advance grid row, next r.
    b.mv(T0, S1);
    b.mv(S1, S2);
    b.mv(S2, T0);
    b.li(T1, (cols * 4) as i32);
    b.add(S0, S0, T1);
    b.addi(S4, S4, -1);
    b.bnez(S4, row_loop);

    // Copy final row (in src after the last swap) to out.
    b.li(T0, 0);
    let copy_out = b.bind_new_label();
    b.slli(T1, T0, 2);
    b.add(T2, S1, T1);
    b.lw(T3, T2, 0);
    b.add(T2, S8, T1);
    b.sw(T3, T2, 0);
    b.addi(T0, T0, 1);
    b.blt(T0, S3, copy_out);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let approx_work = (rows * cols * 14 * threads) as u64;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        for (t, exp) in expect.iter().enumerate() {
            check_words(m, out_base + (t * cols * 4) as u32, exp, "pathfinder out")?;
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let params = Params::tiny();
        let w = build(&params).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_multithreaded() {
        let params = Params::tiny().with_threads(3);
        let w = build(&params).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 3).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn simt_variant_matches() {
        let params = Params::tiny().with_simt(true);
        let w = build(&params).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }
}
