//! `lud`: in-place LU decomposition (Doolittle, floating point).
//!
//! Triple-nested elimination with a division per row factor — serial
//! dependencies across `k` iterations, so threads run *replicated*
//! instances and no SIMT region applies (nested backward loops, §4.4.3).

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::check_floats;

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "lud",
        suite: Suite::Rodinia,
        description: "in-place LU decomposition (f32, nested loops)",
        simt_capable: false,
        thread_model: ThreadModel::Replicated,
        fp_heavy: true,
        build,
    }
}

fn dim(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 8,
        Scale::Small => 20,
        Scale::Full => 40,
    }
}

fn expected(a: &[f32], m: usize) -> Vec<f32> {
    let mut a = a.to_vec();
    for k in 0..m {
        for i in k + 1..m {
            let l = a[i * m + k] / a[k * m + k];
            a[i * m + k] = l;
            for j in k + 1..m {
                // Kernel: fnmsub.s — a[i][j] = -(l * a[k][j]) + a[i][j].
                a[i * m + j] = (-l).mul_add(a[k * m + j], a[i * m + j]);
            }
        }
    }
    a
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let m = dim(p.scale);
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6C75);
    let mut mats = Vec::with_capacity(threads);
    let mut expects = Vec::with_capacity(threads);
    for _ in 0..threads {
        // Diagonally dominant → well-conditioned pivots.
        let mut a: Vec<f32> = (0..m * m).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        for d in 0..m {
            a[d * m + d] = rng.gen_range(4.0f32..8.0);
        }
        expects.push(expected(&a, m));
        mats.push(a);
    }

    let mut b = ProgramBuilder::new();
    let flat: Vec<f32> = mats.concat();
    let mat_base = b.data_floats("mat", &flat);

    // s0 = instance base, s1 = m, s2 = row stride bytes.
    b.li(S1, m as i32);
    b.li(S2, (m * 4) as i32);
    b.li(T0, (m * m * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S0, mat_base as i32);
    b.add(S0, S0, T0);

    // k loop.
    b.li(S3, 0); // k
    let k_done = b.new_label();
    let k_loop = b.bind_new_label();
    b.bge(S3, S1, k_done);
    // s4 = &A[k][k], s5 = &A[k][0]
    b.mul(T0, S3, S2);
    b.add(S5, S0, T0);
    b.slli(T1, S3, 2);
    b.add(S4, S5, T1);
    b.flw(FS0, S4, 0); // pivot

    // i loop: i = k+1..m; s6 = i, s7 = &A[i][0].
    b.addi(S6, S3, 1);
    b.add(S7, S5, S2);
    let i_done = b.new_label();
    let i_loop = b.bind_new_label();
    b.bge(S6, S1, i_done);
    b.slli(T1, S3, 2);
    b.add(T2, S7, T1); // &A[i][k]
    b.flw(FT0, T2, 0);
    b.fdiv_s(FT0, FT0, FS0); // l
    b.fsw(FT0, T2, 0);

    // j loop: j = k+1..m; t0 = j.
    b.addi(T0, S3, 1);
    let j_done = b.new_label();
    let j_loop = b.bind_new_label();
    b.bge(T0, S1, j_done);
    b.slli(T1, T0, 2);
    b.add(T2, S5, T1); // &A[k][j]
    b.flw(FT1, T2, 0);
    b.add(T3, S7, T1); // &A[i][j]
    b.flw(FT2, T3, 0);
    b.fnmsub_s(FT2, FT0, FT1, FT2);
    b.fsw(FT2, T3, 0);
    b.addi(T0, T0, 1);
    b.j(j_loop);
    b.bind(j_done);

    b.addi(S6, S6, 1);
    b.add(S7, S7, S2);
    b.j(i_loop);
    b.bind(i_done);

    b.addi(S3, S3, 1);
    b.j(k_loop);
    b.bind(k_done);
    b.ecall();

    let program = b.build()?;
    let words = m * m;
    let verify = Box::new(move |machine: &dyn diag_sim::Machine| {
        for (t, exp) in expects.iter().enumerate() {
            check_floats(machine, mat_base + (t * words * 4) as u32, exp, "lud mat")?;
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (m * m * m / 3 * 10 * threads) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn lu_factors_reconstruct_matrix() {
        // Independent numeric sanity: L·U ≈ A for the expected output.
        let m = 8usize;
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut a: Vec<f32> = (0..m * m).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        for d in 0..m {
            a[d * m + d] = 6.0;
        }
        let lu = expected(&a, m);
        for i in 0..m {
            for j in 0..m {
                let mut sum = 0.0f64;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * m + k] as f64 };
                    let u = if k <= j { lu[k * m + j] as f64 } else { 0.0 };
                    if k < i && k > j {
                        continue;
                    }
                    sum += l * u;
                }
                assert!((sum - a[i * m + j] as f64).abs() < 1e-3, "A[{i}][{j}]");
            }
        }
    }

    #[test]
    fn verifies_replicated_threads() {
        let w = build(&Params::tiny().with_threads(2)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 2).unwrap();
        (w.verify)(&m).unwrap();
    }
}
