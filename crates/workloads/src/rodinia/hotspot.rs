//! `hotspot`: thermal simulation stencil (floating point).
//!
//! One time step of Rodinia's hotspot: for every interior cell,
//! `out = t + k * (up + down + left + right - 4t) + p`, where `t` is the
//! temperature grid and `p` the scaled power grid. Reads are from
//! read-only inputs, so threads *partition* the interior rows, and the
//! straight-line cell body is the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_floats, emit_thread_range, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "hotspot",
        suite: Suite::Rodinia,
        description: "2D thermal stencil, one time step (f32)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

fn dims(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 10,
        Scale::Small => 40,
        Scale::Full => 96,
    }
}

const K: f32 = 0.175;

fn expected(temp: &[f32], power: &[f32], n: usize) -> Vec<f32> {
    let mut out = temp.to_vec();
    for r in 1..n - 1 {
        for j in 1..n - 1 {
            let c = temp[r * n + j];
            let sum = temp[r * n + j - 1]
                + temp[r * n + j + 1]
                + temp[(r - 1) * n + j]
                + temp[(r + 1) * n + j];
            let lap = sum - 4.0 * c;
            // The kernel uses fmadd.s (single rounding): mirror it.
            out[r * n + j] = lap.mul_add(K, c) + power[r * n + j];
        }
    }
    out
}

/// Emits the per-cell stencil body. Expects `T3` = &temp\[r\]\[j\],
/// `S5` = row stride, `S6`/`S7` = power/out deltas, `FS0` = 4.0,
/// `FS1` = K. Clobbers `T4` and `FT0`–`FT8`.
fn emit_cell(b: &mut ProgramBuilder) {
    b.flw(FT0, T3, 0); // center
    b.flw(FT1, T3, -4); // left
    b.flw(FT2, T3, 4); // right
    b.sub(T4, T3, S5);
    b.flw(FT3, T4, 0); // up
    b.add(T4, T3, S5);
    b.flw(FT4, T4, 0); // down
    b.fadd_s(FT5, FT1, FT2);
    b.fadd_s(FT5, FT5, FT3);
    b.fadd_s(FT5, FT5, FT4);
    b.fmul_s(FT6, FS0, FT0);
    b.fsub_s(FT5, FT5, FT6); // laplacian
    b.fmadd_s(FT7, FT5, FS1, FT0); // lap*K + center
    b.add(T4, T3, S6);
    b.flw(FT8, T4, 0); // power
    b.fadd_s(FT7, FT7, FT8);
    b.add(T4, T3, S7);
    b.fsw(FT7, T4, 0);
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = dims(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x4053);
    let temp: Vec<f32> = (0..n * n).map(|_| rng.gen_range(20.0f32..90.0)).collect();
    let power: Vec<f32> = (0..n * n).map(|_| rng.gen_range(0.0f32..0.5)).collect();
    let expect = expected(&temp, &power, n);

    let mut b = ProgramBuilder::new();
    let temp_base = b.data_floats("temp", &temp);
    let power_base = b.data_floats("power", &power);
    let out_base = b.data_floats("out", &temp); // initialized to temp (borders)

    // The SIMT variant flattens the 2D interior into a precomputed
    // offset table so the whole sweep is one pipelined region (paper
    // §4.4.3: nested loops must be flattened/unrolled to pipeline).
    let table_base = if p.simt {
        let offsets: Vec<u32> = (1..n - 1)
            .flat_map(|r| (1..n - 1).map(move |j| ((r * n + j) * 4) as u32))
            .collect();
        b.data_words("cells", &offsets)
    } else {
        0
    };

    // Constants: fs0 = 4.0, fs1 = K.
    b.fli_s(FS0, T0, 4.0);
    b.fli_s(FS1, T0, K);
    // s5 = n*4 (row stride), s6 = power-temp delta, s7 = out-temp delta.
    b.li(S5, (n * 4) as i32);
    b.li(S6, (power_base as i64 - temp_base as i64) as i32);
    b.li(S7, (out_base as i64 - temp_base as i64) as i32);
    b.li(S9, (n - 1) as i32); // interior column bound

    if p.simt {
        // Flat pipelined sweep over all interior cells.
        b.li(S2, ((n - 2) * (n - 2)) as i32);
        emit_thread_range(&mut b, S2, S3, S4);
        b.li(S8, table_base as i32);
        b.li(S1, temp_base as i32);
        let rep_top = begin_repeat(&mut b, repeats(p.scale));
        let done = b.new_label();
        b.bge(S3, S4, done);
        b.mv(T0, S3);
        b.li(T1, 1);
        let head = b.bind_new_label();
        b.simt_s(T0, T1, S4, 1);
        {
            b.slli(T2, T0, 2);
            b.add(T3, S8, T2);
            b.lw(T4, T3, 0); // byte offset of the cell
            b.add(T3, S1, T4); // &temp[r][j]
            emit_cell(&mut b);
        }
        b.simt_e(T0, S4, head);
        b.bind(done);
        end_repeat(&mut b, rep_top);
        b.ecall();
        let program = b.build()?;
        let verify = Box::new(move |m: &dyn diag_sim::Machine| {
            check_floats(m, out_base, &expect, "hotspot out")
        });
        return Ok(BuiltWorkload {
            program,
            verify,
            approx_work: (n * n * 22) as u64,
        });
    }

    // Thread range over interior rows [1, n-1): use index space 0..n-2
    // then add 1.
    b.li(S2, (n - 2) as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.addi(S3, S3, 1);
    b.addi(S4, S4, 1);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    // Row loop r = s0 in [s3, s4).
    b.mv(S0, S3);
    let row_done = b.new_label();
    let row_loop = b.bind_new_label();
    b.bge(S0, S4, row_done);
    // s1 = &temp[r][0]
    b.li(T0, temp_base as i32);
    b.mul(T1, S0, S5);
    b.add(S1, T0, T1);

    // Column loop j = t0 in [1, n-1).
    b.li(T0, 1);
    let head = b.bind_new_label();
    {
        b.slli(T2, T0, 2);
        b.add(T3, S1, T2); // &temp[r][j]
        emit_cell(&mut b);
    }
    b.addi(T0, T0, 1);
    b.blt(T0, S9, head);

    b.addi(S0, S0, 1);
    b.j(row_loop);
    b.bind(row_done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let approx_work = (n * n * 22) as u64;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        check_floats(m, out_base, &expect, "hotspot out")
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_partitioned_across_threads() {
        let w = build(&Params::tiny().with_threads(4)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 4).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn simt_variant_matches() {
        let w = build(&Params::tiny().with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }
}
