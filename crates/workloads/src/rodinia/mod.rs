//! Rodinia-style benchmark kernels (paper Figures 9 and 12).
//!
//! Each module reproduces the characteristic inner computation of one
//! Rodinia benchmark as a bare-metal RV32IMF kernel: the loop-body size,
//! instruction mix, branchiness, and memory intensity that determine how
//! DiAG compares against the out-of-order baseline.

pub mod backprop;
pub mod bfs;
pub mod hotspot;
pub mod kmeans;
pub mod lud;
pub mod nn;
pub mod nw;
pub mod pathfinder;
pub mod srad;
pub mod streamcluster;

use crate::params::WorkloadSpec;

/// All Rodinia-style workloads in figure order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        backprop::spec(),
        bfs::spec(),
        hotspot::spec(),
        kmeans::spec(),
        lud::spec(),
        nn::spec(),
        nw::spec(),
        pathfinder::spec(),
        srad::spec(),
        streamcluster::spec(),
    ]
}
