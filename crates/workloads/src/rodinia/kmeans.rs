//! `kmeans`: cluster-assignment step (floating point + integer select).
//!
//! The dominant phase of Rodinia's kmeans: for every point, compute the
//! squared Euclidean distance to each of `k = 3` centroids (features
//! unrolled) and record the index of the nearest. Points are independent:
//! threads *partition* them and the straight-line body (forward branches
//! only) is the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_words, emit_thread_range, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "kmeans",
        suite: Suite::Rodinia,
        description: "nearest-centroid assignment, k=3, 2 features (f32)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

fn npoints(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 48,
        Scale::Small => 768,
        Scale::Full => 4096,
    }
}

const CENTROIDS: [(f32, f32); 3] = [(0.2, 0.3), (0.7, 0.6), (0.4, 0.9)];

fn expected(points: &[(f32, f32)]) -> Vec<u32> {
    points
        .iter()
        .map(|&(x, y)| {
            let mut best = f32::INFINITY;
            let mut idx = 0u32;
            for (c, &(cx, cy)) in CENTROIDS.iter().enumerate() {
                let dx = x - cx;
                let dy = y - cy;
                // Kernel: d = fmadd(dy, dy, dx*dx).
                let d = dy.mul_add(dy, dx * dx);
                if d < best {
                    best = d;
                    idx = c as u32;
                }
            }
            idx
        })
        .collect()
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = npoints(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6B6D);
    let points: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.gen_range(0.0f32..1.0), rng.gen_range(0.0f32..1.0)))
        .collect();
    let expect = expected(&points);

    let flat: Vec<f32> = points.iter().flat_map(|&(x, y)| [x, y]).collect();
    let mut b = ProgramBuilder::new();
    let pts_base = b.data_floats("points", &flat);
    let out_base = b.data_zeroed("assign", 4 * n);

    // Centroid constants in fs0..fs5.
    for (i, &(cx, cy)) in CENTROIDS.iter().enumerate() {
        let (fx, fy) = match i {
            0 => (FS0, FS1),
            1 => (FS2, FS3),
            _ => (FS4, FS5),
        };
        b.fli_s(fx, T0, cx);
        b.fli_s(fy, T0, cy);
    }
    b.fli_s(FS6, T0, f32::INFINITY);
    b.li(S2, n as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.li(S5, pts_base as i32);
    b.li(S6, out_base as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    // Point loop i in [s3, s4): the SIMT region. Threads with an empty
    // range skip it entirely (the region is do-while shaped).
    let done = b.new_label();
    b.bge(S3, S4, done);
    b.mv(T0, S3);
    b.li(T1, 1);
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S4, 1);
    }
    {
        b.slli(T2, T0, 3);
        b.add(T3, S5, T2);
        b.flw(FT0, T3, 0); // x
        b.flw(FT1, T3, 4); // y
        b.fmv_s(FT10, FS6); // best = inf
        b.li(T4, 0); // best idx
        for (c, (fx, fy)) in [(0, (FS0, FS1)), (1, (FS2, FS3)), (2, (FS4, FS5))] {
            b.fsub_s(FT2, FT0, fx);
            b.fsub_s(FT3, FT1, fy);
            b.fmul_s(FT4, FT2, FT2);
            b.fmadd_s(FT4, FT3, FT3, FT4);
            let skip = b.new_label();
            b.flt_s(T5, FT4, FT10);
            b.beqz(T5, skip);
            b.fmv_s(FT10, FT4);
            b.li(T4, c);
            b.bind(skip);
        }
        b.slli(T2, T0, 2);
        b.add(T3, S6, T2);
        b.sw(T4, T3, 0);
    }
    if p.simt {
        b.simt_e(T0, S4, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S4, head);
    }
    b.bind(done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        check_words(m, out_base, &expect, "kmeans assign")
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * 36) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(4).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 4).unwrap();
        (w.verify)(&m).unwrap();
    }
}
