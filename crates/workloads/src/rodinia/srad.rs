//! `srad`: speckle-reducing anisotropic diffusion (FP-division heavy).
//!
//! One simplified SRAD sweep: for every interior cell, the diffusion
//! coefficient is computed from the normalized laplacian (two `fdiv.s`
//! per cell — SRAD is the paper's FPU-heavy stress case) and the image is
//! updated in a separate output buffer. Threads partition interior rows;
//! the straight-line cell body is the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_floats, emit_thread_range, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "srad",
        suite: Suite::Rodinia,
        description: "anisotropic diffusion sweep with per-cell divisions (f32)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

fn dims(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 10,
        Scale::Small => 32,
        Scale::Full => 64,
    }
}

const LAMBDA: f32 = 0.125;

fn expected(img: &[f32], n: usize) -> Vec<f32> {
    let mut out = img.to_vec();
    for r in 1..n - 1 {
        for j in 1..n - 1 {
            let c = img[r * n + j];
            let sum = img[r * n + j - 1]
                + img[r * n + j + 1]
                + img[(r - 1) * n + j]
                + img[(r + 1) * n + j];
            let q = sum - 4.0 * c;
            let g = q / c;
            let w = 1.0 / g.mul_add(g, 1.0);
            out[r * n + j] = (q * w).mul_add(LAMBDA, c);
        }
    }
    out
}

/// Emits the per-cell diffusion body. Expects `T3` = &img\[r\]\[j\],
/// `S5` = row stride, `S7` = out delta, `FS0` = 4.0, `FS1` = 1.0,
/// `FS2` = lambda. Clobbers `T4` and `FT0`–`FT9`.
fn emit_cell(b: &mut ProgramBuilder) {
    b.flw(FT0, T3, 0); // center
    b.flw(FT1, T3, -4);
    b.flw(FT2, T3, 4);
    b.sub(T4, T3, S5);
    b.flw(FT3, T4, 0);
    b.add(T4, T3, S5);
    b.flw(FT4, T4, 0);
    b.fadd_s(FT5, FT1, FT2);
    b.fadd_s(FT5, FT5, FT3);
    b.fadd_s(FT5, FT5, FT4);
    b.fmul_s(FT6, FS0, FT0);
    b.fsub_s(FT5, FT5, FT6); // q
    b.fdiv_s(FT6, FT5, FT0); // g = q / c
    b.fmadd_s(FT7, FT6, FT6, FS1); // g*g + 1
    b.fdiv_s(FT7, FS1, FT7); // w
    b.fmul_s(FT8, FT5, FT7); // q*w
    b.fmadd_s(FT9, FT8, FS2, FT0); // out
    b.add(T4, T3, S7);
    b.fsw(FT9, T4, 0);
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = dims(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x5244);
    let img: Vec<f32> = (0..n * n).map(|_| rng.gen_range(1.0f32..255.0)).collect();
    let expect = expected(&img, n);

    let mut b = ProgramBuilder::new();
    let img_base = b.data_floats("img", &img);
    let out_base = b.data_floats("out", &img);

    b.fli_s(FS0, T0, 4.0);
    b.fli_s(FS1, T0, 1.0);
    b.fli_s(FS2, T0, LAMBDA);
    b.li(S2, (n - 2) as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.addi(S3, S3, 1);
    b.addi(S4, S4, 1);
    b.li(S5, (n * 4) as i32);
    b.li(S7, (out_base as i64 - img_base as i64) as i32);
    b.li(S9, (n - 1) as i32);

    if p.simt {
        // Flat pipelined sweep over all interior cells (§4.4.3).
        let offsets: Vec<u32> = (1..n - 1)
            .flat_map(|r| (1..n - 1).map(move |j| ((r * n + j) * 4) as u32))
            .collect();
        let table_base = b.data_words("cells", &offsets);
        b.li(S2, ((n - 2) * (n - 2)) as i32);
        emit_thread_range(&mut b, S2, S3, S4);
        b.li(S8, table_base as i32);
        b.li(S1, img_base as i32);
        let rep_top = begin_repeat(&mut b, repeats(p.scale));
        let done = b.new_label();
        b.bge(S3, S4, done);
        b.mv(T0, S3);
        b.li(T1, 1);
        let head = b.bind_new_label();
        b.simt_s(T0, T1, S4, 1);
        {
            b.slli(T2, T0, 2);
            b.add(T3, S8, T2);
            b.lw(T4, T3, 0);
            b.add(T3, S1, T4);
            emit_cell(&mut b);
        }
        b.simt_e(T0, S4, head);
        b.bind(done);
        end_repeat(&mut b, rep_top);
        b.ecall();
        let program = b.build()?;
        let verify = Box::new(move |m: &dyn diag_sim::Machine| {
            check_floats(m, out_base, &expect, "srad out")
        });
        return Ok(BuiltWorkload {
            program,
            verify,
            approx_work: (n * n * 24) as u64,
        });
    }
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    b.mv(S0, S3);
    let row_done = b.new_label();
    let row_loop = b.bind_new_label();
    b.bge(S0, S4, row_done);
    b.li(T0, img_base as i32);
    b.mul(T1, S0, S5);
    b.add(S1, T0, T1);

    b.li(T0, 1);
    let head = b.bind_new_label();
    {
        b.slli(T2, T0, 2);
        b.add(T3, S1, T2);
        emit_cell(&mut b);
    }
    b.addi(T0, T0, 1);
    b.blt(T0, S9, head);

    b.addi(S0, S0, 1);
    b.j(row_loop);
    b.bind(row_done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let verify =
        Box::new(move |m: &dyn diag_sim::Machine| check_floats(m, out_base, &expect, "srad out"));
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * n * 24) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(4).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 4).unwrap();
        (w.verify)(&m).unwrap();
    }
}
