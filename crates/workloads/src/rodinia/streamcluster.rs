//! `streamcluster`: weighted clustering cost evaluation (floating point).
//!
//! The hot loop of streamcluster evaluates the cost of serving each point
//! from a candidate median: `gain[i] = weight[i] * dist(p_i, median)`.
//! Phase 1 (per-point gains) partitions points and is the SIMT region;
//! phase 2 reduces each thread's chunk to a per-thread cost.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{
    begin_repeat, check_floats, emit_thread_range, end_repeat, repeats, thread_range,
};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "streamcluster",
        suite: Suite::Rodinia,
        description: "weighted cluster cost: per-point gains + reduction (f32)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

fn npoints(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 64,
        Scale::Small => 1024,
        Scale::Full => 4096,
    }
}

const MEDIAN: (f32, f32) = (0.4, 0.6);

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = npoints(p.scale);
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x7363);
    let pts: Vec<(f32, f32, f32)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0f32..1.0),
                rng.gen_range(0.0f32..1.0),
                rng.gen_range(0.5f32..2.0),
            )
        })
        .collect();

    // Kernel order: d = fmadd(dy, dy, dx*dx); gain = w * d.
    let gains: Vec<f32> = pts
        .iter()
        .map(|&(x, y, w)| {
            let dx = x - MEDIAN.0;
            let dy = y - MEDIAN.1;
            w * dy.mul_add(dy, dx * dx)
        })
        .collect();
    let mut costs = Vec::new();
    for t in 0..threads {
        let (lo, hi) = thread_range(n, t, threads);
        let mut acc = 0.0f32;
        for g in &gains[lo..hi] {
            acc += g;
        }
        costs.push(acc);
    }

    let flat: Vec<f32> = pts.iter().flat_map(|&(x, y, w)| [x, y, w]).collect();
    let mut b = ProgramBuilder::new();
    let pts_base = b.data_floats("points", &flat);
    let gain_base = b.data_zeroed("gain", 4 * n);
    let cost_base = b.data_zeroed("cost", 4 * threads);

    b.fli_s(FS0, T0, MEDIAN.0);
    b.fli_s(FS1, T0, MEDIAN.1);
    b.li(S2, n as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.li(S5, pts_base as i32);
    b.li(S6, gain_base as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    // Phase 1 (SIMT): gains.
    let phase2 = b.new_label();
    b.bge(S3, S4, phase2);
    b.mv(T0, S3);
    b.li(T1, 1);
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S4, 1);
    }
    {
        // &pts[i]: 12 bytes each → i*12 = i*8 + i*4.
        b.slli(T2, T0, 3);
        b.slli(T3, T0, 2);
        b.add(T2, T2, T3);
        b.add(T3, S5, T2);
        b.flw(FT0, T3, 0);
        b.flw(FT1, T3, 4);
        b.flw(FT2, T3, 8); // weight
        b.fsub_s(FT3, FT0, FS0);
        b.fsub_s(FT4, FT1, FS1);
        b.fmul_s(FT5, FT3, FT3);
        b.fmadd_s(FT5, FT4, FT4, FT5);
        b.fmul_s(FT5, FT2, FT5);
        b.slli(T2, T0, 2);
        b.add(T3, S6, T2);
        b.fsw(FT5, T3, 0);
    }
    if p.simt {
        b.simt_e(T0, S4, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S4, head);
    }

    // Phase 2: per-thread reduction.
    b.bind(phase2);
    b.fli_s(FT10, T0, 0.0);
    b.mv(T0, S3);
    let red_done = b.new_label();
    let red = b.bind_new_label();
    b.bge(T0, S4, red_done);
    b.slli(T2, T0, 2);
    b.add(T3, S6, T2);
    b.flw(FT0, T3, 0);
    b.fadd_s(FT10, FT10, FT0);
    b.addi(T0, T0, 1);
    b.j(red);
    b.bind(red_done);
    b.li(T2, cost_base as i32);
    b.slli(T3, A0, 2);
    b.add(T2, T2, T3);
    b.fsw(FT10, T2, 0);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let expect_gains = gains.clone();
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        check_floats(m, gain_base, &expect_gains, "streamcluster gain")?;
        check_floats(m, cost_base, &costs, "streamcluster cost")
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * 16) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(4).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 4).unwrap();
        (w.verify)(&m).unwrap();
    }
}
