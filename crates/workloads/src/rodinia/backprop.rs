//! `backprop`: neural-network layer forward pass (FP multiply-accumulate).
//!
//! Rodinia's backprop forward phase: `hidden[j] = squash(Σ_i w[j][i] *
//! in[i])` over a 16-wide input layer. The paper's prototype has no
//! transcendental hardware, so the squash uses the rational sigmoid
//! `0.5 * x / (1 + |x|) + 0.5` (one `fdiv.s`). The inner product is fully
//! unrolled, making the per-neuron body straight-line: threads partition
//! neurons and the body is the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_floats, emit_thread_range, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "backprop",
        suite: Suite::Rodinia,
        description: "NN layer forward pass, 16-wide unrolled dot products (f32)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

const IN: usize = 16;

fn hidden(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 24,
        Scale::Small => 256,
        Scale::Full => 1024,
    }
}

fn expected(weights: &[f32], input: &[f32], hidden_n: usize) -> Vec<f32> {
    (0..hidden_n)
        .map(|j| {
            let mut acc = 0.0f32;
            for i in 0..IN {
                // Kernel: acc = fmadd(w, in, acc).
                acc = weights[j * IN + i].mul_add(input[i], acc);
            }
            let denom = acc.abs() + 1.0;
            (0.5 * acc / denom) + 0.5
        })
        .collect()
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let h = hidden(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6270);
    let weights: Vec<f32> = (0..h * IN).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let input: Vec<f32> = (0..IN).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let expect = expected(&weights, &input, h);

    let mut b = ProgramBuilder::new();
    let w_base = b.data_floats("weights", &weights);
    let in_base = b.data_floats("input", &input);
    let out_base = b.data_zeroed("hidden", 4 * h);

    // Preload the input vector into fs0..fs11, ft8..ft11 (16 registers).
    let in_regs = [
        FS0, FS1, FS2, FS3, FS4, FS5, FS6, FS7, FS8, FS9, FS10, FS11, FT8, FT9, FT10, FT11,
    ];
    b.li(T0, in_base as i32);
    for (i, &fr) in in_regs.iter().enumerate() {
        b.flw(fr, T0, (4 * i) as i32);
    }
    b.fli_s(FT7, T0, 0.5);
    b.fli_s(FT6, T0, 1.0);
    b.li(S2, h as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.li(S5, w_base as i32);
    b.li(S6, out_base as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    let done = b.new_label();
    b.bge(S3, S4, done);
    b.mv(T0, S3);
    b.li(T1, 1);
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S4, 1);
    }
    {
        b.slli(T2, T0, 6); // j * 16 floats * 4 bytes
        b.add(T3, S5, T2);
        // acc = w[0]*in[0], then 15 fmadds.
        b.flw(FT0, T3, 0);
        b.fmul_s(FT1, FT0, in_regs[0]);
        for (i, &fr) in in_regs.iter().enumerate().skip(1) {
            b.flw(FT0, T3, (4 * i) as i32);
            b.fmadd_s(FT1, FT0, fr, FT1);
        }
        // squash: 0.5 * acc / (1 + |acc|) + 0.5
        b.fabs_s(FT2, FT1);
        b.fadd_s(FT2, FT2, FT6);
        b.fmul_s(FT3, FT7, FT1);
        b.fdiv_s(FT3, FT3, FT2);
        b.fadd_s(FT3, FT3, FT7);
        b.slli(T2, T0, 2);
        b.add(T3, S6, T2);
        b.fsw(FT3, T3, 0);
    }
    if p.simt {
        b.simt_e(T0, S4, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S4, head);
    }
    b.bind(done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        check_floats(m, out_base, &expect, "backprop hidden")
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (h * 42) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(3).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 3).unwrap();
        (w.verify)(&m).unwrap();
    }
}
