//! `nw`: Needleman-Wunsch sequence alignment (integer DP).
//!
//! Fills the (m+1)×(m+1) score matrix with the classic three-way max
//! recurrence. Every cell depends on its left, upper, and diagonal
//! neighbors — serial wavefront dependencies — so threads run
//! *replicated* instances and there is no SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_words, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "nw",
        suite: Suite::Rodinia,
        description: "sequence-alignment DP matrix fill (integer, branchy)",
        simt_capable: false,
        thread_model: ThreadModel::Replicated,
        fp_heavy: false,
        build,
    }
}

fn seq_len(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 12,
        Scale::Small => 48,
        Scale::Full => 96,
    }
}

const MATCH: i32 = 2;
const MISMATCH: i32 = -1;
const GAP: i32 = 1;

fn expected(a: &[u32], bseq: &[u32], m: usize) -> Vec<u32> {
    let w = m + 1;
    let mut s = vec![0i32; w * w];
    for i in 0..=m {
        s[i * w] = -(GAP * i as i32);
        s[i] = -(GAP * i as i32);
    }
    for i in 1..=m {
        for j in 1..=m {
            let sim = if a[i - 1] == bseq[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = s[(i - 1) * w + j - 1] + sim;
            let up = s[(i - 1) * w + j] - GAP;
            let left = s[i * w + j - 1] - GAP;
            let mut best = diag;
            if up > best {
                best = up;
            }
            if left > best {
                best = left;
            }
            s[i * w + j] = best;
        }
    }
    s.into_iter().map(|v| v as u32).collect()
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let m = seq_len(p.scale);
    let w = m + 1;
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6E77);
    let mut seqs_a = Vec::new();
    let mut seqs_b = Vec::new();
    let mut expects = Vec::new();
    for _ in 0..threads {
        let a: Vec<u32> = (0..m).map(|_| rng.gen_range(0..4)).collect();
        let bs: Vec<u32> = (0..m).map(|_| rng.gen_range(0..4)).collect();
        expects.push(expected(&a, &bs, m));
        seqs_a.push(a);
        seqs_b.push(bs);
    }

    let mut b = ProgramBuilder::new();
    let a_base = b.data_words("seq_a", &seqs_a.concat());
    let b_base = b.data_words("seq_b", &seqs_b.concat());
    let s_base = b.data_zeroed("score", 4 * w * w * threads);

    // Instance bases: s0 = seq_a, s1 = seq_b, s2 = score.
    b.li(T0, (m * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S0, a_base as i32);
    b.add(S0, S0, T0);
    b.li(S1, b_base as i32);
    b.add(S1, S1, T0);
    b.li(T0, (w * w * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S2, s_base as i32);
    b.add(S2, S2, T0);
    b.li(S3, w as i32);
    b.li(S4, (w * 4) as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    // Border initialization: s[i][0] = s[0][i] = -i*GAP.
    b.li(T0, 0);
    let init_done = b.new_label();
    let init = b.bind_new_label();
    b.bge(T0, S3, init_done);
    b.li(T1, GAP);
    b.mul(T1, T0, T1);
    b.neg(T1, T1);
    b.mul(T2, T0, S4);
    b.add(T2, T2, S2);
    b.sw(T1, T2, 0); // s[i][0]
    b.slli(T2, T0, 2);
    b.add(T2, T2, S2);
    b.sw(T1, T2, 0); // s[0][i]
    b.addi(T0, T0, 1);
    b.j(init);
    b.bind(init_done);

    // i loop (1..=m): s5 = i, s6 = &s[i][0], s7 = &a[i-1].
    b.li(S5, 1);
    b.add(S6, S2, S4);
    b.mv(S7, S0);
    let i_done = b.new_label();
    let i_loop = b.bind_new_label();
    b.bgt(S5, S3, i_done); // note: runs i = 1..=m since s3 = m+1... guard below
    b.beq(S5, S3, i_done);
    b.lw(S8, S7, 0); // a[i-1]

    // j loop: t0 = j, t1 = &s[i][j], t2 = &b[j-1].
    b.li(T0, 1);
    b.addi(T1, S6, 4);
    b.mv(T2, S1);
    let j_done = b.new_label();
    let j_loop = b.bind_new_label();
    b.beq(T0, S3, j_done);
    b.lw(T3, T2, 0); // b[j-1]
                     // sim
    b.li(T4, MISMATCH);
    let nomatch = b.new_label();
    b.bne(S8, T3, nomatch);
    b.li(T4, MATCH);
    b.bind(nomatch);
    // diag = s[i-1][j-1] + sim
    b.sub(T5, T1, S4);
    b.lw(T6, T5, -4);
    b.add(T4, T6, T4);
    // up = s[i-1][j] - GAP
    b.lw(T6, T5, 0);
    b.addi(T6, T6, -GAP);
    let no_up = b.new_label();
    b.ble(T6, T4, no_up);
    b.mv(T4, T6);
    b.bind(no_up);
    // left = s[i][j-1] - GAP
    b.lw(T6, T1, -4);
    b.addi(T6, T6, -GAP);
    let no_left = b.new_label();
    b.ble(T6, T4, no_left);
    b.mv(T4, T6);
    b.bind(no_left);
    b.sw(T4, T1, 0);
    b.addi(T0, T0, 1);
    b.addi(T1, T1, 4);
    b.addi(T2, T2, 4);
    b.j(j_loop);
    b.bind(j_done);

    b.addi(S5, S5, 1);
    b.add(S6, S6, S4);
    b.addi(S7, S7, 4);
    b.j(i_loop);
    b.bind(i_done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let words = w * w;
    let verify = Box::new(move |machine: &dyn diag_sim::Machine| {
        for (t, exp) in expects.iter().enumerate() {
            check_words(machine, s_base + (t * words * 4) as u32, exp, "nw score")?;
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (m * m * 18 * threads) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn identical_sequences_score_perfectly() {
        let a: Vec<u32> = vec![1, 2, 3, 0, 1];
        let s = expected(&a, &a, 5);
        let w = 6;
        assert_eq!(s[5 * w + 5] as i32, 5 * MATCH);
    }

    #[test]
    fn verifies_replicated_threads() {
        let w = build(&Params::tiny().with_threads(2)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 2).unwrap();
        (w.verify)(&m).unwrap();
    }
}
