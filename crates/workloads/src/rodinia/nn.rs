//! `nn`: nearest-neighbor search (floating point distance + scan).
//!
//! Rodinia's nn computes the Euclidean distance from a query to every
//! record, then selects the nearest. Phase 1 (distances) partitions
//! points across threads and is the SIMT region; phase 2 is a per-thread
//! sequential min-scan writing `(index, distance-bits)` per thread.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{
    begin_repeat, check_floats, emit_thread_range, end_repeat, repeats, thread_range,
};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "nn",
        suite: Suite::Rodinia,
        description: "nearest neighbor: distances + per-thread min scan (f32)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

fn npoints(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 64,
        Scale::Small => 1024,
        Scale::Full => 6144,
    }
}

const QUERY: (f32, f32) = (0.5, 0.5);

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = npoints(p.scale);
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6E6E);
    let pts: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.gen_range(0.0f32..1.0), rng.gen_range(0.0f32..1.0)))
        .collect();

    // Expected distances (kernel order: fmadd(dy, dy, dx*dx)).
    let dists: Vec<f32> = pts
        .iter()
        .map(|&(x, y)| {
            let dx = x - QUERY.0;
            let dy = y - QUERY.1;
            dy.mul_add(dy, dx * dx)
        })
        .collect();
    // Expected per-thread minima.
    let mut mins: Vec<(u32, f32)> = Vec::new();
    for t in 0..threads {
        let (lo, hi) = thread_range(n, t, threads);
        let mut best = f32::INFINITY;
        let mut idx = 0u32;
        for (i, &d) in dists.iter().enumerate().take(hi).skip(lo) {
            if d < best {
                best = d;
                idx = i as u32;
            }
        }
        mins.push((idx, best));
    }

    let flat: Vec<f32> = pts.iter().flat_map(|&(x, y)| [x, y]).collect();
    let mut b = ProgramBuilder::new();
    let pts_base = b.data_floats("points", &flat);
    let dist_base = b.data_zeroed("dist", 4 * n);
    let min_base = b.data_zeroed("mins", 8 * threads.max(1));

    b.fli_s(FS0, T0, QUERY.0);
    b.fli_s(FS1, T0, QUERY.1);
    b.li(S2, n as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.li(S5, pts_base as i32);
    b.li(S6, dist_base as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    // Phase 1: distances (SIMT region).
    let phase2 = b.new_label();
    b.bge(S3, S4, phase2);
    b.mv(T0, S3);
    b.li(T1, 1);
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S4, 1);
    }
    {
        b.slli(T2, T0, 3);
        b.add(T3, S5, T2);
        b.flw(FT0, T3, 0);
        b.flw(FT1, T3, 4);
        b.fsub_s(FT2, FT0, FS0);
        b.fsub_s(FT3, FT1, FS1);
        b.fmul_s(FT4, FT2, FT2);
        b.fmadd_s(FT4, FT3, FT3, FT4);
        b.slli(T2, T0, 2);
        b.add(T3, S6, T2);
        b.fsw(FT4, T3, 0);
    }
    if p.simt {
        b.simt_e(T0, S4, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S4, head);
    }

    // Phase 2: sequential min over [s3, s4).
    b.bind(phase2);
    b.fli_s(FT10, T0, f32::INFINITY);
    b.li(T4, 0); // best index
    b.mv(T0, S3);
    let scan_done = b.new_label();
    let scan = b.bind_new_label();
    b.bge(T0, S4, scan_done);
    b.slli(T2, T0, 2);
    b.add(T3, S6, T2);
    b.flw(FT0, T3, 0);
    let no_better = b.new_label();
    b.flt_s(T5, FT0, FT10);
    b.beqz(T5, no_better);
    b.fmv_s(FT10, FT0);
    b.mv(T4, T0);
    b.bind(no_better);
    b.addi(T0, T0, 1);
    b.j(scan);
    b.bind(scan_done);
    b.li(T2, min_base as i32);
    b.slli(T3, A0, 3);
    b.add(T2, T2, T3);
    b.sw(T4, T2, 0);
    b.fsw(FT10, T2, 4);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let expect_dists = dists.clone();
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        check_floats(m, dist_base, &expect_dists, "nn dist")?;
        for (t, &(idx, best)) in mins.iter().enumerate() {
            let got_idx = m.read_word(min_base + 8 * t as u32);
            let got_best = m.read_f32(min_base + 8 * t as u32 + 4);
            if got_idx != idx {
                return Err(format!("nn min index t{t}: got {got_idx}, expected {idx}"));
            }
            if got_best.to_bits() != best.to_bits() {
                return Err(format!("nn min dist t{t}: got {got_best}, expected {best}"));
            }
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * 14) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(3).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 3).unwrap();
        (w.verify)(&m).unwrap();
    }
}
