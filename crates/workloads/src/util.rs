//! Shared kernel-authoring idioms.

use diag_asm::{Label, ProgramBuilder};
use diag_isa::regs::*;
use diag_isa::Reg;
use diag_sim::Machine;

use crate::params::Scale;

/// Outer kernel repetitions per scale: benchmarks measure steady-state
/// behaviour (warm caches, trained datapaths), so the sweep re-runs a few
/// times at benchmarking scales, mirroring Rodinia's iterative kernels.
/// Tiny stays at one repetition for fast exact-mirror unit tests.
pub fn repeats(scale: Scale) -> i32 {
    match scale {
        Scale::Tiny => 1,
        Scale::Small => 4,
        Scale::Full => 6,
    }
}

/// Opens the outer repetition loop (counter in `tp`, which no kernel
/// touches otherwise). Pair with [`end_repeat`].
pub fn begin_repeat(b: &mut ProgramBuilder, reps: i32) -> Label {
    b.li(TP, reps);
    b.bind_new_label()
}

/// Closes the loop opened by [`begin_repeat`].
pub fn end_repeat(b: &mut ProgramBuilder, top: Label) {
    b.addi(TP, TP, -1);
    b.bnez(TP, top);
}

/// Emits the standard thread-range preamble: computes this thread's
/// element range `[lo, hi)` over `n` total elements using the bare-metal
/// convention `a0` = tid, `a1` = thread count.
///
/// `chunk = ceil(n / threads)`, `lo = min(tid * chunk, n)`,
/// `hi = min(lo + chunk, n)`. Clobbers `T6`.
pub fn emit_thread_range(b: &mut ProgramBuilder, n: Reg, lo: Reg, hi: Reg) {
    debug_assert!(![A0, A1, T6, n].contains(&lo) && ![A0, A1, T6, n, lo].contains(&hi));
    // chunk = (n + threads - 1) / threads
    b.add(T6, n, A1);
    b.addi(T6, T6, -1);
    b.divu(T6, T6, A1);
    // lo = tid * chunk
    b.mul(lo, A0, T6);
    // hi = lo + chunk
    b.add(hi, lo, T6);
    // clamp both to n
    let lo_ok = b.new_label();
    b.bleu(lo, n, lo_ok);
    b.mv(lo, n);
    b.bind(lo_ok);
    let hi_ok = b.new_label();
    b.bleu(hi, n, hi_ok);
    b.mv(hi, n);
    b.bind(hi_ok);
}

/// The per-thread `[lo, hi)` range matching [`emit_thread_range`].
pub fn thread_range(n: usize, tid: usize, threads: usize) -> (usize, usize) {
    let chunk = n.div_ceil(threads);
    let lo = (tid * chunk).min(n);
    let hi = (lo + chunk).min(n);
    (lo, hi)
}

/// Compares an expected `u32` slice against machine memory at `base`.
pub fn check_words(m: &dyn Machine, base: u32, expected: &[u32], what: &str) -> Result<(), String> {
    for (i, &want) in expected.iter().enumerate() {
        let got = m.read_word(base + 4 * i as u32);
        if got != want {
            return Err(format!(
                "{what}[{i}] mismatch: got {got:#x} ({got}), expected {want:#x} ({want})"
            ));
        }
    }
    Ok(())
}

/// Compares an expected `f32` slice (bit-exact) against machine memory.
pub fn check_floats(
    m: &dyn Machine,
    base: u32,
    expected: &[f32],
    what: &str,
) -> Result<(), String> {
    for (i, &want) in expected.iter().enumerate() {
        let got = m.read_f32(base + 4 * i as u32);
        if got.to_bits() != want.to_bits() {
            return Err(format!("{what}[{i}] mismatch: got {got}, expected {want}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;

    #[test]
    fn thread_range_covers_everything_disjointly() {
        for n in [1usize, 7, 48, 100, 4096] {
            for threads in [1usize, 2, 3, 12, 16] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for t in 0..threads {
                    let (lo, hi) = thread_range(n, t, threads);
                    assert!(lo <= hi);
                    assert!(lo >= prev_hi);
                    prev_hi = hi;
                    covered += hi - lo;
                }
                assert_eq!(covered, n, "n={n} threads={threads}");
                assert_eq!(prev_hi, n);
            }
        }
    }

    #[test]
    fn emitted_range_matches_rust_range() {
        // Run the emitted preamble on the reference machine for several
        // thread configurations and compare with `thread_range`.
        for threads in [1usize, 3, 12] {
            let n = 100usize;
            let mut b = ProgramBuilder::new();
            b.li(S2, n as i32);
            emit_thread_range(&mut b, S2, S3, S4);
            b.slli(T0, A0, 3);
            b.sw(S3, T0, 0);
            b.sw(S4, T0, 4);
            b.ecall();
            let program = b.build().unwrap();
            let mut m = InOrder::new();
            diag_sim::Machine::run(&mut m, &program, threads).unwrap();
            for t in 0..threads {
                let (lo, hi) = thread_range(n, t, threads);
                assert_eq!(
                    m.read_word(8 * t as u32),
                    lo as u32,
                    "lo t={t} threads={threads}"
                );
                assert_eq!(
                    m.read_word(8 * t as u32 + 4),
                    hi as u32,
                    "hi t={t} threads={threads}"
                );
            }
        }
    }
}
