//! `x264`: sum-of-absolute-differences motion estimation (integer).
//!
//! The SAD inner loop of video encoding: for every candidate block,
//! accumulate `|cur[i] - ref[i]|` over 8 samples with branchless absolute
//! values. Blocks are independent: threads partition them and the
//! unrolled body is the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_words, emit_thread_range, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "x264",
        suite: Suite::Spec,
        description: "8-sample SAD block matching (integer, branchless abs)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: false,
        build,
    }
}

const BLOCK: usize = 8;

fn nblocks(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 48,
        Scale::Small => 512,
        Scale::Full => 2048,
    }
}

fn expected(cur: &[u32], refr: &[u32], nb: usize) -> Vec<u32> {
    (0..nb)
        .map(|blk| {
            let mut sad = 0u32;
            for i in 0..BLOCK {
                let a = cur[blk * BLOCK + i] as i32;
                let b = refr[blk * BLOCK + i] as i32;
                sad = sad.wrapping_add((a - b).unsigned_abs());
            }
            sad
        })
        .collect()
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let nb = nblocks(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x7834);
    let cur: Vec<u32> = (0..nb * BLOCK).map(|_| rng.gen_range(0..256)).collect();
    let refr: Vec<u32> = (0..nb * BLOCK).map(|_| rng.gen_range(0..256)).collect();
    let expect = expected(&cur, &refr, nb);

    let mut b = ProgramBuilder::new();
    let cur_base = b.data_words("cur", &cur);
    let ref_base = b.data_words("refr", &refr);
    let sad_base = b.data_zeroed("sad", 4 * nb);

    b.li(S2, nb as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.li(S5, cur_base as i32);
    b.li(S6, (ref_base as i64 - cur_base as i64) as i32);
    b.li(S7, sad_base as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    let done = b.new_label();
    b.bge(S3, S4, done);
    b.mv(T0, S3);
    b.li(T1, 1);
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S4, 1);
    }
    {
        b.slli(T2, T0, 5); // blk * 8 words * 4
        b.add(T3, S5, T2); // &cur[blk][0]
        b.add(T4, T3, S6); // &ref[blk][0]
        b.li(T5, 0); // sad
        for i in 0..BLOCK {
            b.lw(T6, T3, (4 * i) as i32);
            b.lw(T2, T4, (4 * i) as i32);
            b.sub(T6, T6, T2);
            // branchless |x|: m = x >> 31; x = (x ^ m) - m
            b.srai(T2, T6, 31);
            b.xor(T6, T6, T2);
            b.sub(T6, T6, T2);
            b.add(T5, T5, T6);
        }
        b.slli(T2, T0, 2);
        b.add(T3, S7, T2);
        b.sw(T5, T3, 0);
    }
    if p.simt {
        b.simt_e(T0, S4, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S4, head);
    }
    b.bind(done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let verify =
        Box::new(move |m: &dyn diag_sim::Machine| check_words(m, sad_base, &expect, "x264 sad"));
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (nb * 60) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn identical_blocks_have_zero_sad() {
        let cur = vec![5u32; 16];
        assert_eq!(expected(&cur, &cur, 2), vec![0, 0]);
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(4).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 4).unwrap();
        (w.verify)(&m).unwrap();
    }
}
