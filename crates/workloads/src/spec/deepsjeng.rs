//! `deepsjeng`: bitboard move generation and population count (integer
//! ALU chains).
//!
//! Chess engines spend their time on 64-bit board masks; on RV32 each
//! board is a pair of words. For every position the kernel computes
//! knight-spread masks with shifts and tallies mobility with a SWAR
//! popcount — long integer dependency chains, minimal memory. Positions
//! are independent: threads partition them and the straight-line body is
//! the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_words, emit_thread_range, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "deepsjeng",
        suite: Suite::Spec,
        description: "bitboard spread + SWAR popcount (integer ALU chains)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: false,
        build,
    }
}

fn npos(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 48,
        Scale::Small => 768,
        Scale::Full => 3072,
    }
}

const FILE_MASK: u32 = 0x7E7E_7E7E;

fn popcount_swar(x: u32) -> u32 {
    let x = x - ((x >> 1) & 0x5555_5555);
    let x = (x & 0x3333_3333) + ((x >> 2) & 0x3333_3333);
    let x = (x + (x >> 4)) & 0x0F0F_0F0F;
    x.wrapping_mul(0x0101_0101) >> 24
}

fn expected(boards: &[(u32, u32)]) -> Vec<u32> {
    boards
        .iter()
        .map(|&(lo, hi)| {
            let spread_lo =
                ((lo << 8) | (lo >> 8) | ((lo << 1) & FILE_MASK) | ((lo >> 1) & FILE_MASK)) & !lo;
            let spread_hi =
                ((hi << 8) | (hi >> 8) | ((hi << 1) & FILE_MASK) | ((hi >> 1) & FILE_MASK)) & !hi;
            popcount_swar(spread_lo) + popcount_swar(spread_hi)
        })
        .collect()
}

/// Emits the SWAR popcount of `src` in place (clobbers `tmp`; the `c*`
/// registers hold the SWAR constants).
fn emit_popcount(
    b: &mut ProgramBuilder,
    src: diag_isa::Reg,
    tmp: diag_isa::Reg,
    c5: diag_isa::Reg,
    c3: diag_isa::Reg,
    c0f: diag_isa::Reg,
    c01: diag_isa::Reg,
) {
    b.srli(tmp, src, 1);
    b.and(tmp, tmp, c5);
    b.sub(src, src, tmp);
    b.srli(tmp, src, 2);
    b.and(tmp, tmp, c3);
    b.and(src, src, c3);
    b.add(src, src, tmp);
    b.srli(tmp, src, 4);
    b.add(src, src, tmp);
    b.and(src, src, c0f);
    b.mul(src, src, c01);
    b.srli(src, src, 24);
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = npos(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x646A);
    let boards: Vec<(u32, u32)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let expect = expected(&boards);

    let flat: Vec<u32> = boards.iter().flat_map(|&(lo, hi)| [lo, hi]).collect();
    let mut b = ProgramBuilder::new();
    let board_base = b.data_words("boards", &flat);
    let out_base = b.data_zeroed("mobility", 4 * n);

    b.li(S2, n as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.li(S5, board_base as i32);
    b.li(S6, out_base as i32);
    b.li(S7, FILE_MASK as i32);
    b.li(S8, 0x5555_5555u32 as i32);
    b.li(S9, 0x3333_3333);
    b.li(S10, 0x0F0F_0F0F);
    b.li(S11, 0x0101_0101);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    let done = b.new_label();
    b.bge(S3, S4, done);
    b.mv(T0, S3);
    b.li(T1, 1);
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S4, 1);
    }
    {
        b.slli(T2, T0, 3);
        b.add(T3, S5, T2);
        b.li(T6, 0); // mobility accumulator
        for half in 0..2 {
            b.lw(T4, T3, 4 * half); // board half
                                    // spread = (b<<8 | b>>8 | (b<<1)&M | (b>>1)&M) & !b
            b.slli(T5, T4, 8);
            b.srli(T2, T4, 8);
            b.or(T5, T5, T2);
            b.slli(T2, T4, 1);
            b.and(T2, T2, S7);
            b.or(T5, T5, T2);
            b.srli(T2, T4, 1);
            b.and(T2, T2, S7);
            b.or(T5, T5, T2);
            b.not(T4, T4);
            b.and(T5, T5, T4);
            emit_popcount(&mut b, T5, T2, S8, S9, S10, S11);
            b.add(T6, T6, T5);
        }
        b.slli(T2, T0, 2);
        b.add(T3, S6, T2);
        b.sw(T6, T3, 0);
    }
    if p.simt {
        b.simt_e(T0, S4, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S4, head);
    }
    b.bind(done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        check_words(m, out_base, &expect, "deepsjeng mobility")
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * 50) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn swar_popcount_is_correct() {
        for x in [0u32, 1, 0xFFFF_FFFF, 0x8000_0001, 0xDEAD_BEEF] {
            assert_eq!(popcount_swar(x), x.count_ones());
        }
    }

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(4).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 4).unwrap();
        (w.verify)(&m).unwrap();
    }
}
