//! SPEC CPU2017-style benchmark kernels (paper Figure 10).
//!
//! The paper evaluates a subset of SPEC CPU2017 (excluding Fortran
//! benchmarks and those needing unavoidable system calls, §7.2.2). Each
//! module here reproduces the characteristic hot loop of one such
//! benchmark at the fidelity that matters for DiAG-vs-baseline shape:
//! instruction mix, loop-body size, branchiness, and memory behaviour.

pub mod deepsjeng;
pub mod imagick;
pub mod lbm;
pub mod leela;
pub mod mcf;
pub mod namd;
pub mod x264;
pub mod xz;

use crate::params::WorkloadSpec;

/// All SPEC-style workloads in figure order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        deepsjeng::spec(),
        imagick::spec(),
        lbm::spec(),
        leela::spec(),
        mcf::spec(),
        namd::spec(),
        x264::spec(),
        xz::spec(),
    ]
}
