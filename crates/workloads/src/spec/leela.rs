//! `leela`: Go board influence evaluation (integer, branchy, table
//! lookups).
//!
//! A Monte-Carlo Go engine's board evaluation: for every intersection,
//! score neighbor ownership with data-dependent branches and a small
//! lookup table — the mixed control/memory profile of 541.leela_r.
//! Replicated board instances per thread (the scan is cheap, the point
//! is the branch behaviour, not parallelism).

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_words, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "leela",
        suite: Suite::Spec,
        description: "Go board influence scan (integer, branchy lookups)",
        simt_capable: false,
        thread_model: ThreadModel::Replicated,
        fp_heavy: false,
        build,
    }
}

fn board(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 9,
        Scale::Small => 19,
        Scale::Full => 29,
    }
}

const WEIGHTS: [u32; 3] = [0, 7, 3]; // empty, black, white

fn expected(cells: &[u32], n: usize) -> Vec<u32> {
    let mut influence = vec![0u32; n * n];
    for r in 1..n - 1 {
        for c in 1..n - 1 {
            let me = cells[r * n + c];
            let mut score = WEIGHTS[me as usize];
            for (dr, dc) in [(0i32, 1i32), (0, -1), (1, 0), (-1, 0)] {
                let v = cells[((r as i32 + dr) as usize) * n + (c as i32 + dc) as usize];
                if v == 0 {
                    continue; // empty: no effect
                }
                if v == me {
                    score = score.wrapping_add(2); // friendly support
                } else {
                    score = score.wrapping_sub(1); // enemy pressure
                }
            }
            influence[r * n + c] = score;
        }
    }
    influence
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = board(p.scale);
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6C65);
    let mut boards = Vec::new();
    let mut expects = Vec::new();
    for _ in 0..threads {
        let cells: Vec<u32> = (0..n * n).map(|_| rng.gen_range(0..3)).collect();
        expects.push(expected(&cells, n));
        boards.push(cells);
    }

    let mut b = ProgramBuilder::new();
    let cells_base = b.data_words("cells", &boards.concat());
    let weight_base = b.data_words("weights", &WEIGHTS);
    let out_base = b.data_zeroed("influence", 4 * n * n * threads);

    // Instance bases.
    b.li(T0, (n * n * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S0, cells_base as i32);
    b.add(S0, S0, T0);
    b.li(S1, out_base as i32);
    b.add(S1, S1, T0);
    b.li(S2, weight_base as i32);
    b.li(S3, n as i32);
    b.li(S4, (n * 4) as i32);
    b.li(S9, (n - 1) as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    // r loop.
    b.li(S5, 1);
    let r_done = b.new_label();
    let r_loop = b.bind_new_label();
    b.bge(S5, S9, r_done);
    b.mul(T0, S5, S4);
    b.add(S6, S0, T0); // &cells[r][0]
    b.add(S7, S1, T0); // &influence[r][0]

    // c loop.
    b.li(T0, 1);
    let c_done = b.new_label();
    let c_loop = b.bind_new_label();
    b.bge(T0, S9, c_done);
    b.slli(T1, T0, 2);
    b.add(T2, S6, T1); // &cells[r][c]
    b.lw(T3, T2, 0); // me
    b.slli(T4, T3, 2);
    b.add(T4, T4, S2);
    b.lw(T5, T4, 0); // score = weights[me]
                     // Four neighbors: offsets +4, -4, +n*4, -n*4.
    for idx in 0..4 {
        let (use_stride, positive) = match idx {
            0 => (false, true),
            1 => (false, false),
            2 => (true, true),
            _ => (true, false),
        };
        if use_stride {
            if positive {
                b.add(T6, T2, S4);
            } else {
                b.sub(T6, T2, S4);
            }
            b.lw(T4, T6, 0);
        } else {
            b.lw(T4, T2, if positive { 4 } else { -4 });
        }
        let skip = b.new_label();
        let enemy = b.new_label();
        b.beqz(T4, skip); // empty
        b.bne(T4, T3, enemy);
        b.addi(T5, T5, 2);
        b.j(skip);
        b.bind(enemy);
        b.addi(T5, T5, -1);
        b.bind(skip);
    }
    b.add(T6, S7, T1);
    b.sw(T5, T6, 0);
    b.addi(T0, T0, 1);
    b.j(c_loop);
    b.bind(c_done);

    b.addi(S5, S5, 1);
    b.j(r_loop);
    b.bind(r_done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let words = n * n;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        for (t, exp) in expects.iter().enumerate() {
            check_words(m, out_base + (t * words * 4) as u32, exp, "leela influence")?;
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * n * 30 * threads) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn empty_board_scores_zero() {
        let cells = vec![0u32; 81];
        let inf = expected(&cells, 9);
        assert!(inf.iter().all(|&v| v == 0));
    }

    #[test]
    fn verifies_replicated_threads() {
        let w = build(&Params::tiny().with_threads(2)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 2).unwrap();
        (w.verify)(&m).unwrap();
    }
}
