//! `namd`: pairwise nonbonded force computation (floating point, division).
//!
//! The molecular-dynamics inner loop: each particle accumulates inverse-
//! square forces from four precomputed neighbors (unrolled). Particles
//! are independent within a step: threads partition them and the unrolled
//! body is the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_floats, emit_thread_range, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "namd",
        suite: Suite::Spec,
        description: "pairwise inverse-square forces, 4 neighbors (f32, fdiv)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

const NEIGHBORS: usize = 4;
const EPS: f32 = 0.01;

fn nparticles(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 48,
        Scale::Small => 512,
        Scale::Full => 2048,
    }
}

fn expected(pos: &[(f32, f32)], nbr: &[u32], n: usize) -> Vec<(f32, f32)> {
    (0..n)
        .map(|i| {
            let (xi, yi) = pos[i];
            let mut fx = 0.0f32;
            let mut fy = 0.0f32;
            for k in 0..NEIGHBORS {
                let j = nbr[i * NEIGHBORS + k] as usize;
                let dx = pos[j].0 - xi;
                let dy = pos[j].1 - yi;
                // Kernel: r2 = fmadd(dy, dy, dx*dx) + eps; inv = 1/r2;
                // fx = fmadd(inv, dx, fx); fy = fmadd(inv, dy, fy).
                let r2 = dy.mul_add(dy, dx * dx) + EPS;
                let inv = 1.0 / r2;
                fx = inv.mul_add(dx, fx);
                fy = inv.mul_add(dy, fy);
            }
            (fx, fy)
        })
        .collect()
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = nparticles(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6E64);
    let pos: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.gen_range(0.0f32..8.0), rng.gen_range(0.0f32..8.0)))
        .collect();
    let nbr: Vec<u32> = (0..n * NEIGHBORS)
        .map(|_| rng.gen_range(0..n) as u32)
        .collect();
    let expect = expected(&pos, &nbr, n);

    let flat_pos: Vec<f32> = pos.iter().flat_map(|&(x, y)| [x, y]).collect();
    let flat_force: Vec<f32> = expect.iter().flat_map(|&(x, y)| [x, y]).collect();
    let mut b = ProgramBuilder::new();
    let pos_base = b.data_floats("pos", &flat_pos);
    let nbr_base = b.data_words("nbr", &nbr);
    let force_base = b.data_zeroed("force", 8 * n);

    b.fli_s(FS0, T0, EPS);
    b.fli_s(FS1, T0, 1.0);
    b.li(S2, n as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.li(S5, pos_base as i32);
    b.li(S6, nbr_base as i32);
    b.li(S7, force_base as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    let done = b.new_label();
    b.bge(S3, S4, done);
    b.mv(T0, S3);
    b.li(T1, 1);
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S4, 1);
    }
    {
        b.slli(T2, T0, 3);
        b.add(T3, S5, T2);
        b.flw(FT0, T3, 0); // xi
        b.flw(FT1, T3, 4); // yi
        b.slli(T2, T0, 4); // i * 4 neighbors * 4 bytes
        b.add(T4, S6, T2);
        b.fli_s(FT8, T5, 0.0); // fx — constant load uses T5 scratch
        b.fmv_s(FT9, FT8); // fy
        for k in 0..NEIGHBORS {
            b.lw(T5, T4, (4 * k) as i32); // j
            b.slli(T5, T5, 3);
            b.add(T5, T5, S5);
            b.flw(FT2, T5, 0);
            b.flw(FT3, T5, 4);
            b.fsub_s(FT2, FT2, FT0); // dx
            b.fsub_s(FT3, FT3, FT1); // dy
            b.fmul_s(FT4, FT2, FT2);
            b.fmadd_s(FT4, FT3, FT3, FT4);
            b.fadd_s(FT4, FT4, FS0); // r2 + eps
            b.fdiv_s(FT4, FS1, FT4); // inv
            b.fmadd_s(FT8, FT4, FT2, FT8);
            b.fmadd_s(FT9, FT4, FT3, FT9);
        }
        b.slli(T2, T0, 3);
        b.add(T3, S7, T2);
        b.fsw(FT8, T3, 0);
        b.fsw(FT9, T3, 4);
    }
    if p.simt {
        b.simt_e(T0, S4, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S4, head);
    }
    b.bind(done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        check_floats(m, force_base, &flat_force, "namd force")
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * 60) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(4).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 4).unwrap();
        (w.verify)(&m).unwrap();
    }
}
