//! `imagick`: 3×3 image convolution (floating point).
//!
//! ImageMagick's resize/blur kernels reduce to dense small-stencil
//! convolutions. Interior pixels are independent: threads partition rows
//! and the fully-unrolled 9-tap body is the SIMT region.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_floats, emit_thread_range, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "imagick",
        suite: Suite::Spec,
        description: "3x3 convolution over an image (f32)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

fn dims(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 10,
        Scale::Small => 36,
        Scale::Full => 80,
    }
}

const KERNEL: [f32; 9] = [
    0.0625, 0.125, 0.0625, 0.125, 0.25, 0.125, 0.0625, 0.125, 0.0625,
];

fn expected(img: &[f32], n: usize) -> Vec<f32> {
    let mut out = img.to_vec();
    for r in 1..n - 1 {
        for j in 1..n - 1 {
            // Kernel order: acc = k0*p0, then 8 fmadds row-major.
            let mut acc = KERNEL[0] * img[(r - 1) * n + j - 1];
            let taps = [
                (0usize, 0i32, 1usize),
                (0, 1, 2),
                (1, -1, 3),
                (1, 0, 4),
                (1, 1, 5),
                (2, -1, 6),
                (2, 0, 7),
                (2, 1, 8),
            ];
            for &(dr, dj, k) in &taps {
                let pix = img[(r - 1 + dr) * n + (j as i32 + dj) as usize];
                acc = KERNEL[k].mul_add(pix, acc);
            }
            out[r * n + j] = acc;
        }
    }
    out
}

/// Emits the 9-tap convolution body. Expects `T3` = &img\[r\]\[j\],
/// `S5` = row stride, `S7` = out delta, `FS0`/`FS1`/`FS2` = corner/edge/
/// center weights. Clobbers `T4`–`T6`, `FT0`, `FT1`.
fn emit_pixel(b: &mut ProgramBuilder) {
    let kreg = |k: usize| match KERNEL[k] {
        x if x == KERNEL[4] => FS2,
        x if x == KERNEL[1] => FS1,
        _ => FS0,
    };
    b.sub(T4, T3, S5); // &img[r-1][j]
    b.add(T5, T3, S5); // &img[r+1][j]
    b.flw(FT0, T4, -4);
    b.fmul_s(FT1, kreg(0), FT0);
    let taps: [(diag_isa::Reg, i32, usize); 8] = [
        (T4, 0, 1),
        (T4, 4, 2),
        (T3, -4, 3),
        (T3, 0, 4),
        (T3, 4, 5),
        (T5, -4, 6),
        (T5, 0, 7),
        (T5, 4, 8),
    ];
    for (base, off, k) in taps {
        b.flw(FT0, base, off);
        b.fmadd_s(FT1, kreg(k), FT0, FT1);
    }
    b.add(T6, T3, S7);
    b.fsw(FT1, T6, 0);
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = dims(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x696D);
    let img: Vec<f32> = (0..n * n).map(|_| rng.gen_range(0.0f32..255.0)).collect();
    let expect = expected(&img, n);

    let mut b = ProgramBuilder::new();
    let img_base = b.data_floats("img", &img);
    let out_base = b.data_floats("out", &img);

    // Kernel constants: 9 taps but only 3 distinct values.
    b.fli_s(FS0, T0, KERNEL[0]); // corners
    b.fli_s(FS1, T0, KERNEL[1]); // edges
    b.fli_s(FS2, T0, KERNEL[4]); // center
    b.li(S2, (n - 2) as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    b.addi(S3, S3, 1);
    b.addi(S4, S4, 1);
    b.li(S5, (n * 4) as i32);
    b.li(S7, (out_base as i64 - img_base as i64) as i32);
    b.li(S9, (n - 1) as i32);

    if p.simt {
        // Flat pipelined sweep over all interior pixels (§4.4.3).
        let offsets: Vec<u32> = (1..n - 1)
            .flat_map(|r| (1..n - 1).map(move |j| ((r * n + j) * 4) as u32))
            .collect();
        let table_base = b.data_words("cells", &offsets);
        b.li(S2, ((n - 2) * (n - 2)) as i32);
        emit_thread_range(&mut b, S2, S3, S4);
        b.li(S8, table_base as i32);
        b.li(S1, img_base as i32);
        let rep_top = begin_repeat(&mut b, repeats(p.scale));
        let done = b.new_label();
        b.bge(S3, S4, done);
        b.mv(T0, S3);
        b.li(T1, 1);
        let head = b.bind_new_label();
        b.simt_s(T0, T1, S4, 1);
        {
            b.slli(T2, T0, 2);
            b.add(T3, S8, T2);
            b.lw(T4, T3, 0);
            b.add(T3, S1, T4);
            emit_pixel(&mut b);
        }
        b.simt_e(T0, S4, head);
        b.bind(done);
        end_repeat(&mut b, rep_top);
        b.ecall();
        let program = b.build()?;
        let verify = Box::new(move |m: &dyn diag_sim::Machine| {
            check_floats(m, out_base, &expect, "imagick out")
        });
        return Ok(BuiltWorkload {
            program,
            verify,
            approx_work: (n * n * 26) as u64,
        });
    }
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    b.mv(S0, S3);
    let row_done = b.new_label();
    let row_loop = b.bind_new_label();
    b.bge(S0, S4, row_done);
    b.li(T0, img_base as i32);
    b.mul(T1, S0, S5);
    b.add(S1, T0, T1); // &img[r][0]

    b.li(T0, 1);
    let head = b.bind_new_label();
    {
        b.slli(T2, T0, 2);
        b.add(T3, S1, T2); // &img[r][j]
        emit_pixel(&mut b);
    }
    b.addi(T0, T0, 1);
    b.blt(T0, S9, head);

    b.addi(S0, S0, 1);
    b.j(row_loop);
    b.bind(row_done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        check_floats(m, out_base, &expect, "imagick out")
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * n * 26) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn constant_image_is_preserved() {
        // The kernel sums to 1, so a constant image maps to itself.
        let img = vec![8.0f32; 36];
        let out = expected(&img, 6);
        for (i, v) in out.iter().enumerate() {
            assert!((v - 8.0).abs() < 1e-4, "pixel {i} = {v}");
        }
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(3).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 3).unwrap();
        (w.verify)(&m).unwrap();
    }
}
