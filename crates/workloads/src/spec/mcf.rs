//! `mcf`: shortest-path relaxation over an arc list (integer,
//! memory-bound).
//!
//! 505.mcf's core repeatedly scans arcs updating node potentials; this
//! kernel runs Bellman-Ford rounds over a random arc list — dependent
//! loads, data-dependent branches, and poor locality, the profile where
//! the paper's DiAG trails the baseline. Replicated per thread.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::check_words;

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "mcf",
        suite: Suite::Spec,
        description: "Bellman-Ford arc relaxation (integer, memory-bound)",
        simt_capable: false,
        thread_model: ThreadModel::Replicated,
        fp_heavy: false,
        build,
    }
}

fn size(scale: Scale) -> (usize, usize, usize) {
    // (nodes, arcs, rounds)
    match scale {
        Scale::Tiny => (24, 96, 3),
        Scale::Small => (4096, 16384, 4),
        Scale::Full => (16384, 65536, 5),
    }
}

const INF: u32 = 0x3FFF_FFFF;

fn expected(arcs: &[(u32, u32, u32)], nodes: usize, rounds: usize) -> Vec<u32> {
    let mut d = vec![INF; nodes];
    d[0] = 0;
    for _ in 0..rounds {
        for &(u, v, c) in arcs {
            let cand = d[u as usize].wrapping_add(c);
            if (cand as i32) < (d[v as usize] as i32) {
                d[v as usize] = cand;
            }
        }
    }
    d
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let (nodes, arcs_n, rounds) = size(p.scale);
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6D63);
    let mut arc_sets = Vec::new();
    let mut expects = Vec::new();
    for _ in 0..threads {
        let mut arcs: Vec<(u32, u32, u32)> = (0..arcs_n)
            .map(|_| {
                (
                    rng.gen_range(0..nodes) as u32,
                    rng.gen_range(0..nodes) as u32,
                    rng.gen_range(1..100),
                )
            })
            .collect();
        // Ensure reachability backbone.
        for (v, arc) in arcs.iter_mut().enumerate().take(nodes.min(arcs_n)).skip(1) {
            *arc = ((v - 1) as u32, v as u32, rng.gen_range(1..50));
        }
        expects.push(expected(&arcs, nodes, rounds));
        arc_sets.push(arcs);
    }

    let flat: Vec<u32> = arc_sets
        .iter()
        .flatten()
        .flat_map(|&(u, v, c)| [u, v, c])
        .collect();
    let mut b = ProgramBuilder::new();
    let arc_base = b.data_words("arcs", &flat);
    let dist_init: Vec<u32> = (0..nodes * threads)
        .map(|i| if i % nodes == 0 { 0 } else { INF })
        .collect();
    let dist_base = b.data_words("dist", &dist_init);

    // s0 = arcs base, s1 = dist base (per instance).
    b.li(T0, (arcs_n * 12) as i32);
    b.mul(T0, A0, T0);
    b.li(S0, arc_base as i32);
    b.add(S0, S0, T0);
    b.li(T0, (nodes * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S1, dist_base as i32);
    b.add(S1, S1, T0);
    b.li(S2, arcs_n as i32);
    b.li(S3, rounds as i32);

    let rounds_done = b.new_label();
    let round_loop = b.bind_new_label();
    b.beqz(S3, rounds_done);
    // Arc scan: t0 = arc index, t1 = arc ptr.
    b.li(T0, 0);
    b.mv(T1, S0);
    let arcs_done = b.new_label();
    let arc_loop = b.bind_new_label();
    b.bge(T0, S2, arcs_done);
    b.lw(T2, T1, 0); // u
    b.lw(T3, T1, 4); // v
    b.lw(T4, T1, 8); // c
    b.slli(T2, T2, 2);
    b.add(T2, T2, S1);
    b.lw(T5, T2, 0); // d[u]
    b.add(T5, T5, T4); // cand
    b.slli(T3, T3, 2);
    b.add(T3, T3, S1);
    b.lw(T6, T3, 0); // d[v]
    let no_relax = b.new_label();
    b.bge(T5, T6, no_relax);
    b.sw(T5, T3, 0);
    b.bind(no_relax);
    b.addi(T0, T0, 1);
    b.addi(T1, T1, 12);
    b.j(arc_loop);
    b.bind(arcs_done);
    b.addi(S3, S3, -1);
    b.j(round_loop);
    b.bind(rounds_done);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        for (t, exp) in expects.iter().enumerate() {
            check_words(m, dist_base + (t * nodes * 4) as u32, exp, "mcf dist")?;
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (arcs_n * rounds * 14 * threads) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn backbone_makes_nodes_reachable() {
        let (nodes, arcs_n, rounds) = size(Scale::Tiny);
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut arcs: Vec<(u32, u32, u32)> =
            (0..arcs_n).map(|_| (0, 0, rng.gen_range(1..100))).collect();
        for (v, arc) in arcs.iter_mut().enumerate().take(nodes.min(arcs_n)).skip(1) {
            *arc = ((v - 1) as u32, v as u32, 1);
        }
        let d = expected(&arcs, nodes, rounds);
        // With enough rounds of full scans in index order, the chain
        // relaxes fully in one round.
        assert!(d.iter().all(|&x| x < INF));
    }

    #[test]
    fn verifies_replicated_threads() {
        let w = build(&Params::tiny().with_threads(2)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 2).unwrap();
        (w.verify)(&m).unwrap();
    }
}
