//! `lbm`: lattice-Boltzmann collision step (floating point, streaming).
//!
//! A D2Q5-style collision over `n` cells with five distribution arrays:
//! `rho = Σ f_d`, `f_d += ω (w_d·rho − f_d)`. Per-cell work is
//! straight-line and independent: threads partition cells, SIMT region
//! over cells.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{check_floats, emit_thread_range};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "lbm",
        suite: Suite::Spec,
        description: "lattice-Boltzmann D2Q5 collision step (f32, streaming)",
        simt_capable: true,
        thread_model: ThreadModel::Partitioned,
        fp_heavy: true,
        build,
    }
}

fn cells(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 48,
        Scale::Small => 512,
        Scale::Full => 2048,
    }
}

const OMEGA: f32 = 0.6;
const W: [f32; 5] = [
    0.333_333_34,
    0.166_666_67,
    0.166_666_67,
    0.166_666_67,
    0.166_666_67,
];

fn expected(f: &[Vec<f32>], n: usize) -> Vec<Vec<f32>> {
    let mut out = f.to_vec();
    for i in 0..n {
        let mut rho = f[0][i];
        for fd in f.iter().take(5).skip(1) {
            rho += fd[i];
        }
        for d in 0..5 {
            // Kernel: feq = w_d * rho; f += ω*(feq - f) via fsub, fmadd.
            let feq = W[d] * rho;
            let diff = feq - f[d][i];
            out[d][i] = diff.mul_add(OMEGA, f[d][i]);
        }
    }
    out
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let n = cells(p.scale);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x6C62);
    let f: Vec<Vec<f32>> = (0..5)
        .map(|_| (0..n).map(|_| rng.gen_range(0.1f32..1.0)).collect())
        .collect();
    let expect = expected(&f, n);

    let mut b = ProgramBuilder::new();
    let bases: Vec<u32> = (0..5)
        .map(|d| b.data_floats(&format!("f{d}"), &f[d]))
        .collect();

    // Constants.
    b.fli_s(FS0, T0, W[0]);
    b.fli_s(FS1, T0, W[1]); // W[1..5] identical
    b.fli_s(FS2, T0, OMEGA);
    b.li(S2, n as i32);
    emit_thread_range(&mut b, S2, S3, S4);
    for (d, &base) in bases.iter().enumerate() {
        let reg = [S5, S6, S7, S8, S9][d];
        b.li(reg, base as i32);
    }

    let done = b.new_label();
    b.bge(S3, S4, done);
    b.mv(T0, S3);
    b.li(T1, 1);
    let head = b.bind_new_label();
    if p.simt {
        b.simt_s(T0, T1, S4, 1);
    }
    {
        b.slli(T2, T0, 2);
        let fregs = [FT0, FT1, FT2, FT3, FT4];
        let sregs = [S5, S6, S7, S8, S9];
        for d in 0..5 {
            b.add(T3, sregs[d], T2);
            b.flw(fregs[d], T3, 0);
        }
        b.fadd_s(FT5, FT0, FT1);
        b.fadd_s(FT5, FT5, FT2);
        b.fadd_s(FT5, FT5, FT3);
        b.fadd_s(FT5, FT5, FT4); // rho
        for d in 0..5 {
            let w = if d == 0 { FS0 } else { FS1 };
            b.fmul_s(FT6, w, FT5); // feq
            b.fsub_s(FT6, FT6, fregs[d]);
            b.fmadd_s(FT6, FT6, FS2, fregs[d]);
            b.add(T3, sregs[d], T2);
            b.fsw(FT6, T3, 0);
        }
    }
    if p.simt {
        b.simt_e(T0, S4, head);
    } else {
        b.addi(T0, T0, 1);
        b.blt(T0, S4, head);
    }
    b.bind(done);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        for (d, exp) in expect.iter().enumerate() {
            check_floats(m, bases[d], exp, "lbm f")?;
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (n * 36) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn mass_is_conserved() {
        // Collision conserves density: Σ feq = rho.
        let f = vec![vec![0.4f32], vec![0.1], vec![0.2], vec![0.15], vec![0.15]];
        let out = expected(&f, 1);
        let rho_in: f32 = f.iter().map(|d| d[0]).sum();
        let rho_out: f32 = out.iter().map(|d| d[0]).sum();
        assert!((rho_in - rho_out).abs() < 1e-4);
    }

    #[test]
    fn verifies_multithreaded_and_simt() {
        let w = build(&Params::tiny().with_threads(4).with_simt(true)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 4).unwrap();
        (w.verify)(&m).unwrap();
    }
}
