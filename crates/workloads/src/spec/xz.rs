//! `xz`: LZ77 match-length search (integer, data-dependent branches).
//!
//! The hot loop of LZMA compression: for every position with a hash-chain
//! candidate, compare bytes forward until the first mismatch. The inner
//! loop's trip count is data-dependent — the unpredictable-branch profile
//! where DiAG's in-order flush costs show (paper §7.3.2). Replicated per
//! thread.

use diag_asm::{AsmError, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;

use crate::params::{BuiltWorkload, Params, Scale, Suite, ThreadModel, WorkloadSpec};
use crate::util::{begin_repeat, check_words, end_repeat, repeats};

/// Registry entry.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "xz",
        suite: Suite::Spec,
        description: "LZ77 match-length scan (integer, unpredictable branches)",
        simt_capable: false,
        thread_model: ThreadModel::Replicated,
        fp_heavy: false,
        build,
    }
}

fn size(scale: Scale) -> (usize, usize) {
    // (buffer bytes, probe count)
    match scale {
        Scale::Tiny => (256, 24),
        Scale::Small => (4096, 256),
        Scale::Full => (16384, 1024),
    }
}

const MAX_MATCH: u32 = 64;

fn expected(data: &[u8], probes: &[(u32, u32)]) -> Vec<u32> {
    probes
        .iter()
        .map(|&(pos, cand)| {
            let mut len = 0u32;
            while len < MAX_MATCH {
                let a = data.get((pos + len) as usize).copied().unwrap_or(0);
                let b = data.get((cand + len) as usize).copied().unwrap_or(0);
                if a != b {
                    break;
                }
                len += 1;
            }
            len
        })
        .collect()
}

fn build(p: &Params) -> Result<BuiltWorkload, AsmError> {
    let (bytes, nprobes) = size(p.scale);
    let threads = p.threads.max(1);
    let mut rng = SplitMix64::seed_from_u64(p.seed ^ 0x787A);
    let mut datas = Vec::new();
    let mut probe_sets = Vec::new();
    let mut expects = Vec::new();
    for _ in 0..threads {
        // Low-entropy data so matches of varying length exist.
        let data: Vec<u8> = (0..bytes).map(|_| rng.gen_range(b'a'..b'd')).collect();
        let probes: Vec<(u32, u32)> = (0..nprobes)
            .map(|_| {
                let pos = rng.gen_range(0..(bytes - MAX_MATCH as usize)) as u32;
                let cand = rng.gen_range(0..(bytes - MAX_MATCH as usize)) as u32;
                (pos, cand)
            })
            .collect();
        expects.push(expected(&data, &probes));
        datas.push(data);
        probe_sets.push(probes);
    }

    let mut b = ProgramBuilder::new();
    let data_base = b.data_bytes("data", &datas.concat());
    let probes_flat: Vec<u32> = probe_sets
        .iter()
        .flatten()
        .flat_map(|&(p0, c)| [p0, c])
        .collect();
    let probe_base = b.data_words("probes", &probes_flat);
    let out_base = b.data_zeroed("lens", 4 * nprobes * threads);

    // Instance bases.
    b.li(T0, bytes as i32);
    b.mul(T0, A0, T0);
    b.li(S0, data_base as i32);
    b.add(S0, S0, T0);
    b.li(T0, (nprobes * 8) as i32);
    b.mul(T0, A0, T0);
    b.li(S1, probe_base as i32);
    b.add(S1, S1, T0);
    b.li(T0, (nprobes * 4) as i32);
    b.mul(T0, A0, T0);
    b.li(S2, out_base as i32);
    b.add(S2, S2, T0);
    b.li(S3, nprobes as i32);
    b.li(S4, MAX_MATCH as i32);
    let rep_top = begin_repeat(&mut b, repeats(p.scale));

    // Probe loop: s5 = probe index.
    b.li(S5, 0);
    let probes_done = b.new_label();
    let probe_loop = b.bind_new_label();
    b.bge(S5, S3, probes_done);
    b.slli(T0, S5, 3);
    b.add(T0, T0, S1);
    b.lw(T1, T0, 0); // pos
    b.lw(T2, T0, 4); // cand
    b.add(T1, T1, S0);
    b.add(T2, T2, S0);
    b.li(T3, 0); // len
    let match_done = b.new_label();
    let match_loop = b.bind_new_label();
    b.bge(T3, S4, match_done);
    b.add(T4, T1, T3);
    b.lbu(T5, T4, 0);
    b.add(T4, T2, T3);
    b.lbu(T6, T4, 0);
    b.bne(T5, T6, match_done);
    b.addi(T3, T3, 1);
    b.j(match_loop);
    b.bind(match_done);
    b.slli(T0, S5, 2);
    b.add(T0, T0, S2);
    b.sw(T3, T0, 0);
    b.addi(S5, S5, 1);
    b.j(probe_loop);
    b.bind(probes_done);
    end_repeat(&mut b, rep_top);
    b.ecall();

    let program = b.build()?;
    let verify = Box::new(move |m: &dyn diag_sim::Machine| {
        for (t, exp) in expects.iter().enumerate() {
            check_words(m, out_base + (t * nprobes * 4) as u32, exp, "xz lens")?;
        }
        Ok(())
    });
    Ok(BuiltWorkload {
        program,
        verify,
        approx_work: (nprobes * 80 * threads) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_baseline::InOrder;
    use diag_sim::Machine;

    #[test]
    fn match_lengths_are_sane() {
        let data = b"abcabcabcabc".to_vec();
        let probes = vec![(0u32, 3u32)];
        let lens = expected(&data, &probes);
        assert_eq!(lens[0], 9, "period-3 self-match runs to the end");
    }

    #[test]
    fn verifies_on_reference_machine() {
        let w = build(&Params::tiny()).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 1).unwrap();
        (w.verify)(&m).unwrap();
    }

    #[test]
    fn verifies_replicated_threads() {
        let w = build(&Params::tiny().with_threads(2)).unwrap();
        let mut m = InOrder::new();
        m.run(&w.program, 2).unwrap();
        (w.verify)(&m).unwrap();
    }
}
