//! Workload parameterization and the suite registry.
//!
//! Every benchmark kernel builds a bare-metal RV32IMF [`Program`] from a
//! seeded synthetic input, and carries a verification closure that checks
//! the machine's final memory against an expected result computed in Rust
//! (mirroring the kernel's exact operation order, so f32 results match
//! bit-for-bit).
//!
//! Threading follows the paper's evaluation style (§7.2): kernels are
//! either *partitioned* (threads split one problem's independent elements)
//! or *replicated* (each thread solves a private instance) — both shapes
//! avoid the synchronization primitives the paper's prototype lacks
//! ("we do not have complete hardware support for … atomic instructions",
//! §6). SIMT-capable kernels carry `simt_s`/`simt_e` regions around their
//! innermost independent loop when built with [`Params::simt`].

use diag_asm::{AsmError, Program};
use diag_sim::Machine;

/// Problem-size scale. The paper projected some results from reduced
/// inputs due to RTL-simulation speed (§7.1); the same idea applies here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Seconds-fast inputs for unit tests.
    Tiny,
    /// Default benchmarking inputs.
    Small,
    /// Larger inputs for the full harness runs.
    Full,
}

/// Build parameters for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Problem size.
    pub scale: Scale,
    /// Hardware threads the binary will run with (affects partitioning
    /// constants baked into the data segment, not the code).
    pub threads: usize,
    /// Insert `simt_s`/`simt_e` around the pipelineable inner loop.
    pub simt: bool,
    /// RNG seed for input generation.
    pub seed: u64,
}

impl Params {
    /// Single-threaded, small scale, no SIMT — the default experiment
    /// point.
    pub fn small() -> Params {
        Params {
            scale: Scale::Small,
            threads: 1,
            simt: false,
            seed: 0xD1A6,
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> Params {
        Params {
            scale: Scale::Tiny,
            ..Params::small()
        }
    }

    /// Returns a copy with the given thread count.
    pub fn with_threads(mut self, threads: usize) -> Params {
        self.threads = threads;
        self
    }

    /// Returns a copy with SIMT regions enabled.
    pub fn with_simt(mut self, simt: bool) -> Params {
        self.simt = simt;
        self
    }

    /// Returns a copy at the given problem scale.
    pub fn with_scale(mut self, scale: Scale) -> Params {
        self.scale = scale;
        self
    }
}

/// Verification closure type: checks a machine's post-run memory.
///
/// `Send + Sync` so built workloads can be shared across the parallel
/// sweep runner's workers through the artifact store (the closures only
/// capture expected-result vectors and addresses).
pub type VerifyFn = Box<dyn Fn(&dyn Machine) -> Result<(), String> + Send + Sync>;

/// A built, runnable workload instance.
pub struct BuiltWorkload {
    /// The program image.
    pub program: Program,
    /// Result checker.
    pub verify: VerifyFn,
    /// Dynamic-instruction estimate (for reporting).
    pub approx_work: u64,
}

impl std::fmt::Debug for BuiltWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltWorkload")
            .field("program", &self.program)
            .field("approx_work", &self.approx_work)
            .finish_non_exhaustive()
    }
}

/// Benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia-style kernels (Figure 9 / 12).
    Rodinia,
    /// SPEC CPU2017-style kernels (Figure 10).
    Spec,
}

/// How the workload uses multiple hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadModel {
    /// Threads split one problem's independent elements.
    Partitioned,
    /// Each thread solves a private instance.
    Replicated,
}

/// A registered workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Kernel name (lowercase, as the paper's figures label them).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// One-line description of the modelled computation.
    pub description: &'static str,
    /// Whether a SIMT-annotated variant exists (paper: regions were
    /// identified manually, §5.4).
    pub simt_capable: bool,
    /// Threading shape.
    pub thread_model: ThreadModel,
    /// Whether the kernel is dominated by floating-point work.
    pub fp_heavy: bool,
    /// Builder function.
    pub build: fn(&Params) -> Result<BuiltWorkload, AsmError>,
}

/// Process-wide count of [`WorkloadSpec::build`] calls.
static BUILD_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many workload assemblies this process has performed.
///
/// The artifact-pipeline tests assert that warm-cache runs perform *zero*
/// assemblies for already-keyed `(workload, params)` inputs.
pub fn build_calls() -> u64 {
    BUILD_CALLS.load(std::sync::atomic::Ordering::Relaxed)
}

impl WorkloadSpec {
    /// Builds the workload with the given parameters.
    pub fn build(&self, params: &Params) -> Result<BuiltWorkload, AsmError> {
        BUILD_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        (self.build)(params)
    }
}

/// All Rodinia-style workloads, in figure order.
pub fn rodinia() -> Vec<WorkloadSpec> {
    crate::rodinia::all()
}

/// All SPEC-style workloads, in figure order.
pub fn spec() -> Vec<WorkloadSpec> {
    crate::spec::all()
}

/// Every workload in both suites.
pub fn all() -> Vec<WorkloadSpec> {
    let mut v = rodinia();
    v.extend(spec());
    v
}

/// Looks up a workload by name across both suites.
pub fn find(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        let r = rodinia();
        let s = spec();
        assert!(
            r.len() >= 10,
            "need at least 10 Rodinia kernels, have {}",
            r.len()
        );
        assert!(
            s.len() >= 8,
            "need at least 8 SPEC kernels, have {}",
            s.len()
        );
        // Names are unique.
        let mut names: Vec<&str> = all().iter().map(|w| w.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate workload names");
    }

    #[test]
    fn find_works() {
        assert!(find("hotspot").is_some());
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn some_kernels_are_simt_capable() {
        assert!(all().iter().filter(|w| w.simt_capable).count() >= 6);
    }
}
