//! # diag-workloads — benchmark kernels for the DiAG reproduction
//!
//! Bare-metal RV32IMF reproductions of the characteristic hot loops of
//! the paper's evaluation suites: ten Rodinia-style kernels ([`rodinia`],
//! Figures 9/12) and eight SPEC CPU2017-style kernels ([`spec`],
//! Figure 10). Kernels are authored with [`diag_asm::ProgramBuilder`],
//! use seeded synthetic inputs, self-verify against a Rust mirror of the
//! exact operation order, and carry optional `simt_s`/`simt_e` regions on
//! their pipelineable inner loops (paper §5.4: regions were identified
//! manually).
//!
//! # Examples
//!
//! ```
//! use diag_baseline::InOrder;
//! use diag_sim::Machine;
//! use diag_workloads::{find, Params};
//!
//! let spec = find("hotspot").expect("registered workload");
//! let built = spec.build(&Params::tiny())?;
//! let mut machine = InOrder::new();
//! machine.run(&built.program, 1)?;
//! (built.verify)(&machine).map_err(|e| format!("verify: {e}"))?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod params;
pub mod rodinia;
pub mod spec;
pub mod util;

pub use params::{
    all, build_calls, find, rodinia as rodinia_specs, spec as spec_specs, BuiltWorkload, Params,
    Scale, Suite, ThreadModel, VerifyFn, WorkloadSpec,
};
