//! Differential testing: every workload must verify on every machine
//! model, in every variant — the strongest end-to-end check that the
//! DiAG core, the out-of-order baseline, and the in-order reference agree
//! architecturally.

use diag_baseline::{InOrder, O3Config, OooCpu};
use diag_core::{Diag, DiagConfig};
use diag_sim::Machine;
use diag_workloads::{all, Params};

fn check(machine: &mut dyn Machine, spec: &diag_workloads::WorkloadSpec, params: &Params) {
    let built = spec
        .build(params)
        .unwrap_or_else(|e| panic!("{}: build failed: {e}", spec.name));
    machine
        .run(&built.program, params.threads)
        .unwrap_or_else(|e| panic!("{} on {}: run failed: {e}", spec.name, machine.name()));
    (built.verify)(machine).unwrap_or_else(|e| panic!("{} on {}: {e}", spec.name, machine.name()));
}

#[test]
fn all_workloads_verify_on_inorder() {
    let params = Params::tiny();
    for spec in all() {
        let mut m = InOrder::new();
        check(&mut m, &spec, &params);
    }
}

#[test]
fn all_workloads_verify_on_ooo() {
    let params = Params::tiny();
    for spec in all() {
        let mut m = OooCpu::new(O3Config::aggressive_8wide(), 1);
        check(&mut m, &spec, &params);
    }
}

#[test]
fn all_workloads_verify_on_diag_f4c2() {
    let params = Params::tiny();
    for spec in all() {
        let mut m = Diag::new(DiagConfig::f4c2());
        check(&mut m, &spec, &params);
    }
}

#[test]
fn all_workloads_verify_on_diag_f4c32() {
    let params = Params::tiny();
    for spec in all() {
        let mut m = Diag::new(DiagConfig::f4c32());
        check(&mut m, &spec, &params);
    }
}

#[test]
fn multithreaded_workloads_verify_everywhere() {
    let params = Params::tiny().with_threads(4);
    for spec in all() {
        let mut io = InOrder::new();
        check(&mut io, &spec, &params);
        let mut ooo = OooCpu::paper_baseline();
        check(&mut ooo, &spec, &params);
        let mut diag = Diag::new(DiagConfig::f4c32());
        check(&mut diag, &spec, &params);
    }
}

#[test]
fn simt_variants_verify_with_and_without_pipelining() {
    let params = Params::tiny().with_simt(true);
    for spec in all().into_iter().filter(|s| s.simt_capable) {
        // Pipelined execution.
        let mut with = Diag::new(DiagConfig::f4c32());
        check(&mut with, &spec, &params);
        // Sequential marker semantics on DiAG.
        let mut cfg = DiagConfig::f4c32();
        cfg.enable_simt = false;
        let mut without = Diag::new(cfg);
        check(&mut without, &spec, &params);
        // Sequential marker semantics on the baseline.
        let mut ooo = OooCpu::new(O3Config::aggressive_8wide(), 1);
        check(&mut ooo, &spec, &params);
    }
}

#[test]
fn simt_multithreaded_verifies() {
    let params = Params::tiny().with_simt(true).with_threads(4);
    for spec in all().into_iter().filter(|s| s.simt_capable) {
        let mut diag = Diag::new(DiagConfig::f4c32());
        check(&mut diag, &spec, &params);
    }
}

#[test]
fn reuse_ablation_still_correct() {
    let params = Params::tiny();
    let mut cfg = DiagConfig::f4c2();
    cfg.enable_reuse = false;
    for spec in all() {
        let mut m = Diag::new(cfg.clone());
        check(&mut m, &spec, &params);
    }
}
