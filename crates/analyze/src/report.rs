//! Rendering an [`Analysis`] as human-readable text or
//! machine-readable JSON.
//!
//! The JSON emitter is hand-rolled: the workspace is dependency-free by
//! policy, and the schema is small enough that an escaping helper plus
//! `format!` is clearer than a serialization framework.

use crate::Analysis;
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an IPC bound with two decimals.
fn ipc(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders the analysis as an indented text report. `name` labels the
/// program (e.g. the workload name); `program` supplies symbol names for
/// addresses.
pub fn text_report(name: &str, program: &diag_asm::Program, analysis: &Analysis) -> String {
    let mut out = String::new();
    let cfg = &analysis.cfg;
    let reachable = cfg.blocks.iter().filter(|b| b.reachable).count();
    let _ = writeln!(
        out,
        "{name}: {} instructions, {} blocks ({} reachable), {} loops{}",
        analysis.text_insts,
        cfg.blocks.len(),
        reachable,
        analysis.perf.loops.len(),
        if cfg.has_indirect {
            ", indirect jumps present"
        } else {
            ""
        },
    );
    let _ = writeln!(
        out,
        "  lanes: max {} live of 64, {} live at entry, peak segment-buffer {} slots/cluster",
        analysis.max_live_lanes, analysis.entry_live_lanes, analysis.peak_segment_slots,
    );
    for l in &analysis.perf.loops {
        let _ = writeln!(
            out,
            "  loop {}: {} insts ({} guaranteed), {} line(s), II={}{}, crit path {} cy, \
             IPC bound {}{}",
            program.describe_addr(l.head),
            l.body_insts,
            l.guaranteed_insts,
            l.lines,
            l.recurrence_ii,
            match l.recurrence_lane {
                Some(r) => format!(" (lane {r})"),
                None => String::new(),
            },
            l.critical_path,
            ipc(l.ipc_bound),
            if l.reuse_eligible {
                ", reuse-eligible"
            } else {
                ", exceeds line capacity"
            },
        );
    }
    let _ = writeln!(
        out,
        "  ipc bound: {} program-wide{}",
        ipc(analysis.perf.ipc_bound),
        match analysis.perf.steady_state_ipc_bound {
            Some(s) => format!(", {} steady-state", ipc(s)),
            None => String::new(),
        },
    );
    if analysis.diagnostics.is_empty() {
        let _ = writeln!(out, "  diagnostics: none");
    } else {
        let _ = writeln!(out, "  diagnostics: {}", analysis.diagnostics.len());
        for d in &analysis.diagnostics {
            let _ = writeln!(out, "    {d}");
            for line in &d.context {
                let _ = writeln!(out, "      {line}");
            }
        }
    }
    out
}

/// Renders the analysis as a single JSON object.
pub fn json_report(name: &str, analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(out, "\"name\":\"{}\",", json_escape(name));
    let _ = write!(out, "\"text_insts\":{},", analysis.text_insts);
    let _ = write!(out, "\"blocks\":{},", analysis.cfg.blocks.len());
    let _ = write!(
        out,
        "\"reachable_blocks\":{},",
        analysis.cfg.blocks.iter().filter(|b| b.reachable).count()
    );
    let _ = write!(out, "\"has_indirect_jumps\":{},", analysis.cfg.has_indirect);
    let _ = write!(
        out,
        "\"lanes\":{{\"max_live\":{},\"entry_live\":{},\"peak_segment_slots\":{}}},",
        analysis.max_live_lanes, analysis.entry_live_lanes, analysis.peak_segment_slots
    );
    out.push_str("\"loops\":[");
    for (i, l) in analysis.perf.loops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"head\":{},\"body_insts\":{},\"guaranteed_insts\":{},\"lines\":{},\
             \"reuse_eligible\":{},\"critical_path\":{},\"recurrence_ii\":{},\
             \"ipc_bound\":{}}}",
            l.head,
            l.body_insts,
            l.guaranteed_insts,
            l.lines,
            l.reuse_eligible,
            l.critical_path,
            l.recurrence_ii,
            ipc(l.ipc_bound),
        );
    }
    out.push_str("],");
    let _ = write!(out, "\"ipc_bound\":{},", ipc(analysis.perf.ipc_bound));
    match analysis.perf.steady_state_ipc_bound {
        Some(s) => {
            let _ = write!(out, "\"steady_state_ipc_bound\":{},", ipc(s));
        }
        None => out.push_str("\"steady_state_ipc_bound\":null,"),
    }
    out.push_str("\"diagnostics\":[");
    for (i, d) in analysis.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"severity\":\"{}\",\"lint\":\"{}\",\"pc_start\":{},\"pc_end\":{},\
             \"message\":\"{}\",\"context\":[",
            d.severity.name(),
            d.lint.id(),
            d.pc_range.0,
            d.pc_range.1,
            json_escape(&d.message),
        );
        for (j, line) in d.context.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(line));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}
