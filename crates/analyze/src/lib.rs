//! # diag-analyze — static dataflow-graph analysis for DiAG programs
//!
//! DiAG's central claim is that the program-order instruction stream
//! *statically* determines the hardware dataflow graph: PE assignment,
//! register-lane routing, segment-buffer occupancy, and loop datapath-reuse
//! eligibility are all decidable from the binary before a single cycle is
//! simulated (paper §3–§4). This crate performs that decision procedure on
//! an assembled [`diag_asm::Program`]:
//!
//! - **CFG recovery** ([`mod@cfg`]): basic blocks, static branch/jump edges,
//!   reachability, dominators, and natural loops — with indirect jumps
//!   (`jalr`) treated conservatively.
//! - **Lane dataflow** ([`dataflow`]): per-lane def-use, liveness, and the
//!   occupancy estimates DiAG's cluster geometry cares about.
//! - **Lints** ([`lints`], [`diagnostics`]): structured findings for
//!   use-before-def, dead lane writes, unreachable blocks, wild branch
//!   targets, misaligned memory operands, loops exceeding the resident-line
//!   capacity, and SIMT regions that cannot be instance-pipelined.
//! - **Performance bounds** ([`perf`]): per-loop recurrence/critical-path
//!   analysis giving an IPC upper bound that provably dominates the cycle
//!   simulator's measured IPC (enforced by an integration test over every
//!   bundled workload).
//!
//! # Examples
//!
//! ```
//! use diag_analyze::{analyze, AnalyzeOptions};
//! use diag_asm::assemble;
//!
//! let program = assemble(
//!     "    addi t0, zero, 0\n\
//!      loop:\n\
//!      addi t0, t0, 1\n\
//!      blt  t0, a1, loop\n\
//!      ecall\n",
//! )
//! .unwrap();
//! let analysis = analyze(&program, &AnalyzeOptions::default());
//! assert_eq!(analysis.perf.loops.len(), 1);
//! // The add→branch self-circuit on t0 limits each iteration to ≥ 1 cycle.
//! assert!(analysis.perf.loops[0].recurrence_ii >= 1);
//! assert!(analysis.diagnostics.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cfg;
pub mod dataflow;
pub mod diagnostics;
pub mod flame;
pub mod lints;
pub mod perf;
pub mod report;

use diag_asm::Program;
use diag_core::DiagConfig;

pub use cfg::{Block, Cfg, NaturalLoop};
pub use dataflow::{LaneSet, Liveness, UseBeforeDef};
pub use diagnostics::{Diagnostic, Lint, Severity};
pub use perf::{LoopBound, PerfBounds};
pub use report::{json_report, text_report};

/// What to analyze against: the processor geometry and thread count
/// determine line capacity, ring partitioning, and commit bandwidth.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Processor configuration (geometry, commit width, trap vector).
    pub config: DiagConfig,
    /// Hardware threads the program will run with.
    pub threads: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            config: DiagConfig::f4c32(),
            threads: 1,
        }
    }
}

/// Everything the analyzer derives from a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Number of instructions in the text segment.
    pub text_insts: usize,
    /// The recovered control-flow graph.
    pub cfg: Cfg,
    /// Observable lane liveness over the CFG (halts expose all lanes);
    /// this is the view the dead-write lint is computed from.
    pub liveness: Liveness,
    /// Maximum simultaneously-live lanes at any reachable program point,
    /// under *traffic* liveness (a halt reads nothing) — the lanes that
    /// must physically flow through the PE array.
    pub max_live_lanes: usize,
    /// Lanes live at the entry under traffic liveness (reads the program
    /// expects from the environment; the ABI provides `a0`, `a1`, `sp`).
    pub entry_live_lanes: usize,
    /// Peak segment-buffer occupancy estimate per cluster: every live lane
    /// is buffered `pes_per_cluster / lane_buffer_interval` times per
    /// cluster it crosses (§6.1.2).
    pub peak_segment_slots: usize,
    /// Per-loop and program-level performance bounds.
    pub perf: PerfBounds,
    /// Lint findings, sorted by address.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// The highest severity present, if any finding was emitted.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether any `Error`-severity finding was emitted.
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }
}

/// Statically analyzes `program` for the processor described by `opts`.
pub fn analyze(program: &Program, opts: &AnalyzeOptions) -> Analysis {
    let cfg = Cfg::build(program, opts.config.trap_vector);
    let liveness = dataflow::liveness(&cfg);
    let traffic = dataflow::traffic_liveness(&cfg);
    let max_live_lanes = traffic.max_live(&cfg);
    let entry_live_lanes = traffic.live_in[cfg.entry].len();
    let peak_segment_slots = max_live_lanes * opts.config.lane_segments_per_cluster();
    let perf = perf::perf_bounds(&cfg, &opts.config, opts.threads);
    let diagnostics = lints::run_lints(program, &cfg, &liveness, &perf, &opts.config, opts.threads);
    Analysis {
        text_insts: program.text_len(),
        cfg,
        liveness,
        max_live_lanes,
        entry_live_lanes,
        peak_segment_slots,
        perf,
        diagnostics,
    }
}
