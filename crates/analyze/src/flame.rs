//! Flamegraph frame stacks from the static CFG and natural-loop tree.
//!
//! The profiler (`diag-profile`) records flat per-PC cycles; this module
//! supplies the nesting that turns them into a loop-aware flamegraph:
//! each instruction address gets a root-to-leaf stack of its enclosing
//! natural loops (outermost first), its basic block, and the
//! disassembled instruction itself. diag-profile deliberately sits below
//! this crate in the dependency order, so the frame map is built here,
//! where the CFG lives, and handed across.

use std::collections::BTreeMap;

use diag_asm::Program;
use diag_profile::FrameMap;

use crate::cfg::Cfg;

/// Builds the loop-nest frame map for every decodable instruction in
/// `program`'s text segment.
///
/// Frames, root first: one `loop@0x…` frame per enclosing natural loop
/// (outermost to innermost, named by the loop-header address), then
/// `bb@0x…` (the basic-block start), then the leaf `0x…: <disasm>`.
pub fn frame_map(program: &Program) -> FrameMap {
    let cfg = Cfg::build(program, None);
    let loops = cfg.natural_loops();

    // Enclosing loops per block, innermost-last. Natural-loop bodies
    // nest or are disjoint, so sorting a block's enclosing loops by
    // descending body size orders them outermost → innermost.
    let mut enclosing: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (li, l) in loops.iter().enumerate() {
        for &b in &l.body {
            enclosing.entry(b).or_default().push(li);
        }
    }
    for chain in enclosing.values_mut() {
        chain.sort_by_key(|&li| std::cmp::Reverse(loops[li].body.len()));
    }

    let mut map = FrameMap::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let mut prefix: Vec<String> = Vec::new();
        if let Some(chain) = enclosing.get(&bi) {
            for &li in chain {
                prefix.push(format!("loop@{:#x}", cfg.blocks[loops[li].head].start));
            }
        }
        prefix.push(format!("bb@{:#x}", block.start));
        for &(pc, inst) in &block.insts {
            let mut stack = prefix.clone();
            stack.push(format!("{pc:#x}: {inst}"));
            map.insert(pc, stack);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    #[test]
    fn loop_bodies_nest_under_loop_frames() {
        let program = assemble(
            "    li   t0, 4\n\
             outer:\n\
             li   t1, 4\n\
             inner:\n\
             addi t1, t1, -1\n\
             bnez t1, inner\n\
             addi t0, t0, -1\n\
             bnez t0, outer\n\
             ecall\n",
        )
        .unwrap();
        let map = frame_map(&program);
        let base = program.text_base();
        // The inner-loop body (addi t1 at +8) sits under both loops.
        let inner = map.get(base + 8).expect("inner body mapped");
        let loops: Vec<&String> = inner.iter().filter(|f| f.starts_with("loop@")).collect();
        assert_eq!(loops.len(), 2, "stack: {inner:?}");
        assert_eq!(map.innermost_loop(base + 8), Some(loops[1].as_str()));
        // The preamble li is outside any loop.
        let pre = map.get(base).expect("preamble mapped");
        assert!(pre.iter().all(|f| !f.starts_with("loop@")), "{pre:?}");
        assert!(pre.last().unwrap().contains("0x"));
        // Outer-only body (addi t0 at +16) is under exactly the outer loop.
        let outer = map.get(base + 16).expect("outer body mapped");
        let outer_loops: Vec<&String> = outer.iter().filter(|f| f.starts_with("loop@")).collect();
        assert_eq!(outer_loops, vec![loops[0]], "stack: {outer:?}");
    }
}
