//! Control-flow graph recovery from an assembled program's text segment.
//!
//! DiAG constructs its hardware datapath directly from the program-order
//! instruction stream, so the same static walk that the control unit
//! performs (leader discovery at branch targets, fall-through chaining,
//! §4.2) recovers the CFG here. Indirect jumps (`jalr`) have no static
//! target; their presence is recorded and every conservative consumer
//! (reachability lints, use-before-def) degrades gracefully.

use diag_asm::Program;
use diag_isa::{ControlFlow, Inst, INST_BYTES};
use std::collections::BTreeSet;

/// One basic block: a maximal straight-line run of decoded instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// One past the address of the last instruction.
    pub end: u32,
    /// The decoded instructions with their addresses.
    pub insts: Vec<(u32, Inst)>,
    /// Successor block indices (statically-known edges only).
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
    /// Whether direct control flow from the entry can reach this block.
    pub reachable: bool,
    /// Whether execution can fall through past `end` out of the text
    /// segment (no halt, no unconditional transfer).
    pub falls_off_text: bool,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block holds no instructions (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// The recovered control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in address order.
    pub blocks: Vec<Block>,
    /// Index of the entry block.
    pub entry: usize,
    /// Whether the program contains any indirect jump (`jalr`). When true,
    /// unreachable-code conclusions are unsound and are suppressed.
    pub has_indirect: bool,
    /// Addresses (and raw words) in text that do not decode.
    pub illegal: Vec<(u32, u32)>,
    /// Control transfers whose static target is outside text or
    /// misaligned: `(pc, target)`.
    pub wild_targets: Vec<(u32, u32)>,
}

impl Cfg {
    /// Recovers the CFG from `program`'s text segment. `trap_vector`, when
    /// configured and inside text, is treated as an additional entry root
    /// (an `ebreak` may transfer there).
    pub fn build(program: &Program, trap_vector: Option<u32>) -> Cfg {
        let base = program.text_base();
        let end = program.text_end();
        let n = program.text_len();

        let mut decoded: Vec<Option<Inst>> = Vec::with_capacity(n);
        let mut illegal = Vec::new();
        for i in 0..n {
            let addr = base + (i as u32) * INST_BYTES;
            let word = program.fetch(addr).expect("in text");
            match program.decode_at(addr) {
                Some(inst) => decoded.push(Some(inst)),
                None => {
                    decoded.push(None);
                    illegal.push((addr, word));
                }
            }
        }

        // Leader discovery: entry, every static target, and everything
        // after a control transfer or undecodable word.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        let mut wild_targets = Vec::new();
        let mut has_indirect = false;
        if program.contains_text_addr(program.entry()) {
            leaders.insert(program.entry());
        } else if n > 0 {
            leaders.insert(base);
        }
        if let Some(v) = trap_vector {
            if program.contains_text_addr(v) {
                leaders.insert(v);
            }
        }
        for (i, inst) in decoded.iter().enumerate() {
            let pc = base + (i as u32) * INST_BYTES;
            let Some(inst) = inst else {
                // The word after an illegal word starts a new block.
                leaders.insert(pc + INST_BYTES);
                continue;
            };
            let flow = inst.control_flow();
            if matches!(flow, ControlFlow::Indirect { .. }) {
                has_indirect = true;
            }
            if matches!(flow, ControlFlow::Next) {
                continue;
            }
            let (fall, taken) = inst.static_successors(pc);
            if let Some(t) = taken {
                if program.contains_text_addr(t) {
                    leaders.insert(t);
                } else {
                    wild_targets.push((pc, t));
                }
            }
            // Whatever follows a control transfer begins a new block, even
            // when the transfer never falls through.
            let _ = fall;
            leaders.insert(pc + INST_BYTES);
        }
        leaders.retain(|&a| a >= base && a < end);

        // Carve blocks: from each leader to the next leader or control
        // transfer (inclusive) or illegal word (exclusive).
        let mut blocks: Vec<Block> = Vec::new();
        let leader_list: Vec<u32> = leaders.iter().copied().collect();
        for (k, &start) in leader_list.iter().enumerate() {
            let hard_end = leader_list.get(k + 1).copied().unwrap_or(end);
            let mut insts = Vec::new();
            let mut at = start;
            let mut falls_off_text = false;
            while at < hard_end {
                let idx = ((at - base) / INST_BYTES) as usize;
                match decoded[idx] {
                    Some(inst) => insts.push((at, inst)),
                    // The illegal word terminates the block; execution
                    // faults there, so nothing follows.
                    None => break,
                }
                at += INST_BYTES;
            }
            if insts.is_empty() {
                // A leader pointing directly at an illegal word: represent
                // it as an empty-succ block holding nothing? Instead skip —
                // the illegal word is already reported.
                continue;
            }
            let (last_pc, last) = *insts.last().expect("non-empty");
            // Fall-through past the end of text without a halt.
            if last_pc + INST_BYTES == end
                && matches!(
                    last.control_flow(),
                    ControlFlow::Next | ControlFlow::Branch { .. } | ControlFlow::SimtLoop { .. }
                )
            {
                falls_off_text = true;
            }
            blocks.push(Block {
                start,
                end: last_pc + INST_BYTES,
                insts,
                succs: Vec::new(),
                preds: Vec::new(),
                reachable: false,
                falls_off_text,
            });
        }

        // Edges.
        let index_of = |addr: u32| blocks.binary_search_by_key(&addr, |b| b.start).ok();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (bi, block) in blocks.iter().enumerate() {
            let (last_pc, last) = *block.insts.last().expect("non-empty");
            let ended_by_control = !matches!(last.control_flow(), ControlFlow::Next);
            let (fall, taken) = if ended_by_control {
                last.static_successors(last_pc)
            } else {
                // Block was cut short by the next leader: plain fall-through.
                (Some(last_pc + INST_BYTES), None)
            };
            for target in [fall, taken].into_iter().flatten() {
                if let Some(ti) = index_of(target) {
                    edges.push((bi, ti));
                }
            }
            // `ebreak` with a configured in-text trap vector can transfer
            // there.
            if matches!(last.control_flow(), ControlFlow::Trap) {
                if let Some(ti) = trap_vector.and_then(index_of) {
                    edges.push((bi, ti));
                }
            }
        }
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
            }
            if !blocks[to].preds.contains(&from) {
                blocks[to].preds.push(from);
            }
        }

        // Reachability from the entry roots along static edges.
        let entry_addr = if program.contains_text_addr(program.entry()) {
            program.entry()
        } else {
            base
        };
        let entry = blocks
            .binary_search_by_key(&entry_addr, |b| b.start)
            .ok()
            .unwrap_or(0);
        let mut cfg = Cfg {
            blocks,
            entry,
            has_indirect,
            illegal,
            wild_targets,
        };
        let mut stack = vec![entry];
        if let Some(v) = trap_vector {
            if let Some(ti) = cfg.block_at(v) {
                stack.push(ti);
            }
        }
        while let Some(b) = stack.pop() {
            if cfg.blocks[b].reachable {
                continue;
            }
            cfg.blocks[b].reachable = true;
            stack.extend(cfg.blocks[b].succs.iter().copied());
        }
        cfg
    }

    /// The index of the block starting at `addr`, if any.
    pub fn block_at(&self, addr: u32) -> Option<usize> {
        self.blocks.binary_search_by_key(&addr, |b| b.start).ok()
    }

    /// The index of the block containing `addr`, if any.
    pub fn block_containing(&self, addr: u32) -> Option<usize> {
        match self.blocks.binary_search_by_key(&addr, |b| b.start) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => (addr < self.blocks[i - 1].end).then_some(i - 1),
        }
    }

    /// Immediate dominators of every reachable block (entry maps to
    /// itself), computed with the Cooper–Harvey–Kennedy iteration.
    /// Unreachable blocks have no entry (`None`).
    pub fn dominators(&self) -> Vec<Option<usize>> {
        let n = self.blocks.len();
        // Reverse postorder over reachable blocks.
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack = vec![(self.entry, 0usize)];
        state[self.entry] = 1;
        while let Some((b, next)) = stack.last().copied() {
            if next < self.blocks[b].succs.len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let s = self.blocks[b].succs[next];
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &b) in order.iter().enumerate() {
            rpo_number[b] = i;
        }

        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[self.entry] = Some(self.entry);
        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_number[a] > rpo_number[b] {
                    a = idom[a].expect("processed");
                }
                while rpo_number[b] > rpo_number[a] {
                    b = idom[b].expect("processed");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &self.blocks[b].preds {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Whether block `a` dominates block `b`, given `dominators()` output.
    pub fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
        let mut at = b;
        loop {
            if at == a {
                return true;
            }
            match idom[at] {
                Some(parent) if parent != at => at = parent,
                _ => return false,
            }
        }
    }

    /// Natural loops: back edges `source → head` where the head dominates
    /// the source, merged per head, with the body found by the usual
    /// reverse walk from the back-edge sources.
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let idom = self.dominators();
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (b, block) in self.blocks.iter().enumerate() {
            if !block.reachable {
                continue;
            }
            for &s in &block.succs {
                if Cfg::dominates(&idom, s, b) {
                    match loops.iter_mut().find(|l| l.head == s) {
                        Some(l) => l.back_edges.push(b),
                        None => loops.push(NaturalLoop {
                            head: s,
                            back_edges: vec![b],
                            body: Vec::new(),
                        }),
                    }
                }
            }
        }
        for l in &mut loops {
            let mut body: BTreeSet<usize> = BTreeSet::new();
            body.insert(l.head);
            let mut stack: Vec<usize> = l.back_edges.clone();
            while let Some(b) = stack.pop() {
                if b == l.head || !body.insert(b) {
                    continue;
                }
                stack.extend(self.blocks[b].preds.iter().copied());
            }
            l.body = body.into_iter().collect();
        }
        loops.sort_by_key(|l| self.blocks[l.head].start);
        loops
    }
}

/// A natural loop discovered from the dominator tree.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop-header block (dominates every block in `body`).
    pub head: usize,
    /// Blocks with a back edge to `head`.
    pub back_edges: Vec<usize>,
    /// All blocks in the loop, sorted by index (includes `head`).
    pub body: Vec<usize>,
}
