//! Structured diagnostics emitted by the analyzer's lint passes.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the program will (or legally may) fault or misbehave at
/// runtime; `Warning` means the program is almost certainly not what the
/// author intended or cannot use the hardware as written; `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Probable mistake or hardware-ineligible pattern.
    Warning,
    /// Will fault or produce undefined values at runtime.
    Error,
}

impl Severity {
    /// Lower-case name used in reports (`"error"` / `"warning"` / `"info"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The individual lints the analyzer can emit, each with a stable
/// machine-readable identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// A text word does not decode to any RV32IMF(+SIMT) instruction.
    IllegalInst,
    /// A branch/jump/simt_e whose static target is outside the text
    /// segment or not instruction-aligned.
    WildBranchTarget,
    /// Execution can fall off the end of the text segment (or past an
    /// illegal word) without reaching a halt.
    MissingHalt,
    /// A register lane is read on some path before anything writes it.
    UseBeforeDef,
    /// A register write that no subsequent instruction can ever read.
    DeadLaneWrite,
    /// A basic block no direct control flow can reach (suppressed when the
    /// program contains indirect jumps).
    UnreachableBlock,
    /// A memory access whose static offset is not a multiple of the access
    /// size, so the access faults whenever the base is aligned.
    MisalignedMem,
    /// A loop body spanning more I-lines than one ring can keep resident,
    /// making it ineligible for backward-branch datapath reuse (§4.3.2).
    LoopExceedsCapacity,
    /// A `simt_e` whose loop-back target is not the paired `simt_s`.
    SimtMalformedRegion,
    /// A SIMT region containing control flow that breaks instance
    /// pipelining (backward branches, indirect jumps, halts).
    SimtUnsafeControl,
    /// A register (other than the control register) carried between SIMT
    /// loop instances — instances are pipelined, so the dependence breaks
    /// the paper's instance-independence requirement (§5.4).
    SimtCarriedDep,
}

impl Lint {
    /// The stable identifier used in JSON output and baselines.
    pub fn id(self) -> &'static str {
        match self {
            Lint::IllegalInst => "illegal-inst",
            Lint::WildBranchTarget => "wild-branch-target",
            Lint::MissingHalt => "missing-halt",
            Lint::UseBeforeDef => "use-before-def",
            Lint::DeadLaneWrite => "dead-lane-write",
            Lint::UnreachableBlock => "unreachable-block",
            Lint::MisalignedMem => "misaligned-mem",
            Lint::LoopExceedsCapacity => "loop-capacity",
            Lint::SimtMalformedRegion => "simt-malformed-region",
            Lint::SimtUnsafeControl => "simt-unsafe-control",
            Lint::SimtCarriedDep => "simt-carried-dep",
        }
    }

    /// The severity this lint is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Lint::IllegalInst
            | Lint::WildBranchTarget
            | Lint::MissingHalt
            | Lint::SimtMalformedRegion => Severity::Error,
            Lint::UseBeforeDef
            | Lint::MisalignedMem
            | Lint::SimtUnsafeControl
            | Lint::SimtCarriedDep => Severity::Warning,
            Lint::DeadLaneWrite | Lint::UnreachableBlock | Lint::LoopExceedsCapacity => {
                Severity::Info
            }
        }
    }
}

/// One finding: a lint instance anchored to a PC range, with the
/// surrounding disassembly for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity (always `self.lint.severity()`).
    pub severity: Severity,
    /// Which lint fired.
    pub lint: Lint,
    /// Address range the finding covers: `[start, end)` in bytes. Single
    /// instruction findings span 4 bytes.
    pub pc_range: (u32, u32),
    /// Human-readable explanation.
    pub message: String,
    /// Disassembly lines around the anchor instruction (the offending line
    /// is marked `>`).
    pub context: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic for a single instruction at `pc`.
    pub fn at(lint: Lint, pc: u32, message: String, context: Vec<String>) -> Diagnostic {
        Diagnostic {
            severity: lint.severity(),
            lint,
            pc_range: (pc, pc + 4),
            message,
            context,
        }
    }

    /// Creates a diagnostic spanning `[start, end)`.
    pub fn spanning(lint: Lint, start: u32, end: u32, message: String) -> Diagnostic {
        Diagnostic {
            severity: lint.severity(),
            lint,
            pc_range: (start, end),
            message,
            context: Vec::new(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (start, end) = self.pc_range;
        if end - start <= 4 {
            write!(
                f,
                "{}[{}] {:#x}: {}",
                self.severity.name(),
                self.lint.id(),
                start,
                self.message
            )
        } else {
            write!(
                f,
                "{}[{}] {:#x}..{:#x}: {}",
                self.severity.name(),
                self.lint.id(),
                start,
                end,
                self.message
            )
        }
    }
}
