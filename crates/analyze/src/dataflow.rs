//! Register-lane dataflow: def-use sets, liveness, use-before-def, and the
//! lane-occupancy estimates the cluster geometry cares about.
//!
//! DiAG carries each architectural register as a physical *lane* through
//! the PE array, so classic bit-vector dataflow over the 64-lane space
//! directly estimates hardware occupancy: a lane that is live across a
//! program point must be driven through every cluster that point's
//! instructions occupy (paper §4.1, §6.1.2).

use crate::cfg::Cfg;
use diag_isa::{ArchReg, Inst, Reg, NUM_LANES};

/// A set of register lanes as a 64-bit mask (bit *i* = [`ArchReg`] index
/// *i*). The `x0` lane is never a member.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneSet(pub u64);

impl LaneSet {
    /// The empty set.
    pub const EMPTY: LaneSet = LaneSet(0);
    /// Every lane except `x0`.
    pub const ALL: LaneSet = LaneSet(!1u64);

    /// Inserts a lane (ignores `x0`).
    pub fn insert(&mut self, r: ArchReg) {
        if !r.is_zero() {
            self.0 |= 1u64 << r.index();
        }
    }

    /// Removes a lane.
    pub fn remove(&mut self, r: ArchReg) {
        self.0 &= !(1u64 << r.index());
    }

    /// Whether `r` is in the set.
    pub fn contains(self, r: ArchReg) -> bool {
        self.0 & (1u64 << r.index()) != 0
    }

    /// Number of lanes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: LaneSet) -> LaneSet {
        LaneSet(self.0 | other.0)
    }

    /// Set difference.
    pub fn minus(self, other: LaneSet) -> LaneSet {
        LaneSet(self.0 & !other.0)
    }

    /// Iterates over members in lane order.
    pub fn iter(self) -> impl Iterator<Item = ArchReg> {
        (0..NUM_LANES as u8)
            .map(ArchReg::new)
            .filter(move |r| self.contains(*r))
    }

    /// Renders the members as a comma-separated ABI-name list.
    pub fn names(self) -> String {
        let mut out = String::new();
        for r in self.iter() {
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(&r.to_string());
        }
        out
    }
}

/// The lanes `inst` reads (never includes `x0`).
pub fn uses_of(inst: &Inst) -> LaneSet {
    let mut set = LaneSet::EMPTY;
    for r in inst.sources() {
        set.insert(r);
    }
    set
}

/// The lane `inst` writes, if any. Unlike [`Inst::dest`], this reports
/// `simt_e`'s write of its control register (the marker advances `rc` by
/// the region step when it loops).
pub fn def_of(inst: &Inst) -> Option<ArchReg> {
    match *inst {
        Inst::SimtE { rc, .. } => {
            let lane: ArchReg = rc.into();
            (!lane.is_zero()).then_some(lane)
        }
        _ => inst.dest(),
    }
}

/// Lanes the ABI initializes before the first instruction: `x0`, the
/// argument registers `a0` (thread id) and `a1` (thread count), and `sp`.
pub fn abi_initialized() -> LaneSet {
    let mut set = LaneSet::EMPTY;
    set.insert(Reg::A0.into());
    set.insert(Reg::A1.into());
    set.insert(Reg::SP.into());
    set
}

/// Per-block and per-point liveness over the CFG.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Lanes live at each block's entry.
    pub live_in: Vec<LaneSet>,
    /// Lanes live at each block's exit.
    pub live_out: Vec<LaneSet>,
}

/// How a block's exit treats lanes when the continuation is not another
/// block in the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExitKind {
    /// Falls through to successors only.
    Internal,
    /// Halts or traps: the final architectural state is the outcome.
    Halt,
    /// Indirect jump, wild target, or fall-off: unknowable continuation.
    Unknown,
}

fn exit_kind(cfg: &Cfg, b: usize) -> ExitKind {
    let block = &cfg.blocks[b];
    if block.falls_off_text {
        return ExitKind::Unknown;
    }
    let (_, last) = *block.insts.last().expect("non-empty");
    use diag_isa::ControlFlow;
    match last.control_flow() {
        // A trap with no in-text vector also ends the thread; when a
        // vector exists the edge carries liveness, but the halting outcome
        // remains possible, so `Halt` is the join either way.
        ControlFlow::Halt | ControlFlow::Trap => ExitKind::Halt,
        ControlFlow::Indirect { .. } => ExitKind::Unknown,
        // A branch/jump whose taken edge was wild (outside text): the
        // continuation is unknowable.
        ControlFlow::Branch { .. } | ControlFlow::Jump { .. } | ControlFlow::SimtLoop { .. } => {
            if cfg.wild_targets.iter().any(|&(pc, _)| pc + 4 == block.end) {
                ExitKind::Unknown
            } else {
                ExitKind::Internal
            }
        }
        ControlFlow::Next => ExitKind::Internal,
    }
}

/// Computes *observable* lane liveness: a halt exposes the whole final
/// register state, so every lane is live at it. This is the conservative
/// view the dead-write lint needs — a write is flagged only when it is
/// overwritten on **every** continuation before anything (including the
/// final state) can see it.
pub fn liveness(cfg: &Cfg) -> Liveness {
    liveness_with(cfg, LaneSet::ALL)
}

/// Computes *traffic* lane liveness: a halt reads nothing, so a lane is
/// live only between a write (or the entry) and an actual read. This is
/// the view the lane-occupancy and segment-buffer estimates use — it
/// counts lanes that must physically flow through the PE array.
pub fn traffic_liveness(cfg: &Cfg) -> Liveness {
    liveness_with(cfg, LaneSet::EMPTY)
}

fn liveness_with(cfg: &Cfg, halt_out: LaneSet) -> Liveness {
    let n = cfg.blocks.len();
    // Upward-exposed uses and defs per block.
    let mut block_use = vec![LaneSet::EMPTY; n];
    let mut block_def = vec![LaneSet::EMPTY; n];
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut used = LaneSet::EMPTY;
        let mut defined = LaneSet::EMPTY;
        for (_, inst) in &block.insts {
            used = used.union(uses_of(inst).minus(defined));
            if let Some(d) = def_of(inst) {
                defined.insert(d);
            }
        }
        block_use[b] = used;
        block_def[b] = defined;
    }

    let mut live_in = vec![LaneSet::EMPTY; n];
    let mut live_out = vec![LaneSet::EMPTY; n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = match exit_kind(cfg, b) {
                ExitKind::Internal => LaneSet::EMPTY,
                ExitKind::Halt => halt_out,
                ExitKind::Unknown => LaneSet::ALL,
            };
            for &s in &cfg.blocks[b].succs {
                out = out.union(live_in[s]);
            }
            let inn = block_use[b].union(out.minus(block_def[b]));
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

impl Liveness {
    /// Walks block `b` backward and reports, for each instruction, the
    /// lanes live immediately *after* it (in address order).
    pub fn live_after_each(&self, cfg: &Cfg, b: usize) -> Vec<LaneSet> {
        let block = &cfg.blocks[b];
        let mut after = vec![LaneSet::EMPTY; block.insts.len()];
        let mut live = self.live_out[b];
        for (i, (_, inst)) in block.insts.iter().enumerate().rev() {
            after[i] = live;
            if let Some(d) = def_of(inst) {
                live.remove(d);
            }
            live = live.union(uses_of(inst));
        }
        after
    }

    /// The maximum number of simultaneously-live lanes at any program
    /// point in any reachable block.
    pub fn max_live(&self, cfg: &Cfg) -> usize {
        let mut max = 0;
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !block.reachable {
                continue;
            }
            max = max.max(self.live_in[b].len());
            for set in self.live_after_each(cfg, b) {
                max = max.max(set.len());
            }
        }
        max
    }
}

/// A use of a lane that some path reaches before any write to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseBeforeDef {
    /// Address of the reading instruction.
    pub pc: u32,
    /// The lane read while possibly uninitialized.
    pub lane: ArchReg,
}

/// Forward maybe-uninitialized analysis: finds reads that some direct path
/// from the entry reaches before any write. Lanes in `initialized` (the
/// ABI set) are never reported. Blocks reachable only through indirect
/// jumps are not analyzed (their entry state is unknowable).
pub fn use_before_def(cfg: &Cfg, initialized: LaneSet) -> Vec<UseBeforeDef> {
    let n = cfg.blocks.len();
    // maybe_undef[b]: lanes possibly uninitialized at block entry.
    let mut maybe_undef = vec![LaneSet::EMPTY; n];
    let mut visited = vec![false; n];
    maybe_undef[cfg.entry] = LaneSet::ALL.minus(initialized);
    visited[cfg.entry] = true;

    let transfer = |b: usize, mut undef: LaneSet| -> LaneSet {
        for (_, inst) in &cfg.blocks[b].insts {
            if let Some(d) = def_of(inst) {
                undef.remove(d);
            }
        }
        undef
    };

    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if !visited[b] {
                continue;
            }
            let out = transfer(b, maybe_undef[b]);
            for &s in &cfg.blocks[b].succs {
                let merged = maybe_undef[s].union(out);
                if !visited[s] || merged != maybe_undef[s] {
                    visited[s] = true;
                    maybe_undef[s] = merged;
                    changed = true;
                }
            }
        }
    }

    let mut findings = Vec::new();
    for b in 0..n {
        if !visited[b] {
            continue;
        }
        let mut undef = maybe_undef[b];
        for (pc, inst) in &cfg.blocks[b].insts {
            for lane in uses_of(inst).iter() {
                if undef.contains(lane) {
                    findings.push(UseBeforeDef { pc: *pc, lane });
                }
            }
            if let Some(d) = def_of(inst) {
                undef.remove(d);
            }
        }
    }
    findings.sort_by_key(|f| (f.pc, f.lane.index()));
    findings.dedup();
    findings
}
