//! Static performance model: dataflow critical paths, loop recurrence
//! bounds, and IPC upper bounds.
//!
//! The model mirrors how a DiAG ring executes a resident loop: every
//! instruction is pre-assigned to a PE, operands flow through register
//! lanes, and the only fundamental rate limits are (a) loop-carried
//! register recurrences and (b) retirement bandwidth (`commit_width` per
//! ring). Everything else — cache misses, line loads, control penalties —
//! only slows execution further, so the bounds computed here *dominate*
//! the simulator's measured IPC by construction. The cross-check is
//! enforced by an integration test over every bundled workload.
//!
//! Soundness of the recurrence bound is the delicate part. For a lane `r`
//! we count only *distance-1 self-circuits*: the longest latency chain
//! from an upward-exposed (loop-carried) use of `r` to a write of `r`,
//! restricted to blocks that execute on **every** iteration (blocks
//! dominating all back-edge sources) and to chains through lanes whose
//! in-loop writes all live in those guaranteed blocks. Multi-lane circuits
//! and conditionally-executed writes are deliberately ignored — dropping a
//! constraint can only *loosen* an upper bound, never break it.

use crate::cfg::{Cfg, NaturalLoop};
use crate::dataflow::{def_of, uses_of, LaneSet};
use diag_core::DiagConfig;
use diag_isa::{ArchReg, Inst, NUM_LANES};

/// Static facts about one natural loop.
#[derive(Debug, Clone)]
pub struct LoopBound {
    /// Address of the loop header's first instruction.
    pub head: u32,
    /// Total instructions in the loop body (including conditional blocks
    /// and nested loops).
    pub body_insts: usize,
    /// Instructions guaranteed to execute on every iteration.
    pub guaranteed_insts: usize,
    /// Distinct I-lines the body spans (line size from the config).
    pub lines: usize,
    /// Whether the body fits in one ring's resident-line capacity, making
    /// backward-branch datapath reuse possible (§4.3.2).
    pub reuse_eligible: bool,
    /// Longest single-iteration dependence chain in cycles (all carried
    /// inputs available at time 0).
    pub critical_path: u64,
    /// Initiation-interval lower bound from loop-carried register
    /// recurrences (≥ 1).
    pub recurrence_ii: u64,
    /// The lane whose self-circuit sets `recurrence_ii`, if any.
    pub recurrence_lane: Option<ArchReg>,
    /// Upper bound on sustainable IPC while iterating this loop on one
    /// ring: `body_insts / max(recurrence_ii, guaranteed_insts /
    /// commit_width)`, capped at `commit_width`.
    pub ipc_bound: f64,
}

/// Program-level performance bounds.
#[derive(Debug, Clone)]
pub struct PerfBounds {
    /// Per-loop facts, in header address order.
    pub loops: Vec<LoopBound>,
    /// Sound whole-program IPC upper bound: retirement bandwidth across
    /// the rings the thread count activates.
    pub ipc_bound: f64,
    /// Steady-state bound: the largest per-loop bound (scaled by ring
    /// count). Meaningful when execution time is dominated by loops —
    /// `None` for loop-free programs.
    pub steady_state_ipc_bound: Option<f64>,
}

/// Computes the performance bounds for `cfg` under `config` / `threads`.
pub fn perf_bounds(cfg: &Cfg, config: &DiagConfig, threads: usize) -> PerfBounds {
    let rings = config.rings_for(threads.max(1)) as f64;
    let commit_width = config.commit_width as f64;
    let idom = cfg.dominators();
    let loops = cfg
        .natural_loops()
        .into_iter()
        .map(|l| loop_bound(cfg, &idom, &l, config, threads))
        .collect::<Vec<_>>();
    let steady = loops
        .iter()
        .map(|l| l.ipc_bound * rings)
        .max_by(|a, b| a.partial_cmp(b).expect("finite"))
        .map(|b| b.min(commit_width * rings));
    PerfBounds {
        ipc_bound: commit_width * rings,
        steady_state_ipc_bound: steady,
        loops,
    }
}

fn loop_bound(
    cfg: &Cfg,
    idom: &[Option<usize>],
    l: &NaturalLoop,
    config: &DiagConfig,
    threads: usize,
) -> LoopBound {
    let body_insts: usize = l.body.iter().map(|&b| cfg.blocks[b].len()).sum();

    // Distinct I-lines the body occupies.
    let line_bytes = config.line_bytes();
    let mut lines: Vec<u32> = l
        .body
        .iter()
        .flat_map(|&b| cfg.blocks[b].insts.iter().map(|&(pc, _)| pc / line_bytes))
        .collect();
    lines.sort_unstable();
    lines.dedup();
    let line_count = lines.len();
    let reuse_eligible = line_count <= config.reuse_line_capacity(threads.max(1));

    // Blocks that execute on every trip around every back edge.
    let mut guaranteed: Vec<usize> = l
        .body
        .iter()
        .copied()
        .filter(|&b| l.back_edges.iter().all(|&t| Cfg::dominates(idom, b, t)))
        .collect();
    // Guaranteed blocks form a chain in the dominator tree; dominance depth
    // orders them by execution order within an iteration.
    guaranteed.sort_by_key(|&b| dom_depth(idom, b));
    let seq: Vec<(u32, Inst)> = guaranteed
        .iter()
        .flat_map(|&b| cfg.blocks[b].insts.iter().copied())
        .collect();
    let guaranteed_insts = seq.len();

    // Lanes with writes in conditionally-executed body blocks: chains
    // through them are unreliable in the linearized sequence, so they
    // neither carry recurrences nor extend chains.
    let mut tainted = LaneSet::EMPTY;
    for &b in &l.body {
        if guaranteed.contains(&b) {
            continue;
        }
        for (_, inst) in &cfg.blocks[b].insts {
            if let Some(d) = def_of(inst) {
                tainted.insert(d);
            }
        }
    }

    // Loop-carried lanes: upward-exposed uses in the sequence that the
    // sequence also writes.
    let mut written = LaneSet::EMPTY;
    let mut carried = LaneSet::EMPTY;
    for (_, inst) in &seq {
        for lane in uses_of(inst).iter() {
            if !written.contains(lane) {
                carried.insert(lane);
            }
        }
        if let Some(d) = def_of(inst) {
            written.insert(d);
        }
    }
    carried = carried.minus(tainted);
    let mut carried_and_written = LaneSet::EMPTY;
    for lane in carried.iter() {
        if written.contains(lane) {
            carried_and_written.insert(lane);
        }
    }

    // Critical path of one iteration (carried inputs at time 0): longest
    // latency chain through the guaranteed sequence.
    let critical_path = {
        let mut finish = vec![0u64; seq.len()];
        let mut last_def: [Option<usize>; NUM_LANES] = [None; NUM_LANES];
        let mut max = 0u64;
        for (i, (_, inst)) in seq.iter().enumerate() {
            let mut start = 0u64;
            for lane in uses_of(inst).iter() {
                if let Some(j) = last_def[lane.index()] {
                    start = start.max(finish[j]);
                }
            }
            finish[i] = start + u64::from(inst.exec_latency());
            max = max.max(finish[i]);
            if let Some(d) = def_of(inst) {
                last_def[d.index()] = Some(i);
            }
        }
        max
    };

    // Recurrence II: per carried lane r, the longest latency chain from a
    // carried use of r to the *final* write of r in the sequence — only
    // the last write's value reaches the next iteration, so a chain ending
    // at an overwritten intermediate def does not close a circuit.
    let mut recurrence_ii = 1u64;
    let mut recurrence_lane = None;
    for r in carried_and_written.iter() {
        let mut chain: Vec<Option<u64>> = vec![None; seq.len()];
        let mut last_def: [Option<usize>; NUM_LANES] = [None; NUM_LANES];
        for (i, (_, inst)) in seq.iter().enumerate() {
            let mut base: Option<u64> = None;
            for lane in uses_of(inst).iter() {
                if lane == r && last_def[r.index()].is_none() {
                    // The carried use itself anchors the chain.
                    base = Some(base.unwrap_or(0));
                } else if !tainted.contains(lane) {
                    if let Some(j) = last_def[lane.index()] {
                        if let Some(c) = chain[j] {
                            base = Some(base.map_or(c, |b| b.max(c)));
                        }
                    }
                }
            }
            chain[i] = base.map(|b| b + u64::from(inst.exec_latency()));
            if let Some(d) = def_of(inst) {
                last_def[d.index()] = Some(i);
            }
        }
        let closing = last_def[r.index()].and_then(|i| chain[i]);
        if let Some(ii) = closing {
            if ii > recurrence_ii {
                recurrence_ii = ii;
                recurrence_lane = Some(r);
            }
        }
    }

    // One iteration takes at least the recurrence II and at least the
    // cycles needed to retire the guaranteed instructions.
    let commit_width = config.commit_width.max(1);
    let retire_floor = guaranteed_insts.div_ceil(commit_width) as u64;
    let iteration_floor = recurrence_ii.max(retire_floor).max(1);
    let ipc_bound = (body_insts as f64 / iteration_floor as f64).min(commit_width as f64);

    LoopBound {
        head: cfg.blocks[l.head].start,
        body_insts,
        guaranteed_insts,
        lines: line_count,
        reuse_eligible,
        critical_path,
        recurrence_ii,
        recurrence_lane,
        ipc_bound,
    }
}

fn dom_depth(idom: &[Option<usize>], mut b: usize) -> usize {
    let mut depth = 0;
    while let Some(p) = idom[b] {
        if p == b {
            break;
        }
        depth += 1;
        b = p;
    }
    depth
}
