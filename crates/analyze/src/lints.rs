//! The lint passes: each walks the CFG/dataflow results and emits
//! [`Diagnostic`]s.

use crate::cfg::Cfg;
use crate::dataflow::{self, def_of, uses_of, LaneSet, Liveness};
use crate::diagnostics::{Diagnostic, Lint};
use crate::perf::PerfBounds;
use diag_asm::Program;
use diag_core::DiagConfig;
use diag_isa::{ControlFlow, Inst};

/// Disassembly context around `pc` for a diagnostic.
fn ctx(program: &Program, pc: u32) -> Vec<String> {
    program.disasm_context(pc, 2, 2)
}

/// Runs every lint pass and returns the findings sorted by address.
pub fn run_lints(
    program: &Program,
    cfg: &Cfg,
    liveness: &Liveness,
    perf: &PerfBounds,
    config: &DiagConfig,
    threads: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_illegal(program, cfg, &mut out);
    lint_wild_targets(program, cfg, &mut out);
    lint_missing_halt(program, cfg, &mut out);
    lint_use_before_def(program, cfg, &mut out);
    lint_dead_writes(program, cfg, liveness, &mut out);
    lint_unreachable(program, cfg, &mut out);
    lint_misaligned(program, cfg, &mut out);
    lint_loop_capacity(program, perf, config, threads, &mut out);
    lint_simt_regions(program, cfg, &mut out);
    out.sort_by_key(|d| (d.pc_range.0, d.lint.id()));
    out
}

fn lint_illegal(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for &(pc, word) in &cfg.illegal {
        out.push(Diagnostic::at(
            Lint::IllegalInst,
            pc,
            format!("word {word:#010x} does not decode to any RV32IMF(+SIMT) instruction"),
            ctx(program, pc),
        ));
    }
}

fn lint_wild_targets(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for &(pc, target) in &cfg.wild_targets {
        out.push(Diagnostic::at(
            Lint::WildBranchTarget,
            pc,
            format!(
                "control transfer at {} targets {target:#x}, outside (or misaligned within) \
                 .text [{:#x}, {:#x})",
                program.describe_addr(pc),
                program.text_base(),
                program.text_end()
            ),
            ctx(program, pc),
        ));
    }
}

fn lint_missing_halt(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for block in &cfg.blocks {
        if block.reachable && block.falls_off_text {
            let last = block.end - 4;
            out.push(Diagnostic::at(
                Lint::MissingHalt,
                last,
                format!(
                    "execution can fall past the end of .text after {} without reaching a halt",
                    program.describe_addr(last)
                ),
                ctx(program, last),
            ));
        }
    }
}

fn lint_use_before_def(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for f in dataflow::use_before_def(cfg, dataflow::abi_initialized()) {
        out.push(Diagnostic::at(
            Lint::UseBeforeDef,
            f.pc,
            format!(
                "{} reads `{}` which no instruction on some path from the entry has written \
                 (machines zero-initialize it, but the value is meaningless)",
                program.describe_addr(f.pc),
                f.lane
            ),
            ctx(program, f.pc),
        ));
    }
}

fn lint_dead_writes(program: &Program, cfg: &Cfg, liveness: &Liveness, out: &mut Vec<Diagnostic>) {
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !block.reachable {
            continue;
        }
        let after = liveness.live_after_each(cfg, b);
        for (i, (pc, inst)) in block.insts.iter().enumerate() {
            // The simt_e write of rc is consumed by the region hardware
            // itself; never flag it.
            if matches!(inst, Inst::SimtE { .. }) {
                continue;
            }
            if let Some(d) = def_of(inst) {
                if !after[i].contains(d) {
                    out.push(Diagnostic::at(
                        Lint::DeadLaneWrite,
                        *pc,
                        format!(
                            "write to `{d}` at {} is overwritten on every path before any read \
                             — the lane is driven for nothing",
                            program.describe_addr(*pc)
                        ),
                        ctx(program, *pc),
                    ));
                }
            }
        }
    }
}

fn lint_unreachable(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    // With indirect jumps present, any block might be a jalr target;
    // stay silent rather than guess.
    if cfg.has_indirect {
        return;
    }
    for block in &cfg.blocks {
        if !block.reachable {
            out.push(Diagnostic::spanning(
                Lint::UnreachableBlock,
                block.start,
                block.end,
                format!(
                    "block {} ({} instructions) is unreachable from the entry",
                    program.describe_addr(block.start),
                    block.len()
                ),
            ));
        }
    }
}

fn lint_misaligned(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for block in &cfg.blocks {
        for (pc, inst) in &block.insts {
            let Some(size) = inst.mem_size() else {
                continue;
            };
            if size == 1 {
                continue;
            }
            let offset = match *inst {
                Inst::Load { offset, .. }
                | Inst::Store { offset, .. }
                | Inst::Flw { offset, .. }
                | Inst::Fsw { offset, .. } => offset,
                _ => continue,
            };
            if offset.rem_euclid(size as i32) != 0 {
                out.push(Diagnostic::at(
                    Lint::MisalignedMem,
                    *pc,
                    format!(
                        "{size}-byte access at {} uses offset {offset}, which faults whenever \
                         the base register is {size}-byte aligned",
                        program.describe_addr(*pc)
                    ),
                    ctx(program, *pc),
                ));
            }
        }
    }
}

fn lint_loop_capacity(
    program: &Program,
    perf: &PerfBounds,
    config: &DiagConfig,
    threads: usize,
    out: &mut Vec<Diagnostic>,
) {
    let capacity = config.reuse_line_capacity(threads.max(1));
    for l in &perf.loops {
        if !l.reuse_eligible {
            out.push(Diagnostic::at(
                Lint::LoopExceedsCapacity,
                l.head,
                format!(
                    "loop at {} spans {} I-lines but one ring holds {capacity}; backward \
                     branches reload lines instead of reusing the resident datapath (§4.3.2)",
                    program.describe_addr(l.head),
                    l.lines
                ),
                ctx(program, l.head),
            ));
        }
    }
}

fn lint_simt_regions(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for block in &cfg.blocks {
        for (pc, inst) in &block.insts {
            let Inst::SimtE { rc, l_offset, .. } = *inst else {
                continue;
            };
            let start = pc.wrapping_add(l_offset as u32);
            match program.decode_at(start) {
                Some(Inst::SimtS { rc: s_rc, .. }) if s_rc == rc => {
                    lint_simt_body(program, start, *pc, rc, out);
                }
                Some(Inst::SimtS { rc: s_rc, .. }) => {
                    out.push(Diagnostic::at(
                        Lint::SimtMalformedRegion,
                        *pc,
                        format!(
                            "simt_e at {} controls `{rc}` but the simt_s at {} controls \
                             `{s_rc}` — the region will fault at runtime",
                            program.describe_addr(*pc),
                            program.describe_addr(start)
                        ),
                        ctx(program, *pc),
                    ));
                }
                other => {
                    out.push(Diagnostic::at(
                        Lint::SimtMalformedRegion,
                        *pc,
                        format!(
                            "simt_e at {} loops back to {} which is {} — not the paired simt_s",
                            program.describe_addr(*pc),
                            program.describe_addr(start),
                            match other {
                                Some(i) => format!("`{i}`"),
                                None => "not a decodable instruction".to_string(),
                            }
                        ),
                        ctx(program, *pc),
                    ));
                }
            }
        }
    }
}

/// Checks the straight-line body of a well-paired SIMT region
/// `(start, end)` for patterns that break instance pipelining.
fn lint_simt_body(
    program: &Program,
    start: u32,
    end: u32,
    rc: diag_isa::Reg,
    out: &mut Vec<Diagnostic>,
) {
    let rc_lane: diag_isa::ArchReg = rc.into();
    let mut written = LaneSet::EMPTY;
    let mut carried = LaneSet::EMPTY;
    let mut region_writes = LaneSet::EMPTY;
    // First pass: every lane the region writes.
    let mut at = start + 4;
    while at < end {
        if let Some(inst) = program.decode_at(at) {
            if let Some(d) = def_of(&inst) {
                region_writes.insert(d);
            }
        }
        at += 4;
    }
    let mut at = start + 4;
    while at < end {
        let Some(inst) = program.decode_at(at) else {
            at += 4;
            continue;
        };
        match inst.control_flow() {
            ControlFlow::Next => {}
            ControlFlow::Branch { offset } | ControlFlow::Jump { offset, .. } if offset < 0 => {
                out.push(Diagnostic::at(
                    Lint::SimtUnsafeControl,
                    at,
                    format!(
                        "backward branch at {} inside the SIMT region [{},{}] — pipelined \
                         instances cannot iterate independently (§5.4)",
                        program.describe_addr(at),
                        program.describe_addr(start),
                        program.describe_addr(end)
                    ),
                    ctx(program, at),
                ));
            }
            ControlFlow::Branch { .. } | ControlFlow::Jump { .. } => {}
            ControlFlow::Indirect { .. }
            | ControlFlow::Halt
            | ControlFlow::Trap
            | ControlFlow::SimtLoop { .. } => {
                out.push(Diagnostic::at(
                    Lint::SimtUnsafeControl,
                    at,
                    format!(
                        "`{inst}` at {} inside the SIMT region [{},{}] cannot be \
                         thread-pipelined",
                        program.describe_addr(at),
                        program.describe_addr(start),
                        program.describe_addr(end)
                    ),
                    ctx(program, at),
                ));
            }
        }
        // A read of a lane the region writes but has not yet written this
        // instance depends on the *previous* instance's value — a carried
        // dependence the pipelined instances would violate.
        for lane in uses_of(&inst).iter() {
            if lane != rc_lane
                && region_writes.contains(lane)
                && !written.contains(lane)
                && !carried.contains(lane)
            {
                carried.insert(lane);
                out.push(Diagnostic::at(
                    Lint::SimtCarriedDep,
                    at,
                    format!(
                        "`{lane}` is read at {} before the region writes it: its value is \
                         carried from the previous SIMT instance, but instances execute \
                         pipelined, not sequentially (§5.4)",
                        program.describe_addr(at)
                    ),
                    ctx(program, at),
                ));
            }
        }
        if let Some(d) = def_of(&inst) {
            written.insert(d);
        }
        at += 4;
    }
}
