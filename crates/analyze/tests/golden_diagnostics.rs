//! Diagnostics are byte-deterministic: the pipeline caches rendered
//! reports on disk and serves them on warm runs, so a fresh analysis
//! must reproduce the cached bytes exactly — ordering included. The
//! emission order of lints is pinned by the `(pc, lint id)` sort; this
//! golden locks the whole rendered artifact so any accidental ordering
//! or formatting drift fails loudly instead of invalidating caches
//! silently.

use diag_analyze::{analyze, json_report, AnalyzeOptions};
use diag_core::DiagConfig;
use diag_workloads::{all, Params};

/// A kernel picked to trigger several diagnostics, including two
/// different findings at the *same* pc — the case the deterministic
/// sort exists for.
const KERNEL: &str = "
    add  s0, s0, t1
    addi t0, zero, 5
    addi t0, t0, 1
loop:
    addi t0, t0, -1
    bnez t0, loop
    sw   s0, 0(gp)
    ecall
    addi t5, zero, 9
";

/// Recorded once from a known-good run. A mismatch means the rendered
/// diagnostics changed — if intentional, re-record and call out the
/// cache invalidation in review.
const GOLDEN: &str = r#"{"name":"golden","text_insts":8,"blocks":4,"reachable_blocks":3,"has_indirect_jumps":false,"lanes":{"max_live":3,"entry_live":3,"peak_segment_slots":6},"loops":[{"head":4108,"body_insts":2,"guaranteed_insts":2,"lines":1,"reuse_eligible":true,"critical_path":2,"recurrence_ii":1,"ipc_bound":2.00}],"ipc_bound":32.00,"steady_state_ipc_bound":4.00,"diagnostics":[{"severity":"warning","lint":"use-before-def","pc_start":4096,"pc_end":4100,"message":"0x1000 reads `t1` which no instruction on some path from the entry has written (machines zero-initialize it, but the value is meaningless)","context":["> 0x01000: add s0, s0, t1","  0x01004: addi t0, zero, 5","  0x01008: addi t0, t0, 1"]},{"severity":"warning","lint":"use-before-def","pc_start":4096,"pc_end":4100,"message":"0x1000 reads `s0` which no instruction on some path from the entry has written (machines zero-initialize it, but the value is meaningless)","context":["> 0x01000: add s0, s0, t1","  0x01004: addi t0, zero, 5","  0x01008: addi t0, t0, 1"]},{"severity":"warning","lint":"use-before-def","pc_start":4116,"pc_end":4120,"message":"0x1014 <loop+0x8> reads `gp` which no instruction on some path from the entry has written (machines zero-initialize it, but the value is meaningless)","context":["  0x0100c: addi t0, t0, -1","  0x01010: bne t0, zero, -4","> 0x01014: sw s0, 0(gp)","  0x01018: ecall","  0x0101c: addi t5, zero, 9"]},{"severity":"info","lint":"unreachable-block","pc_start":4124,"pc_end":4128,"message":"block 0x101c <loop+0x10> (1 instructions) is unreachable from the entry","context":[]}]}"#;

fn opts(threads: usize) -> AnalyzeOptions {
    AnalyzeOptions {
        config: DiagConfig::f4c32(),
        threads,
    }
}

#[test]
fn diagnostics_render_matches_the_golden_bytes() {
    let program = diag_asm::assemble(KERNEL).expect("kernel assembles");
    let analysis = analyze(&program, &opts(2));
    let report = json_report("golden", &analysis);
    assert_eq!(
        report, GOLDEN,
        "rendered diagnostics drifted from the recorded golden"
    );
    // Two diagnostics share pc 0x1000: the (pc, lint id) sort must hold
    // across the whole list.
    let mut keys: Vec<(u32, &str)> = analysis
        .diagnostics
        .iter()
        .map(|d| (d.pc_range.0, d.lint.id()))
        .collect();
    let sorted = {
        let mut s = keys.clone();
        s.sort();
        s
    };
    assert_eq!(keys, sorted, "diagnostics are not (pc, lint id)-sorted");
    assert!(keys.len() >= 4, "golden kernel lost diagnostics");
    keys.dedup();
    assert!(keys.len() < sorted.len(), "expected a shared sort key");
}

#[test]
fn corpus_reports_are_byte_deterministic() {
    for spec in all() {
        let params = Params::tiny().with_threads(2);
        let built = spec.build(&params).expect("workloads assemble");
        let a = json_report(spec.name, &analyze(&built.program, &opts(2)));
        let b = json_report(spec.name, &analyze(&built.program, &opts(2)));
        assert_eq!(
            a, b,
            "{}: independent analyses rendered differently",
            spec.name
        );
    }
}
