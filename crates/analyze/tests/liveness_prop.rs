//! Property test: on random straight-line programs, the analyzer's
//! entry-liveness must agree exactly with ground truth obtained by
//! *executing* the program on the architectural interpreter and recording
//! which lanes each instruction reads before anything has written them.
//!
//! Straight-line programs make the dynamic trace equal the static
//! instruction order, so the comparison is an equality, not an inclusion:
//! any divergence — a lane the analyzer thinks is read from the
//! environment but the interpreter never touches, or vice versa — fails.
//!
//! Driven by the in-workspace [`SplitMix64`] generator; the `heavy`
//! feature scales the case count up for soak runs.

use diag_analyze::dataflow::{self, LaneSet};
use diag_analyze::{analyze, AnalyzeOptions, Cfg};
use diag_isa::prng::SplitMix64;
use diag_mem::MainMemory;
use diag_sim::interp::{arch_step, ArchState};

#[cfg(not(feature = "heavy"))]
const CASES: u64 = 64;
#[cfg(feature = "heavy")]
const CASES: u64 = 2_048;

/// Registers random programs read and clobber.
const POOL: [&str; 12] = [
    "t0", "t1", "t2", "t3", "t4", "t5", "s2", "s3", "s4", "s5", "s6", "s7",
];

const ALU: [&str; 10] = [
    "add", "sub", "xor", "or", "and", "sll", "srl", "sra", "slt", "mul",
];
const ALU_IMM: [&str; 4] = ["addi", "xori", "ori", "andi"];

fn reg(rng: &mut SplitMix64) -> &'static str {
    POOL[rng.gen_range(0usize..POOL.len())]
}

fn random_program(rng: &mut SplitMix64) -> String {
    let len = rng.gen_range(1u64..40) as usize;
    let mut src = String::new();
    for _ in 0..len {
        match rng.gen_range(0u32..8) {
            0..=2 => {
                let op = ALU[rng.gen_range(0usize..ALU.len())];
                src.push_str(&format!(
                    "    {op} {}, {}, {}\n",
                    reg(rng),
                    reg(rng),
                    reg(rng)
                ));
            }
            3..=4 => {
                let op = ALU_IMM[rng.gen_range(0usize..ALU_IMM.len())];
                let imm = rng.gen_range(0u64..2048) as i64 - 1024;
                src.push_str(&format!("    {op} {}, {}, {imm}\n", reg(rng), reg(rng)));
            }
            5 => {
                let imm = rng.gen_range(1u64..0xF_FFFF);
                src.push_str(&format!("    lui {}, {imm}\n", reg(rng)));
            }
            6 => {
                let off = rng.gen_range(0u64..16) * 4;
                src.push_str(&format!("    sw {}, {off}(zero)\n", reg(rng)));
            }
            _ => {
                let off = rng.gen_range(0u64..16) * 4;
                src.push_str(&format!("    lw {}, {off}(zero)\n", reg(rng)));
            }
        }
    }
    src.push_str("    ecall\n");
    src
}

/// Ground truth: execute on the interpreter and collect every lane an
/// instruction reads before any instruction has written it.
fn trace_reads_before_writes(program: &diag_asm::Program) -> LaneSet {
    let mut state = ArchState::new_thread(program.entry(), 0, 1);
    let mut mem = MainMemory::new();
    mem.load_program(program);
    let mut written = LaneSet::EMPTY;
    let mut env_reads = LaneSet::EMPTY;
    for _ in 0..10_000 {
        if state.halted {
            return env_reads;
        }
        let info = arch_step(&mut state, program, &mut mem, None).expect("straight-line runs");
        for lane in info.inst.sources() {
            if !lane.is_zero() && !written.contains(lane) {
                env_reads.insert(lane);
            }
        }
        if let Some((d, _)) = info.dest {
            written.insert(d);
        }
    }
    panic!("program did not halt");
}

#[test]
fn entry_liveness_matches_interpreter_trace() {
    let mut rng = SplitMix64::seed_from_u64(0xA11A_1132_D1A6_0003);
    for case in 0..CASES {
        let src = random_program(&mut rng);
        let program = diag_asm::assemble(&src)
            .unwrap_or_else(|e| panic!("case {case}: assembly failed: {e}\n{src}"));

        let expected = trace_reads_before_writes(&program);

        let cfg = Cfg::build(&program, None);
        let traffic = dataflow::traffic_liveness(&cfg);
        let live_in = traffic.live_in[cfg.entry];
        assert_eq!(
            live_in,
            expected,
            "case {case}: analyzer entry live-in {{{}}} != interpreter reads-before-write \
             {{{}}}\n{src}",
            live_in.names(),
            expected.names()
        );

        // The use-before-def lint must flag exactly the non-ABI subset.
        let expected_ubd = expected.minus(dataflow::abi_initialized());
        let mut flagged = LaneSet::EMPTY;
        for f in dataflow::use_before_def(&cfg, dataflow::abi_initialized()) {
            flagged.insert(f.lane);
        }
        assert_eq!(
            flagged,
            expected_ubd,
            "case {case}: use-before-def lanes {{{}}} != expected {{{}}}\n{src}",
            flagged.names(),
            expected_ubd.names()
        );

        // And the full analyze() pipeline must agree on the entry count.
        let analysis = analyze(&program, &AnalyzeOptions::default());
        assert_eq!(
            analysis.entry_live_lanes,
            expected.len(),
            "case {case}\n{src}"
        );
    }
}
