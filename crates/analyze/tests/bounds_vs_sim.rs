//! Cross-validation of the static performance model against the cycle
//! simulator: for every bundled workload (and a set of recurrence-bound
//! microkernels) the statically-derived IPC upper bounds must dominate the
//! simulator's measurements. A bound that a measurement exceeds is a
//! soundness bug in `diag_analyze::perf`, not a simulator regression.
//!
//! Two quantities are checked, matching what each bound actually promises:
//!
//! - `perf.ipc_bound` (retirement bandwidth) dominates **whole-program**
//!   IPC at any problem size.
//! - `perf.steady_state_ipc_bound` is an *asymptotic loop* property, so it
//!   is compared against the **marginal** IPC between two problem sizes —
//!   `Δinstructions / Δcycles` — which cancels prologue/epilogue work that
//!   retires at full bandwidth. (A whole-program comparison would be
//!   unsound by construction: a 5-instruction epilogue after a 3000-cycle
//!   loop nudges total IPC above the loop's sustainable rate.)

use diag_analyze::{analyze, AnalyzeOptions};
use diag_core::{Diag, DiagConfig};
use diag_sim::Machine;
use diag_workloads::{all, Params, Scale};

const EPS: f64 = 1e-9;

fn measure(program: &diag_asm::Program, threads: usize) -> (u64, u64) {
    let mut cpu = Diag::new(DiagConfig::f4c2());
    let stats = cpu.run(program, threads).expect("program runs");
    (stats.committed, stats.cycles)
}

/// Analyzes `big`, runs both programs, and checks that the program-wide
/// bound dominates whole-program IPC and the steady-state bound dominates
/// the marginal (small→big) IPC.
fn check_dominance(name: &str, small: &diag_asm::Program, big: &diag_asm::Program, threads: usize) {
    let opts = AnalyzeOptions {
        config: DiagConfig::f4c2(),
        threads,
    };
    let analysis = analyze(big, &opts);

    let (small_insts, small_cycles) = measure(small, threads);
    let (big_insts, big_cycles) = measure(big, threads);
    for (insts, cycles) in [(small_insts, small_cycles), (big_insts, big_cycles)] {
        let ipc = insts as f64 / cycles.max(1) as f64;
        assert!(
            ipc <= analysis.perf.ipc_bound + EPS,
            "{name} (threads={threads}): whole-program IPC {ipc:.4} exceeds program bound {:.4}",
            analysis.perf.ipc_bound
        );
    }

    let (steady, marginal) = match analysis.perf.steady_state_ipc_bound {
        Some(s) if big_cycles > small_cycles && big_insts > small_insts => (
            s,
            (big_insts - small_insts) as f64 / (big_cycles - small_cycles) as f64,
        ),
        _ => return,
    };
    assert!(
        marginal <= steady + EPS,
        "{name} (threads={threads}): marginal IPC {marginal:.4} exceeds steady-state \
         bound {steady:.4}"
    );
}

#[test]
fn workload_bounds_dominate_measured_ipc() {
    for spec in all() {
        for threads in [1, 4] {
            let tiny = Params::tiny().with_threads(threads);
            let small = Params {
                scale: Scale::Small,
                ..tiny
            };
            let b_tiny = spec.build(&tiny).expect("workloads assemble");
            let b_small = spec.build(&small).expect("workloads assemble");
            check_dominance(spec.name, &b_tiny.program, &b_small.program, threads);
        }
    }
}

#[test]
fn simt_workload_bounds_dominate_measured_ipc() {
    for spec in all().into_iter().filter(|s| s.simt_capable) {
        let tiny = Params::tiny().with_threads(4).with_simt(true);
        let small = Params {
            scale: Scale::Small,
            ..tiny
        };
        let b_tiny = spec.build(&tiny).expect("workloads assemble");
        let b_small = spec.build(&small).expect("workloads assemble");
        check_dominance(spec.name, &b_tiny.program, &b_small.program, 4);
    }
}

/// A loop whose carried `mul` chain (latency 3) caps throughput well below
/// the commit width — the bound is only sound if the recurrence analysis
/// closes the circuit on the lane's *final* in-loop write.
fn mul_chain(trips: i32) -> String {
    format!(
        "    addi t1, zero, 3\n\
         \x20   addi t0, zero, 1\n\
         \x20   li   t2, {trips}\n\
         loop:\n\
         \x20   mul  t0, t0, t1\n\
         \x20   addi t2, t2, -1\n\
         \x20   bnez t2, loop\n\
         \x20   sw   t0, 0(zero)\n\
         \x20   ecall\n"
    )
}

/// Same shape with an integer divide (latency 20): II is dominated by one
/// long-latency unit rather than chain length.
fn div_chain(trips: i32) -> String {
    format!(
        "    addi t1, zero, 1\n\
         \x20   lui  t0, 500000\n\
         \x20   li   t2, {trips}\n\
         loop:\n\
         \x20   div  t0, t0, t1\n\
         \x20   addi t2, t2, -1\n\
         \x20   bnez t2, loop\n\
         \x20   sw   t0, 0(zero)\n\
         \x20   ecall\n"
    )
}

#[test]
fn recurrence_microkernels_have_tight_nontrivial_bounds() {
    for (name, build, want_ii) in [
        ("mul-chain", mul_chain as fn(i32) -> String, 3u64),
        ("div-chain", div_chain as fn(i32) -> String, 20u64),
    ] {
        let small = diag_asm::assemble(&build(200)).expect("microkernel assembles");
        let big = diag_asm::assemble(&build(400)).expect("microkernel assembles");
        let config = DiagConfig::f4c2();
        let opts = AnalyzeOptions {
            config: config.clone(),
            threads: 1,
        };
        let analysis = analyze(&big, &opts);

        assert_eq!(analysis.perf.loops.len(), 1, "{name}: expected one loop");
        let l = &analysis.perf.loops[0];
        assert_eq!(l.recurrence_ii, want_ii, "{name}: recurrence II");
        let expected_bound = 3.0 / want_ii as f64;
        assert!(
            (l.ipc_bound - expected_bound).abs() < EPS,
            "{name}: loop IPC bound {} != {expected_bound}",
            l.ipc_bound
        );
        // The bound must be *nontrivial*: far below raw commit bandwidth.
        let steady = analysis.perf.steady_state_ipc_bound.expect("loop present");
        assert!(
            steady < config.commit_width as f64 / 2.0,
            "{name}: steady bound {steady} is not a meaningful constraint"
        );

        // The simulator must respect it: marginal IPC between the two trip
        // counts is exactly the loop's sustained rate.
        let (s_insts, s_cycles) = measure(&small, 1);
        let (b_insts, b_cycles) = measure(&big, 1);
        let marginal = (b_insts - s_insts) as f64 / (b_cycles - s_cycles) as f64;
        assert!(
            marginal <= steady + EPS,
            "{name}: marginal IPC {marginal:.4} exceeds steady bound {steady:.4}"
        );
        // Tightness: the measurement should land within 2x of the bound,
        // otherwise the dominance check is vacuous.
        assert!(
            marginal > steady / 2.0,
            "{name}: marginal IPC {marginal:.4} is not within 2x of bound {steady:.4}"
        );
        check_dominance(name, &small, &big, 1);
    }
}
