//! Every bundled workload must be analyzer-clean: no warning- or
//! error-severity findings on any configuration the harness runs. This is
//! the same gate `harness analyze` enforces in CI; keeping it as a unit
//! test makes the failure local to the kernel (or lint) that regressed.

use diag_analyze::{analyze, AnalyzeOptions, Severity};
use diag_core::DiagConfig;
use diag_workloads::{all, Params};

fn assert_clean(name: &str, program: &diag_asm::Program, opts: &AnalyzeOptions) {
    let analysis = analyze(program, opts);
    let noisy: Vec<String> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .map(|d| d.to_string())
        .collect();
    assert!(
        noisy.is_empty(),
        "{name} (threads={}): analyzer found {} warning+ diagnostics:\n{}",
        opts.threads,
        noisy.len(),
        noisy.join("\n")
    );
}

#[test]
fn workloads_have_no_warnings_f4c32() {
    for spec in all() {
        for threads in [1, 4] {
            let params = Params::tiny().with_threads(threads);
            let built = spec.build(&params).expect("workloads assemble");
            let opts = AnalyzeOptions {
                config: DiagConfig::f4c32(),
                threads,
            };
            assert_clean(spec.name, &built.program, &opts);
        }
    }
}

#[test]
fn workloads_have_no_warnings_f4c2() {
    for spec in all() {
        let params = Params::tiny();
        let built = spec.build(&params).expect("workloads assemble");
        let opts = AnalyzeOptions {
            config: DiagConfig::f4c2(),
            threads: 1,
        };
        assert_clean(spec.name, &built.program, &opts);
    }
}

#[test]
fn simt_variants_have_no_warnings() {
    for spec in all().into_iter().filter(|s| s.simt_capable) {
        let params = Params::tiny().with_threads(4).with_simt(true);
        let built = spec.build(&params).expect("workloads assemble");
        let opts = AnalyzeOptions {
            config: DiagConfig::f4c32(),
            threads: 4,
        };
        assert_clean(spec.name, &built.program, &opts);
    }
}
