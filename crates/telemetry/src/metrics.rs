//! Counters, gauges, and the scoped span timer.
//!
//! All handles are `Clone` and share their cell through an `Arc`, so a
//! service registers once at startup and hands cheap copies to worker
//! threads; recording is a single relaxed atomic op (two for the
//! gauge's high-water mark) with no lock anywhere on the path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::hist::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
    high: AtomicU64,
}

/// A level gauge that also tracks its all-time high-water mark.
///
/// `sub` saturates at zero rather than wrapping: a transient
/// over-decrement (e.g. a cancel racing a drain) must not turn the
/// gauge into a ~2^64 reading.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the level, bumping the high-water mark if needed.
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`, bumping the high-water mark.
    pub fn add(&self, n: u64) {
        let new = self.0.value.fetch_add(n, Ordering::Relaxed) + n;
        self.0.high.fetch_max(new, Ordering::Relaxed);
    }

    /// Raise the level by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lower the level by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        // fetch_update never fails with a total closure; discard the
        // Ok(previous) it returns.
        let _ = self
            .0
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Lower the level by one, saturating at zero.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// All-time high-water mark.
    pub fn high_water(&self) -> u64 {
        self.0.high.load(Ordering::Relaxed)
    }

    /// Read level and high-water mark together.
    pub fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            value: self.get(),
            high_water: self.high_water(),
        }
    }
}

/// Point-in-time view of a [`Gauge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Current level.
    pub value: u64,
    /// All-time high-water mark.
    pub high_water: u64,
}

/// A scoped host-time span.
///
/// The timer only consults the clock when telemetry is enabled, so a
/// disabled span costs two branches and no syscall-adjacent work —
/// cheap enough to leave in simulator-facing hot paths unconditionally.
/// Finishing is explicit (not `Drop`-based) so call sites choose the
/// destination histogram and can thread the elapsed time onward.
#[derive(Debug)]
pub struct SpanTimer {
    start: Option<Instant>,
}

impl SpanTimer {
    /// Start a span. When `enabled` is false the span is inert and
    /// [`SpanTimer::finish`] returns `None` without touching the clock.
    pub fn start(enabled: bool) -> SpanTimer {
        SpanTimer {
            start: enabled.then(Instant::now),
        }
    }

    /// A span that records nothing, for paths built without telemetry.
    pub fn disabled() -> SpanTimer {
        SpanTimer { start: None }
    }

    /// Nanoseconds elapsed so far, if the span is live.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| {
            u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX) // lint: allow(unwrap)
        })
    }

    /// End the span, recording the elapsed nanoseconds into `hist`.
    /// Returns the recorded value, or `None` if the span was inert.
    pub fn finish(self, hist: &Histogram) -> Option<u64> {
        let ns = self.elapsed_ns()?;
        hist.record(ns);
        Some(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43, "clones share the cell");
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::new();
        g.add(3);
        g.add(4);
        g.sub(5);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 7);
        g.set(1);
        assert_eq!(g.high_water(), 7, "set below high water keeps it");
    }

    #[test]
    fn gauge_sub_saturates_at_zero() {
        let g = Gauge::new();
        g.inc();
        g.sub(10);
        assert_eq!(g.get(), 0);
        g.dec();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let h = Histogram::new();
        let t = SpanTimer::start(false);
        assert!(t.elapsed_ns().is_none());
        assert_eq!(t.finish(&h), None);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn live_span_records_once() {
        let h = Histogram::new();
        let t = SpanTimer::start(true);
        let ns = t.finish(&h);
        assert!(ns.is_some());
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, ns.unwrap_or(0));
    }
}
