//! Snapshot expositions: Prometheus-style text and fixed-key-order
//! JSON.
//!
//! Neither format embeds a timestamp or any host-dependent field, so
//! two snapshots with equal values render to identical bytes — the
//! same determinism contract the rest of the workspace holds its
//! reports to, and what lets CI diff scraped metrics directly.
//!
//! The text format follows the Prometheus exposition conventions as
//! far as this repo needs them: one `# TYPE` comment per metric
//! family, `name{label="value"} value` samples, and histograms as
//! cumulative `_bucket{le="..."}` samples (only non-empty buckets,
//! plus a final `le="+Inf"`), `_sum`, and `_count`. Gauges add a
//! `_high_water` sample in the same family. The JSON format is a
//! single-line object with keys in a fixed order (schema, counters,
//! gauges, histograms; metric keys lexicographic), parseable by the
//! in-house `diag_trace::json` reader; histogram entries carry derived
//! p50/p90/p99 alongside sparse `[lower, upper, count]` buckets.

use std::fmt::Write as _;

use crate::registry::Snapshot;
use crate::SCHEMA;

/// Escape a string for embedding in a double-quoted JSON or label
/// value position.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Render the Prometheus-style text exposition.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let type_line = |out: &mut String, last: &mut String, name: &str, kind: &str| {
            if last != name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last.clear();
                last.push_str(name);
            }
        };

        for (key, value) in &self.counters {
            type_line(&mut out, &mut last_family, key.name(), "counter");
            let _ = writeln!(out, "{} {value}", key.render_with("", None));
        }
        last_family.clear();
        for (key, gauge) in &self.gauges {
            type_line(&mut out, &mut last_family, key.name(), "gauge");
            let _ = writeln!(out, "{} {}", key.render_with("", None), gauge.value);
            let _ = writeln!(
                out,
                "{} {}",
                key.render_with("_high_water", None),
                gauge.high_water
            );
        }
        last_family.clear();
        for (key, hist) in &self.histograms {
            type_line(&mut out, &mut last_family, key.name(), "histogram");
            let mut cum = 0u64;
            let mut saw_inf = false;
            for (_, upper, n) in hist.nonzero_buckets() {
                cum += n;
                let le = if upper == u64::MAX {
                    saw_inf = true;
                    "+Inf".to_string()
                } else {
                    upper.to_string()
                };
                let _ = writeln!(
                    out,
                    "{} {cum}",
                    key.render_with("_bucket", Some(("le", &le)))
                );
            }
            if !saw_inf {
                // Close the family with +Inf unless the populated
                // overflow bucket already rendered it.
                let _ = writeln!(
                    out,
                    "{} {}",
                    key.render_with("_bucket", Some(("le", "+Inf"))),
                    hist.count
                );
            }
            let _ = writeln!(out, "{} {}", key.render_with("_sum", None), hist.sum);
            let _ = writeln!(out, "{} {}", key.render_with("_count", None), hist.count);
        }
        out
    }

    /// Render the fixed-key-order JSON exposition (single line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"counters\":{");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", escape(&key.to_string()));
        }
        out.push_str("},\"gauges\":{");
        for (i, (key, gauge)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"value\":{},\"high_water\":{}}}",
                escape(&key.to_string()),
                gauge.value,
                gauge.high_water
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (key, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                escape(&key.to_string()),
                hist.count,
                hist.sum,
                hist.max,
                hist.mean(),
                hist.p50(),
                hist.p90(),
                hist.p99()
            );
            for (j, (lower, upper, n)) in hist.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                // The overflow bucket has no finite upper bound; encode
                // it as the exact tracked max so the JSON stays integer.
                let upper = if upper == u64::MAX { hist.max } else { upper };
                let _ = write!(out, "[{lower},{upper},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("req_total", &[("verb", "submit")]).add(7);
        r.counter("req_total", &[("verb", "status")]).add(2);
        let g = r.gauge("queue_depth", &[]);
        g.add(5);
        g.sub(3);
        let h = r.histogram("wait_ns", &[("scale", "tiny")]);
        for v in [0u64, 3, 9, 10, 900, 1 << 50] {
            h.record(v);
        }
        r
    }

    #[test]
    fn text_exposition_shape() {
        let text = sample_registry().snapshot().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0], "# TYPE req_total counter",
            "families lead with a TYPE comment"
        );
        assert!(lines.contains(&"req_total{verb=\"submit\"} 7"));
        assert!(lines.contains(&"queue_depth 2"));
        assert!(lines.contains(&"queue_depth_high_water 5"));
        assert!(lines.contains(&"wait_ns_bucket{scale=\"tiny\",le=\"0\"} 1"));
        assert!(lines.contains(&"wait_ns_bucket{scale=\"tiny\",le=\"+Inf\"} 6"));
        assert!(lines.contains(&"wait_ns_count{scale=\"tiny\"} 6"));
        // Cumulative counts never decrease.
        let mut prev = 0u64;
        for l in &lines {
            if let Some(rest) = l.strip_prefix("wait_ns_bucket{") {
                let n: u64 = rest
                    .rsplit(' ')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                assert!(n >= prev, "cumulative bucket counts regressed: {l}");
                prev = n;
            }
        }
    }

    #[test]
    fn json_exposition_is_fixed_order_and_parseable() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.starts_with("{\"schema\":\"diag-telemetry-v1\",\"counters\":{"));
        // Lexicographic metric order: status sorts before submit.
        let status = json.find("req_total{verb=\\\"status\\\"}").unwrap();
        let submit = json.find("req_total{verb=\\\"submit\\\"}").unwrap();
        assert!(status < submit);
        assert!(json.contains("\"high_water\":5"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"buckets\":[[0,0,1]"));
    }

    #[test]
    fn both_expositions_are_byte_deterministic() {
        // Two independently built registries with the same recorded
        // values must render identically, text and JSON.
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.to_json(), b.to_json());
        // And re-rendering the same snapshot is stable.
        assert_eq!(a.to_text(), a.to_text());
        assert_eq!(a.to_json(), a.to_json());
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let r = Registry::new();
        let s = r.snapshot();
        assert_eq!(s.to_text(), "");
        assert_eq!(
            s.to_json(),
            "{\"schema\":\"diag-telemetry-v1\",\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn empty_histogram_still_closes_with_inf() {
        let r = Registry::new();
        let _ = r.histogram("idle_ns", &[]);
        let text = r.snapshot().to_text();
        assert!(text.contains("idle_ns_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("idle_ns_count 0"));
    }
}
