//! The named metric directory and its deterministic snapshot.
//!
//! Registration is get-or-insert keyed by `(name, sorted labels)`:
//! two callers registering the same key receive handles over the same
//! cell, which is what lets `diag-load` connections and FairQueue
//! lanes register lazily without coordinating. The registry mutex is
//! only held during registration and snapshotting — never while
//! recording — and the maps are `BTreeMap`s so a snapshot always lists
//! metrics in the same lexicographic order, which in turn makes both
//! expositions byte-deterministic.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge, GaugeSnapshot, SpanTimer};

/// A metric identity: base name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so `{a,b}` and `{b,a}` are the
    /// same metric.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Base metric name (no labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sorted label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Render as `name` or `name{k="v",k2="v2"}` with the given extra
    /// label appended last (used for histogram `le` samples).
    pub(crate) fn render_with(&self, suffix: &str, extra: Option<(&str, &str)>) -> String {
        let mut out = String::with_capacity(self.name.len() + 16);
        out.push_str(&self.name);
        out.push_str(suffix);
        if self.labels.is_empty() && extra.is_none() {
            return out;
        }
        out.push('{');
        let mut first = true;
        for (k, v) in &self.labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&crate::expose::escape(v));
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&crate::expose::escape(v));
            out.push('"');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_with("", None))
    }
}

#[derive(Debug)]
struct RegistryInner {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<MetricKey, Counter>>,
    gauges: Mutex<BTreeMap<MetricKey, Gauge>>,
    histograms: Mutex<BTreeMap<MetricKey, Histogram>>,
}

/// A shareable directory of named metrics.
///
/// `Registry` is itself `Clone` (an `Arc` over the directory), so
/// subsystems that create metrics lazily — FairQueue lanes, load
/// generator connections — can hold their own copy.
#[derive(Debug, Clone)]
pub struct Registry(Arc<RegistryInner>);

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metric maps hold no invariants a panicking registrant could
    // break mid-flight; recover from poisoning instead of propagating.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Create an empty, enabled registry.
    pub fn new() -> Registry {
        Registry(Arc::new(RegistryInner {
            enabled: AtomicBool::new(true),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }))
    }

    /// Turn recording spans on or off. Pre-registered counter/gauge
    /// handles keep working either way; the flag gates the clock reads
    /// in [`Registry::span`].
    pub fn set_enabled(&self, on: bool) {
        self.0.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether span timers started through this registry are live.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Start a span timer gated on this registry's enabled flag.
    pub fn span(&self) -> SpanTimer {
        SpanTimer::start(self.is_enabled())
    }

    /// Get or create the counter for `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        lock(&self.0.counters).entry(key).or_default().clone()
    }

    /// Get or create the gauge for `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        lock(&self.0.gauges).entry(key).or_default().clone()
    }

    /// Get or create the histogram for `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        lock(&self.0.histograms).entry(key).or_default().clone()
    }

    /// Read every metric into a deterministic, lexicographically
    /// ordered snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock(&self.0.counters)
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: lock(&self.0.gauges)
                .iter()
                .map(|(k, g)| (k.clone(), g.snapshot()))
                .collect(),
            histograms: lock(&self.0.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time view of a whole [`Registry`], ordered by metric
/// key. Renders to text and JSON via [`Snapshot::to_text`] and
/// [`Snapshot::to_json`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counters, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauges with high-water marks, sorted by key.
    pub gauges: Vec<(MetricKey, GaugeSnapshot)>,
    /// Histograms, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_insert() {
        let r = Registry::new();
        let a = r.counter("hits", &[("stage", "run")]);
        let b = r.counter("hits", &[("stage", "run")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same key shares the cell");
        let other = r.counter("hits", &[("stage", "asm")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn label_order_does_not_split_metrics() {
        let r = Registry::new();
        let a = r.gauge("depth", &[("a", "1"), ("b", "2")]);
        let b = r.gauge("depth", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn snapshot_orders_lexicographically() {
        let r = Registry::new();
        r.counter("zeta", &[]).inc();
        r.counter("alpha", &[("k", "2")]).inc();
        r.counter("alpha", &[("k", "10")]).inc();
        let s = r.snapshot();
        let names: Vec<String> = s.counters.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "alpha{k=\"10\"}".to_string(),
                "alpha{k=\"2\"}".to_string(),
                "zeta".to_string()
            ]
        );
    }

    #[test]
    fn registry_clones_share_the_directory() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.counter("shared", &[]).add(5);
        assert_eq!(r.counter("shared", &[]).get(), 5);
        r2.set_enabled(false);
        assert!(!r.is_enabled());
        assert!(r.span().elapsed_ns().is_none());
    }

    #[test]
    fn enabled_registry_spans_are_live() {
        let r = Registry::new();
        assert!(r.is_enabled());
        let h = r.histogram("span_ns", &[]);
        assert!(r.span().finish(&h).is_some());
        assert_eq!(h.snapshot().count, 1);
    }
}
