//! `diag-telemetry`: host-side service telemetry for the DiAG
//! reproduction.
//!
//! The workspace already observes two of its three clocks exhaustively:
//! `diag-trace` records *simulated hardware cycles* (typed per-cycle
//! events), and `diag-profile` accounts *guest cycles* top-down (the
//! paper's line-load/station model). This crate is the third and final
//! layer: **host time and service behaviour** — where the wall-clock
//! nanoseconds go in `diag-serve`, the pipeline `Session`, and the
//! sweep workers, measured with the same discipline as the other two
//! layers (dependency-free, cheap when disabled, byte-deterministic
//! output given the same inputs).
//!
//! Three primitives, all lock-free to *record*:
//!
//! - [`Counter`] — a monotonic `AtomicU64` (requests served, rejects by
//!   code, cache builds).
//! - [`Gauge`] — a level with a high-water mark (queue depth, running
//!   jobs, per-client scheduler deficit).
//! - [`Histogram`] — a fixed-bucket log-scale latency histogram with
//!   exact bucket counts, a saturating overflow bucket, and derived
//!   p50/p90/p99 (request lifecycle latencies, per-run host ns/instr).
//!
//! Handles are `Clone` (an `Arc` around the cell), so the hot path
//! holds pre-registered handles and never touches the registry lock.
//! The [`Registry`] is the named directory over those cells: metrics
//! are registered once by `(name, sorted labels)`, and
//! [`Registry::snapshot`] reads everything in deterministic
//! (lexicographic) order. A [`Snapshot`] renders to two byte-stable
//! expositions — Prometheus-style text ([`Snapshot::to_text`]) and a
//! fixed-key-order JSON object ([`Snapshot::to_json`]); neither embeds
//! a timestamp, so two snapshots of identical values are identical
//! bytes.
//!
//! Host-time attribution uses [`SpanTimer`], a scoped timer that only
//! calls `Instant::now` when telemetry is enabled — the disabled path
//! is two branch instructions, which is what keeps the simulator-facing
//! hot paths (`harness bench`) unaffected when nobody is scraping.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expose;
pub mod hist;
pub mod metrics;
pub mod registry;

pub use hist::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use metrics::{Counter, Gauge, GaugeSnapshot, SpanTimer};
pub use registry::{MetricKey, Registry, Snapshot};

/// Schema identifier stamped into the JSON exposition.
pub const SCHEMA: &str = "diag-telemetry-v1";
