//! Fixed-bucket log-scale histograms with exact counts and derived
//! percentiles.
//!
//! The bucket layout is a log-linear grid (the HdrHistogram family's
//! trick, sized down to a fixed array): values `0..=3` get exact
//! buckets; every power-of-two octave above that is split into 4
//! linear sub-buckets, so a reported bucket bound is at most 25% above
//! the recorded value. Forty octaves cover `4..2^42` — comfortably
//! past an hour in nanoseconds — and everything larger lands in one
//! saturating overflow bucket whose percentile reports the exact
//! tracked maximum instead of a fabricated bound.
//!
//! Recording is four relaxed atomic ops (bucket, count, sum, max) and
//! never allocates or locks, so it is safe on the serve/sweep hot
//! paths. Percentiles are *derived at read time* from a
//! [`HistogramSnapshot`], and always return a deterministic bucket
//! upper bound — two snapshots with the same counts agree to the byte.

use std::array;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of linear sub-buckets per power-of-two octave (2 bits).
const SUB_BUCKETS: usize = 4;

/// Number of octaves before the overflow bucket. Octave `o` covers
/// `[4 << o, 8 << o)`; 40 octaves reach `2^42` ns ≈ 73 minutes.
const OCTAVES: usize = 40;

/// Index of the saturating overflow bucket (the last bucket).
const OVERFLOW: usize = SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// Total bucket count: 4 exact + 40 octaves × 4 sub-buckets + overflow.
pub const BUCKET_COUNT: usize = OVERFLOW + 1;

/// Map a value to its bucket index.
///
/// Values `0..=3` map to their own index; larger values map to
/// `4 + octave * 4 + sub` where `octave` positions the leading bit and
/// `sub` is the next two bits; values at or above `2^42` saturate into
/// the overflow bucket.
pub fn bucket_index(value: u64) -> usize {
    if value < 4 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize;
    let octave = msb - 2;
    if octave >= OCTAVES {
        return OVERFLOW;
    }
    let sub = ((value >> (msb - 2)) & 3) as usize;
    SUB_BUCKETS + octave * SUB_BUCKETS + sub
}

/// Inclusive upper bound of a bucket. The overflow bucket has no
/// finite bound and reports `u64::MAX`.
pub fn bucket_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    if index < SUB_BUCKETS {
        return index as u64;
    }
    if index >= OVERFLOW {
        return u64::MAX;
    }
    let i = index - SUB_BUCKETS;
    let octave = (i / SUB_BUCKETS) as u64;
    let sub = (i % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub + 1) * (1u64 << octave) - 1
}

/// Inclusive lower bound of a bucket.
pub(crate) fn bucket_lower(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    if index < SUB_BUCKETS {
        return index as u64;
    }
    if index >= OVERFLOW {
        // First value past the last finite bucket.
        return bucket_bound(OVERFLOW - 1) + 1;
    }
    let i = index - SUB_BUCKETS;
    let octave = (i / SUB_BUCKETS) as u64;
    let sub = (i % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) * (1u64 << octave)
}

/// Shared histogram state. All fields use relaxed atomics: the
/// histogram is a statistic, not a synchronization point, and the
/// snapshot path tolerates momentarily inconsistent count/sum pairs.
#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-scale histogram handle.
///
/// Cloning is cheap and shares the underlying cell, so the registry
/// and the recording site observe the same counts.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCell>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistCell {
            buckets: array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one value (typically nanoseconds). Four relaxed atomic
    /// ops; never locks or allocates.
    pub fn record(&self, value: u64) {
        let cell = &self.0;
        cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
        cell.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Read the current state into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cell = &self.0;
        HistogramSnapshot {
            buckets: cell
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: cell.count.load(Ordering::Relaxed),
            sum: cell.sum.load(Ordering::Relaxed),
            max: cell.max.load(Ordering::Relaxed),
        }
    }

    /// True if the two handles share the same cell.
    pub fn same_cell(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Owned, mergeable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, `BUCKET_COUNT` entries.
    pub buckets: Vec<u64>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Largest recorded value (exact, even for overflow-bucket values).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The value at or below which `pct` percent of samples fall,
    /// reported as the containing bucket's inclusive upper bound
    /// (exact tracked max for the overflow bucket). Returns 0 for an
    /// empty histogram. `pct` is clamped to `1..=100`.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.clamp(1, 100);
        // Ceiling rank: p50 of a single sample is that sample.
        let rank = (self.count * pct).div_ceil(100);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= OVERFLOW {
                    self.max
                } else {
                    bucket_bound(i)
                };
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Integer mean of recorded values; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another snapshot into this one (element-wise bucket add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower, upper, count)` triples in
    /// ascending order — the exposition's sparse view.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (bucket_lower(i), bucket_bound(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_four() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
            assert_eq!(bucket_lower(v as usize), v);
        }
    }

    #[test]
    fn first_octave_is_exact_too() {
        // Octave 0 has scale 1, so buckets 4..=7 are single-valued.
        for v in 4..8u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_bound(i), v);
        }
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        // Consecutive buckets must cover the u64 range with no gaps
        // and no overlaps up to the overflow bucket.
        for i in 1..BUCKET_COUNT {
            assert_eq!(
                bucket_lower(i),
                bucket_bound(i - 1) + 1,
                "gap/overlap between buckets {} and {}",
                i - 1,
                i
            );
        }
        // Every bound maps back into its own bucket.
        for i in 0..OVERFLOW {
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_bound(i)), i);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Reported bound is at most 25% above the true value.
        for &v in &[5u64, 9, 100, 1_000, 65_537, 1 << 30, (1 << 41) + 12345] {
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v);
            assert!(
                (bound - v) * 4 <= v,
                "bound {bound} too far above value {v}"
            );
        }
    }

    #[test]
    fn zero_samples_percentiles_are_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.nonzero_buckets().count(), 0);
    }

    #[test]
    fn single_sample_owns_every_percentile() {
        let h = Histogram::new();
        h.record(1_000);
        let s = h.snapshot();
        let bound = bucket_bound(bucket_index(1_000));
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 1_000);
        assert_eq!(s.max, 1_000);
        assert_eq!(s.percentile(1), bound);
        assert_eq!(s.p50(), bound);
        assert_eq!(s.p99(), bound);
        assert_eq!(s.percentile(100), bound);
    }

    #[test]
    fn boundary_values_split_buckets_exactly() {
        // 9 is the last value of its bucket and 10 the first of the
        // next (octave 1 sub-buckets are 2 wide: {8,9}, {10,11}, ...).
        let h = Histogram::new();
        h.record(9);
        h.record(10);
        let s = h.snapshot();
        let nz: Vec<_> = s.nonzero_buckets().collect();
        assert_eq!(nz, vec![(8, 9, 1), (10, 11, 1)]);
    }

    #[test]
    fn overflow_bucket_saturates_and_reports_exact_max() {
        let h = Histogram::new();
        let big = u64::MAX - 17;
        h.record(1 << 42); // first overflowing value
        h.record(big);
        let s = h.snapshot();
        assert_eq!(s.buckets[OVERFLOW], 2);
        assert_eq!(s.max, big);
        // Overflow percentiles report the tracked max, not a bound.
        assert_eq!(s.p99(), big);
        assert_eq!(s.percentile(100), big);
    }

    #[test]
    fn percentiles_match_sorted_rank_on_known_data() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 rank is the 50th value = 50; bucket bound may round up
        // by at most 25%.
        let p50 = s.p50();
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((99..=124).contains(&p99), "p99 = {p99}");
        assert_eq!(s.percentile(1), 1);
        assert_eq!(s.mean(), 50);
    }

    #[test]
    fn merge_is_element_wise_and_order_independent() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 17, 900] {
            a.record(v);
        }
        for v in [3u64, 1 << 50] {
            b.record(v);
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 5);
        assert_eq!(ab.sum, 3 + 17 + 900 + 3 + (1u64 << 50));
        assert_eq!(ab.max, 1 << 50);
        assert_eq!(ab.buckets[bucket_index(3)], 2);
        assert_eq!(ab.buckets[OVERFLOW], 1);
    }

    #[test]
    fn clones_share_the_cell() {
        let h = Histogram::new();
        let h2 = h.clone();
        h2.record(5);
        assert!(h.same_cell(&h2));
        assert_eq!(h.snapshot().count, 1);
    }
}
