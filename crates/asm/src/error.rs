//! Error type shared by the program builder and the text assembler.

use std::fmt;

/// Error produced while building or assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound to a position.
    UnboundLabel {
        /// Human-readable label description (name or index).
        label: String,
    },
    /// A label was bound twice.
    RebindLabel {
        /// Human-readable label description.
        label: String,
    },
    /// A branch or jump target is beyond the reach of its encoding.
    OffsetOutOfRange {
        /// The instruction's mnemonic.
        mnemonic: &'static str,
        /// The computed byte offset.
        offset: i64,
        /// Maximum magnitude the encoding supports.
        limit: i64,
    },
    /// A data symbol was defined twice.
    DuplicateSymbol {
        /// The symbol name.
        name: String,
    },
    /// A symbol was referenced but never defined.
    UndefinedSymbol {
        /// The symbol name.
        name: String,
    },
    /// An immediate does not fit its field.
    ImmediateOutOfRange {
        /// The instruction's mnemonic.
        mnemonic: &'static str,
        /// The immediate value.
        value: i64,
    },
    /// A control-transfer instruction targets an address outside the text
    /// segment, or one that is not instruction-aligned. Caught at build
    /// time so the mistake surfaces as an assembly error instead of a
    /// confusing runtime `PcOutOfRange` fault.
    TargetOutOfText {
        /// The instruction's mnemonic.
        mnemonic: &'static str,
        /// Address of the offending instruction.
        pc: u32,
        /// The computed target address.
        target: u32,
    },
    /// A parse error in assembler text.
    Parse {
        /// 1-based source line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => write!(f, "label `{label}` was never bound"),
            AsmError::RebindLabel { label } => write!(f, "label `{label}` bound twice"),
            AsmError::OffsetOutOfRange {
                mnemonic,
                offset,
                limit,
            } => {
                write!(
                    f,
                    "`{mnemonic}` offset {offset} exceeds encodable range (±{limit})"
                )
            }
            AsmError::DuplicateSymbol { name } => write!(f, "symbol `{name}` defined twice"),
            AsmError::UndefinedSymbol { name } => write!(f, "symbol `{name}` is not defined"),
            AsmError::ImmediateOutOfRange { mnemonic, value } => {
                write!(f, "immediate {value} out of range for `{mnemonic}`")
            }
            AsmError::TargetOutOfText {
                mnemonic,
                pc,
                target,
            } => {
                write!(
                    f,
                    "`{mnemonic}` at {pc:#x} targets {target:#x}, which is outside \
                     (or misaligned within) the text segment"
                )
            }
            AsmError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for AsmError {}
