//! A typed, label-aware program builder.
//!
//! [`ProgramBuilder`] is the primary way workloads in this workspace are
//! authored: kernels are emitted as Rust code rather than assembly text,
//! which gives compile-time register checking while still producing genuine
//! RV32IMF machine code that every machine model fetches and decodes.
//!
//! # Examples
//!
//! A loop summing `a0` integers starting at address `a1`:
//!
//! ```
//! use diag_asm::ProgramBuilder;
//! use diag_isa::regs::*;
//!
//! let mut b = ProgramBuilder::new();
//! let data = b.data_words("input", &[1, 2, 3, 4]);
//! b.li(A0, 4);
//! b.li(A1, data as i32);
//! b.li(A2, 0);
//! let loop_top = b.bind_new_label();
//! b.lw(T0, A1, 0);
//! b.add(A2, A2, T0);
//! b.addi(A1, A1, 4);
//! b.addi(A0, A0, -1);
//! b.bnez(A0, loop_top);
//! b.ecall();
//! let program = b.build()?;
//! # Ok::<(), diag_asm::AsmError>(())
//! ```

use std::collections::BTreeMap;

use diag_isa::{
    decode, encode, AluOp, BranchOp, ControlFlow, FReg, FmaOp, FpCmpOp, FpOp, FpToIntOp, Inst,
    IntToFpOp, LoadOp, Reg, StoreOp, INST_BYTES,
};

use crate::error::AsmError;
use crate::program::{Program, DATA_BASE, TEXT_BASE};

/// A forward- or backward-referenceable position in the text segment.
///
/// Create one with [`ProgramBuilder::new_label`], bind it to the current
/// position with [`ProgramBuilder::bind`], and use it as a branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone)]
enum Item {
    Fixed(Inst),
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        target: Label,
    },
    Jal {
        rd: Reg,
        target: Label,
    },
    La {
        rd: Reg,
        symbol: String,
    },
    SimtE {
        rc: Reg,
        r_end: Reg,
        target: Label,
    },
}

impl Item {
    /// Size of the item in instruction words (fixed at emission time).
    fn words(&self) -> u32 {
        match self {
            Item::La { .. } => 2,
            _ => 1,
        }
    }
}

/// Incrementally builds a [`Program`].
///
/// Text is emitted through instruction-named methods (`add`, `lw`, `bnez`,
/// …); data is placed with the `data_*` methods, which return the symbol's
/// absolute address. Labels provide branch targets in both directions.
/// [`build`](ProgramBuilder::build) resolves all references and encodes the
/// final image.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    items: Vec<Item>,
    /// Word position of each item (prefix sums of item sizes).
    positions: Vec<u32>,
    next_pos: u32,
    labels: Vec<Option<u32>>, // word position each label is bound to
    label_names: Vec<Option<String>>,
    data: Vec<u8>,
    symbols: BTreeMap<String, u32>,
}

macro_rules! op3 {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
                self.inst(Inst::Op { op: $op, rd, rs1, rs2 });
            }
        )*
    };
}

macro_rules! op_imm {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i32) {
                self.inst(Inst::OpImm { op: $op, rd, rs1, imm });
            }
        )*
    };
}

macro_rules! loads {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: Reg, base: Reg, offset: i32) {
                self.inst(Inst::Load { op: $op, rd, rs1: base, offset });
            }
        )*
    };
}

macro_rules! stores {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, src: Reg, base: Reg, offset: i32) {
                self.inst(Inst::Store { op: $op, rs1: base, rs2: src, offset });
            }
        )*
    };
}

macro_rules! branches {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rs1: Reg, rs2: Reg, target: Label) {
                self.push(Item::Branch { op: $op, rs1, rs2, target });
            }
        )*
    };
}

macro_rules! fp3 {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
                self.inst(Inst::FpOp { op: $op, rd, rs1, rs2 });
            }
        )*
    };
}

macro_rules! fp_fma {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
                self.inst(Inst::FpFma { op: $op, rd, rs1, rs2, rs3 });
            }
        )*
    };
}

macro_rules! fp_cmp {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
                self.inst(Inst::FpCmp { op: $op, rd, rs1, rs2 });
            }
        )*
    };
}

impl ProgramBuilder {
    /// Creates an empty builder with the default segment layout.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current text position in words (i.e. the index of the next emitted
    /// instruction, counting expanded pseudo-instructions).
    pub fn position(&self) -> u32 {
        self.next_pos
    }

    /// Address the next emitted instruction will occupy.
    pub fn current_address(&self) -> u32 {
        TEXT_BASE + self.next_pos * INST_BYTES
    }

    fn push(&mut self, item: Item) {
        self.positions.push(self.next_pos);
        self.next_pos += item.words();
        self.items.push(item);
    }

    /// Emits an already-decoded instruction verbatim.
    pub fn inst(&mut self, inst: Inst) {
        self.push(Item::Fixed(inst));
    }

    /// Creates a new, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        self.label_names.push(None);
        Label(self.labels.len() - 1)
    }

    /// Creates a new named label (the name appears in error messages).
    pub fn new_named_label(&mut self, name: &str) -> Label {
        let l = self.new_label();
        self.label_names[l.0] = Some(name.to_string());
        l
    }

    /// Binds `label` to the current position. Named labels also enter the
    /// program's symbol table, so diagnostics and listings can describe
    /// text addresses as `<name+offset>`.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound — binding twice is always a
    /// programming error in kernel-construction code.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {} bound twice",
            self.label_name(label)
        );
        self.labels[label.0] = Some(self.next_pos);
        if let Some(name) = self.label_names[label.0].clone() {
            self.symbols
                .insert(name, TEXT_BASE + self.next_pos * INST_BYTES);
        }
    }

    /// Binds `label` to an explicit word position (used by the assembler for
    /// numeric branch offsets).
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind_at(&mut self, label: Label, word_pos: u32) {
        assert!(
            self.labels[label.0].is_none(),
            "label {} bound twice",
            self.label_name(label)
        );
        self.labels[label.0] = Some(word_pos);
    }

    /// Whether `label` has been bound to a position.
    pub fn is_bound(&self, label: Label) -> bool {
        self.labels[label.0].is_some()
    }

    /// Creates a label and binds it to the current position in one step.
    pub fn bind_new_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    fn label_name(&self, label: Label) -> String {
        self.label_names[label.0]
            .clone()
            .unwrap_or_else(|| format!("L{}", label.0))
    }

    // ---- data segment -------------------------------------------------

    fn align_data(&mut self, align: usize) {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    fn define_symbol(&mut self, name: &str, addr: u32) -> u32 {
        self.symbols.insert(name.to_string(), addr);
        addr
    }

    /// Defines `name` as an alias for an arbitrary address (used by the
    /// assembler for stacked data labels). Last definition wins.
    pub fn define_data_symbol(&mut self, name: &str, addr: u32) -> u32 {
        self.define_symbol(name, addr)
    }

    /// Whether a data symbol with this name exists.
    pub fn has_symbol(&self, name: &str) -> bool {
        self.symbols.contains_key(name)
    }

    /// Places raw bytes in the data segment under `name`; returns the
    /// absolute address.
    pub fn data_bytes(&mut self, name: &str, bytes: &[u8]) -> u32 {
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        self.define_symbol(name, addr)
    }

    /// Places little-endian 32-bit words in the data segment.
    pub fn data_words(&mut self, name: &str, words: &[u32]) -> u32 {
        self.align_data(4);
        let addr = DATA_BASE + self.data.len() as u32;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        self.define_symbol(name, addr)
    }

    /// Places IEEE-754 single-precision values in the data segment.
    pub fn data_floats(&mut self, name: &str, values: &[f32]) -> u32 {
        self.align_data(4);
        let addr = DATA_BASE + self.data.len() as u32;
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.define_symbol(name, addr)
    }

    /// Reserves `len` zeroed bytes in the data segment.
    pub fn data_zeroed(&mut self, name: &str, len: usize) -> u32 {
        self.align_data(4);
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.resize(self.data.len() + len, 0);
        self.define_symbol(name, addr)
    }

    // ---- RV32I --------------------------------------------------------

    op3! {
        /// `add rd, rs1, rs2`
        add => AluOp::Add;
        /// `sub rd, rs1, rs2`
        sub => AluOp::Sub;
        /// `sll rd, rs1, rs2`
        sll => AluOp::Sll;
        /// `slt rd, rs1, rs2`
        slt => AluOp::Slt;
        /// `sltu rd, rs1, rs2`
        sltu => AluOp::Sltu;
        /// `xor rd, rs1, rs2`
        xor => AluOp::Xor;
        /// `srl rd, rs1, rs2`
        srl => AluOp::Srl;
        /// `sra rd, rs1, rs2`
        sra => AluOp::Sra;
        /// `or rd, rs1, rs2`
        or => AluOp::Or;
        /// `and rd, rs1, rs2`
        and => AluOp::And;
        /// `mul rd, rs1, rs2` (RV32M)
        mul => AluOp::Mul;
        /// `mulh rd, rs1, rs2` (RV32M)
        mulh => AluOp::Mulh;
        /// `mulhsu rd, rs1, rs2` (RV32M)
        mulhsu => AluOp::Mulhsu;
        /// `mulhu rd, rs1, rs2` (RV32M)
        mulhu => AluOp::Mulhu;
        /// `div rd, rs1, rs2` (RV32M)
        div => AluOp::Div;
        /// `divu rd, rs1, rs2` (RV32M)
        divu => AluOp::Divu;
        /// `rem rd, rs1, rs2` (RV32M)
        rem => AluOp::Rem;
        /// `remu rd, rs1, rs2` (RV32M)
        remu => AluOp::Remu;
    }

    op_imm! {
        /// `addi rd, rs1, imm`
        addi => AluOp::Add;
        /// `slti rd, rs1, imm`
        slti => AluOp::Slt;
        /// `sltiu rd, rs1, imm`
        sltiu => AluOp::Sltu;
        /// `xori rd, rs1, imm`
        xori => AluOp::Xor;
        /// `ori rd, rs1, imm`
        ori => AluOp::Or;
        /// `andi rd, rs1, imm`
        andi => AluOp::And;
        /// `slli rd, rs1, shamt`
        slli => AluOp::Sll;
        /// `srli rd, rs1, shamt`
        srli => AluOp::Srl;
        /// `srai rd, rs1, shamt`
        srai => AluOp::Sra;
    }

    loads! {
        /// `lw rd, offset(base)`
        lw => LoadOp::Lw;
        /// `lh rd, offset(base)`
        lh => LoadOp::Lh;
        /// `lb rd, offset(base)`
        lb => LoadOp::Lb;
        /// `lhu rd, offset(base)`
        lhu => LoadOp::Lhu;
        /// `lbu rd, offset(base)`
        lbu => LoadOp::Lbu;
    }

    stores! {
        /// `sw src, offset(base)`
        sw => StoreOp::Sw;
        /// `sh src, offset(base)`
        sh => StoreOp::Sh;
        /// `sb src, offset(base)`
        sb => StoreOp::Sb;
    }

    branches! {
        /// `beq rs1, rs2, target`
        beq => BranchOp::Beq;
        /// `bne rs1, rs2, target`
        bne => BranchOp::Bne;
        /// `blt rs1, rs2, target`
        blt => BranchOp::Blt;
        /// `bge rs1, rs2, target`
        bge => BranchOp::Bge;
        /// `bltu rs1, rs2, target`
        bltu => BranchOp::Bltu;
        /// `bgeu rs1, rs2, target`
        bgeu => BranchOp::Bgeu;
    }

    /// `lui rd, imm` where `imm` is the value placed in the upper 20 bits
    /// (pass the full 32-bit value with low 12 bits zero).
    pub fn lui(&mut self, rd: Reg, imm: i32) {
        self.inst(Inst::Lui { rd, imm });
    }

    /// `auipc rd, imm`.
    pub fn auipc(&mut self, rd: Reg, imm: i32) {
        self.inst(Inst::Auipc { rd, imm });
    }

    /// `jal rd, target`.
    pub fn jal(&mut self, rd: Reg, target: Label) {
        self.push(Item::Jal { rd, target });
    }

    /// `jalr rd, offset(rs1)`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) {
        self.inst(Inst::Jalr { rd, rs1, offset });
    }

    /// `ecall` — halts the current hardware thread in this workspace's
    /// bare-metal convention.
    pub fn ecall(&mut self) {
        self.inst(Inst::Ecall);
    }

    /// `ebreak`.
    pub fn ebreak(&mut self) {
        self.inst(Inst::Ebreak);
    }

    /// `fence`.
    pub fn fence(&mut self) {
        self.inst(Inst::Fence);
    }

    // ---- pseudo-instructions -------------------------------------------

    /// `nop`.
    pub fn nop(&mut self) {
        self.inst(Inst::NOP);
    }

    /// `li rd, value`: loads a 32-bit constant, expanding to `addi` or
    /// `lui`(+`addi`) as needed.
    pub fn li(&mut self, rd: Reg, value: i32) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, Reg::ZERO, value);
        } else {
            let hi = (value.wrapping_add(0x800) as u32) & 0xFFFF_F000;
            let lo = value.wrapping_sub(hi as i32);
            self.lui(rd, hi as i32);
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
        }
    }

    /// `la rd, symbol`: loads a data symbol's address (fixed two-word
    /// `lui`+`addi` expansion, resolved at build time).
    pub fn la(&mut self, rd: Reg, symbol: &str) {
        self.push(Item::La {
            rd,
            symbol: symbol.to_string(),
        });
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// `not rd, rs`.
    pub fn not(&mut self, rd: Reg, rs: Reg) {
        self.xori(rd, rs, -1);
    }

    /// `neg rd, rs`.
    pub fn neg(&mut self, rd: Reg, rs: Reg) {
        self.sub(rd, Reg::ZERO, rs);
    }

    /// `seqz rd, rs`: set if zero.
    pub fn seqz(&mut self, rd: Reg, rs: Reg) {
        self.sltiu(rd, rs, 1);
    }

    /// `snez rd, rs`: set if nonzero.
    pub fn snez(&mut self, rd: Reg, rs: Reg) {
        self.sltu(rd, Reg::ZERO, rs);
    }

    /// `j target`: unconditional jump.
    pub fn j(&mut self, target: Label) {
        self.jal(Reg::ZERO, target);
    }

    /// `call target`: call linking through `ra`.
    pub fn call(&mut self, target: Label) {
        self.jal(Reg::RA, target);
    }

    /// `ret`: return through `ra`.
    pub fn ret(&mut self) {
        self.jalr(Reg::ZERO, Reg::RA, 0);
    }

    /// `jr rs`: indirect jump.
    pub fn jr(&mut self, rs: Reg) {
        self.jalr(Reg::ZERO, rs, 0);
    }

    /// `beqz rs, target`.
    pub fn beqz(&mut self, rs: Reg, target: Label) {
        self.beq(rs, Reg::ZERO, target);
    }

    /// `bnez rs, target`.
    pub fn bnez(&mut self, rs: Reg, target: Label) {
        self.bne(rs, Reg::ZERO, target);
    }

    /// `blez rs, target` (`rs <= 0`).
    pub fn blez(&mut self, rs: Reg, target: Label) {
        self.bge(Reg::ZERO, rs, target);
    }

    /// `bgez rs, target` (`rs >= 0`).
    pub fn bgez(&mut self, rs: Reg, target: Label) {
        self.bge(rs, Reg::ZERO, target);
    }

    /// `bltz rs, target` (`rs < 0`).
    pub fn bltz(&mut self, rs: Reg, target: Label) {
        self.blt(rs, Reg::ZERO, target);
    }

    /// `bgtz rs, target` (`rs > 0`).
    pub fn bgtz(&mut self, rs: Reg, target: Label) {
        self.blt(Reg::ZERO, rs, target);
    }

    /// `bgt rs1, rs2, target` (`rs1 > rs2`, signed).
    pub fn bgt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.blt(rs2, rs1, target);
    }

    /// `ble rs1, rs2, target` (`rs1 <= rs2`, signed).
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.bge(rs2, rs1, target);
    }

    /// `bgtu rs1, rs2, target` (`rs1 > rs2`, unsigned).
    pub fn bgtu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.bltu(rs2, rs1, target);
    }

    /// `bleu rs1, rs2, target` (`rs1 <= rs2`, unsigned).
    pub fn bleu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.bgeu(rs2, rs1, target);
    }

    // ---- RV32F ----------------------------------------------------------

    /// `flw rd, offset(base)`.
    pub fn flw(&mut self, rd: FReg, base: Reg, offset: i32) {
        self.inst(Inst::Flw {
            rd,
            rs1: base,
            offset,
        });
    }

    /// `fsw src, offset(base)`.
    pub fn fsw(&mut self, src: FReg, base: Reg, offset: i32) {
        self.inst(Inst::Fsw {
            rs1: base,
            rs2: src,
            offset,
        });
    }

    fp3! {
        /// `fadd.s rd, rs1, rs2`
        fadd_s => FpOp::Add;
        /// `fsub.s rd, rs1, rs2`
        fsub_s => FpOp::Sub;
        /// `fmul.s rd, rs1, rs2`
        fmul_s => FpOp::Mul;
        /// `fdiv.s rd, rs1, rs2`
        fdiv_s => FpOp::Div;
        /// `fsgnj.s rd, rs1, rs2`
        fsgnj_s => FpOp::SgnJ;
        /// `fsgnjn.s rd, rs1, rs2`
        fsgnjn_s => FpOp::SgnJN;
        /// `fsgnjx.s rd, rs1, rs2`
        fsgnjx_s => FpOp::SgnJX;
        /// `fmin.s rd, rs1, rs2`
        fmin_s => FpOp::Min;
        /// `fmax.s rd, rs1, rs2`
        fmax_s => FpOp::Max;
    }

    /// `fsqrt.s rd, rs1`.
    pub fn fsqrt_s(&mut self, rd: FReg, rs1: FReg) {
        self.inst(Inst::FpOp {
            op: FpOp::Sqrt,
            rd,
            rs1,
            rs2: FReg::new(0),
        });
    }

    fp_fma! {
        /// `fmadd.s rd, rs1, rs2, rs3`: `rd = rs1 * rs2 + rs3`
        fmadd_s => FmaOp::MAdd;
        /// `fmsub.s rd, rs1, rs2, rs3`: `rd = rs1 * rs2 - rs3`
        fmsub_s => FmaOp::MSub;
        /// `fnmsub.s rd, rs1, rs2, rs3`: `rd = -(rs1 * rs2) + rs3`
        fnmsub_s => FmaOp::NMSub;
        /// `fnmadd.s rd, rs1, rs2, rs3`: `rd = -(rs1 * rs2) - rs3`
        fnmadd_s => FmaOp::NMAdd;
    }

    fp_cmp! {
        /// `feq.s rd, rs1, rs2`
        feq_s => FpCmpOp::Eq;
        /// `flt.s rd, rs1, rs2`
        flt_s => FpCmpOp::Lt;
        /// `fle.s rd, rs1, rs2`
        fle_s => FpCmpOp::Le;
    }

    /// `fcvt.w.s rd, rs1`: float → signed int.
    pub fn fcvt_w_s(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpToInt {
            op: FpToIntOp::CvtW,
            rd,
            rs1,
        });
    }

    /// `fcvt.wu.s rd, rs1`: float → unsigned int.
    pub fn fcvt_wu_s(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpToInt {
            op: FpToIntOp::CvtWu,
            rd,
            rs1,
        });
    }

    /// `fmv.x.w rd, rs1`: raw bit move FP → int.
    pub fn fmv_x_w(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpToInt {
            op: FpToIntOp::MvXW,
            rd,
            rs1,
        });
    }

    /// `fclass.s rd, rs1`.
    pub fn fclass_s(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpToInt {
            op: FpToIntOp::Class,
            rd,
            rs1,
        });
    }

    /// `fcvt.s.w rd, rs1`: signed int → float.
    pub fn fcvt_s_w(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::IntToFp {
            op: IntToFpOp::CvtW,
            rd,
            rs1,
        });
    }

    /// `fcvt.s.wu rd, rs1`: unsigned int → float.
    pub fn fcvt_s_wu(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::IntToFp {
            op: IntToFpOp::CvtWu,
            rd,
            rs1,
        });
    }

    /// `fmv.w.x rd, rs1`: raw bit move int → FP.
    pub fn fmv_w_x(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::IntToFp {
            op: IntToFpOp::MvWX,
            rd,
            rs1,
        });
    }

    /// `fmv.s rd, rs` (pseudo: `fsgnj.s rd, rs, rs`).
    pub fn fmv_s(&mut self, rd: FReg, rs: FReg) {
        self.fsgnj_s(rd, rs, rs);
    }

    /// `fabs.s rd, rs` (pseudo: `fsgnjx.s rd, rs, rs`).
    pub fn fabs_s(&mut self, rd: FReg, rs: FReg) {
        self.fsgnjx_s(rd, rs, rs);
    }

    /// `fneg.s rd, rs` (pseudo: `fsgnjn.s rd, rs, rs`).
    pub fn fneg_s(&mut self, rd: FReg, rs: FReg) {
        self.fsgnjn_s(rd, rs, rs);
    }

    /// `fli.s rd, value` (pseudo: loads an f32 constant through a temporary
    /// integer register).
    pub fn fli_s(&mut self, rd: FReg, tmp: Reg, value: f32) {
        self.li(tmp, value.to_bits() as i32);
        self.fmv_w_x(rd, tmp);
    }

    // ---- DiAG SIMT extension (paper §5.4) --------------------------------

    /// `simt_s rc, r_step, r_end, interval`: begins a thread-pipelined loop
    /// region (paper §5.4).
    pub fn simt_s(&mut self, rc: Reg, r_step: Reg, r_end: Reg, interval: u8) {
        self.inst(Inst::SimtS {
            rc,
            r_step,
            r_end,
            interval,
        });
    }

    /// `simt_e rc, r_end, start`: ends the pipelined region started at the
    /// `start` label (the encoded `l_offset` is computed at build time).
    pub fn simt_e(&mut self, rc: Reg, r_end: Reg, start: Label) {
        self.push(Item::SimtE {
            rc,
            r_end,
            target: start,
        });
    }

    // ---- finalization ----------------------------------------------------

    /// Resolves all labels and symbols and produces the program image.
    ///
    /// # Errors
    ///
    /// Returns an error if a referenced label was never bound, a branch or
    /// jump target is out of encodable range, or a `la` references an
    /// undefined symbol.
    pub fn build(self) -> Result<Program, AsmError> {
        let mut text = Vec::with_capacity(self.next_pos as usize);
        let resolve = |label: Label| -> Result<u32, AsmError> {
            self.labels[label.0].ok_or_else(|| AsmError::UnboundLabel {
                label: self.label_names[label.0]
                    .clone()
                    .unwrap_or_else(|| format!("L{}", label.0)),
            })
        };
        for (item, &pos) in self.items.iter().zip(&self.positions) {
            let pc = TEXT_BASE + pos * INST_BYTES;
            match item {
                Item::Fixed(inst) => text.push(encode(inst)),
                Item::Branch {
                    op,
                    rs1,
                    rs2,
                    target,
                } => {
                    let dest = TEXT_BASE + resolve(*target)? * INST_BYTES;
                    let offset = dest as i64 - pc as i64;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange {
                            mnemonic: "branch",
                            offset,
                            limit: 4096,
                        });
                    }
                    text.push(encode(&Inst::Branch {
                        op: *op,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: offset as i32,
                    }));
                }
                Item::Jal { rd, target } => {
                    let dest = TEXT_BASE + resolve(*target)? * INST_BYTES;
                    let offset = dest as i64 - pc as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange {
                            mnemonic: "jal",
                            offset,
                            limit: 1 << 20,
                        });
                    }
                    text.push(encode(&Inst::Jal {
                        rd: *rd,
                        offset: offset as i32,
                    }));
                }
                Item::La { rd, symbol } => {
                    let addr =
                        *self
                            .symbols
                            .get(symbol)
                            .ok_or_else(|| AsmError::UndefinedSymbol {
                                name: symbol.clone(),
                            })? as i32;
                    let hi = (addr.wrapping_add(0x800) as u32) & 0xFFFF_F000;
                    let lo = addr.wrapping_sub(hi as i32);
                    text.push(encode(&Inst::Lui {
                        rd: *rd,
                        imm: hi as i32,
                    }));
                    text.push(encode(&Inst::OpImm {
                        op: AluOp::Add,
                        rd: *rd,
                        rs1: *rd,
                        imm: lo,
                    }));
                }
                Item::SimtE { rc, r_end, target } => {
                    let dest = TEXT_BASE + resolve(*target)? * INST_BYTES;
                    let offset = dest as i64 - pc as i64;
                    if !(-2048..=2047).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange {
                            mnemonic: "simt_e",
                            offset,
                            limit: 2048,
                        });
                    }
                    text.push(encode(&Inst::SimtE {
                        rc: *rc,
                        r_end: *r_end,
                        l_offset: offset as i32,
                    }));
                }
            }
        }
        validate_static_targets(&text)?;
        Ok(Program::from_parts(
            text,
            TEXT_BASE,
            self.data,
            DATA_BASE,
            TEXT_BASE,
            self.symbols,
        ))
    }
}

/// Rejects control transfers whose statically-known target is unaligned or
/// outside the text segment. Label-resolved items can only go wrong through
/// raw [`ProgramBuilder::inst`] pushes or numeric offsets, but either way the
/// program would fault at runtime with `PcOutOfRange` — fail assembly instead.
fn validate_static_targets(text: &[u32]) -> Result<(), AsmError> {
    let text_end = TEXT_BASE + (text.len() as u32) * INST_BYTES;
    for (i, &word) in text.iter().enumerate() {
        let Ok(inst) = decode(word) else { continue };
        let pc = TEXT_BASE + (i as u32) * INST_BYTES;
        let (mnemonic, target) = match inst.control_flow() {
            ControlFlow::Branch { offset } => ("branch", pc.wrapping_add(offset as u32)),
            ControlFlow::Jump { offset, .. } => ("jal", pc.wrapping_add(offset as u32)),
            // simt_e resumes at the instruction after the paired simt_s, so
            // the simt_s itself must be in text.
            ControlFlow::SimtLoop { l_offset } => ("simt_e", pc.wrapping_add(l_offset as u32)),
            _ => continue,
        };
        if target < TEXT_BASE || target >= text_end || !target.is_multiple_of(INST_BYTES) {
            return Err(AsmError::TargetOutOfText {
                mnemonic,
                pc,
                target,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_isa::decode;
    use diag_isa::regs::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        let top = b.bind_new_label();
        b.addi(A0, A0, -1);
        b.beqz(A0, end);
        b.j(top);
        b.bind(end);
        b.ecall();
        let p = b.build().unwrap();
        // beqz at word 1 targets word 3: offset +8.
        match p.decode_at(p.text_base() + 4).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("unexpected {other:?}"),
        }
        // j at word 2 targets word 0: offset -8.
        match p.decode_at(p.text_base() + 8).unwrap() {
            Inst::Jal { offset, .. } => assert_eq!(offset, -8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_text_branch_rejected() {
        // A raw branch past the end of text would fault at runtime with
        // PcOutOfRange; the builder must reject it at assembly time.
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Branch {
            op: BranchOp::Beq,
            rs1: A0,
            rs2: A1,
            offset: 64,
        });
        b.ecall();
        match b.build() {
            Err(AsmError::TargetOutOfText {
                mnemonic: "branch",
                pc,
                target,
            }) => {
                assert_eq!(pc, TEXT_BASE);
                assert_eq!(target, TEXT_BASE + 64);
            }
            other => panic!("expected TargetOutOfText, got {other:?}"),
        }
    }

    #[test]
    fn before_text_jump_rejected() {
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Jal {
            rd: ZERO,
            offset: -8,
        });
        b.ecall();
        assert!(matches!(
            b.build(),
            Err(AsmError::TargetOutOfText {
                mnemonic: "jal",
                ..
            })
        ));
    }

    #[test]
    fn misaligned_target_rejected() {
        let mut b = ProgramBuilder::new();
        b.ecall();
        b.inst(Inst::Jal {
            rd: ZERO,
            offset: -2,
        });
        b.ecall();
        assert!(matches!(b.build(), Err(AsmError::TargetOutOfText { .. })));
    }

    #[test]
    fn out_of_text_simt_e_rejected() {
        let mut b = ProgramBuilder::new();
        b.inst(Inst::SimtE {
            rc: T0,
            r_end: T1,
            l_offset: -64,
        });
        b.ecall();
        assert!(matches!(
            b.build(),
            Err(AsmError::TargetOutOfText {
                mnemonic: "simt_e",
                ..
            })
        ));
    }

    #[test]
    fn named_labels_become_symbols() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let l = b.new_named_label("loop_head");
        b.bind(l);
        b.ecall();
        let p = b.build().unwrap();
        assert_eq!(p.symbol("loop_head"), Some(TEXT_BASE + 4));
        assert_eq!(p.describe_addr(TEXT_BASE + 4), "0x1004 <loop_head>");
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let never = b.new_named_label("never");
        b.j(never);
        match b.build() {
            Err(AsmError::UnboundLabel { label }) => assert_eq!(label, "never"),
            other => panic!("expected UnboundLabel, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.bind_new_label();
        b.bind(l);
    }

    #[test]
    fn li_expansion() {
        let mut b = ProgramBuilder::new();
        b.li(A0, 5); // 1 word
        b.li(A1, 0x12345); // 2 words
        b.li(A2, 0x1000); // lui only, 1 word
        b.li(A3, -4096); // lui only (0xFFFFF000)
        let p = b.build().unwrap();
        assert_eq!(p.text_len(), 5);
        // Verify li semantics by symbolic evaluation.
        let mut regs = [0u32; 32];
        let mut i = 0;
        while i < p.text_len() {
            let inst = p.decode_at(p.text_base() + (i as u32) * 4).unwrap();
            match inst {
                Inst::Lui { rd, imm } => regs[rd.number() as usize] = imm as u32,
                Inst::OpImm { rd, rs1, imm, .. } => {
                    regs[rd.number() as usize] =
                        regs[rs1.number() as usize].wrapping_add(imm as u32)
                }
                other => panic!("unexpected {other:?}"),
            }
            i += 1;
        }
        assert_eq!(regs[10], 5);
        assert_eq!(regs[11], 0x12345);
        assert_eq!(regs[12], 0x1000);
        assert_eq!(regs[13] as i32, -4096);
    }

    #[test]
    fn la_resolves_data_symbols() {
        let mut b = ProgramBuilder::new();
        let addr = b.data_words("table", &[1, 2, 3]);
        b.la(A0, "table");
        b.ecall();
        let p = b.build().unwrap();
        assert_eq!(p.symbol("table"), Some(addr));
        // Evaluate the lui+addi pair (la always emits two words).
        let hi = match p.decode_at(p.text_base()).unwrap() {
            Inst::Lui { imm, .. } => imm as u32,
            other => panic!("unexpected {other:?}"),
        };
        let result = match p.decode_at(p.text_base() + 4).unwrap() {
            Inst::OpImm { imm, .. } => hi.wrapping_add(imm as u32),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(result, addr);
    }

    #[test]
    fn la_undefined_symbol_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.la(A0, "missing");
        assert_eq!(
            b.build().unwrap_err(),
            AsmError::UndefinedSymbol {
                name: "missing".to_string()
            }
        );
    }

    #[test]
    fn data_alignment() {
        let mut b = ProgramBuilder::new();
        b.data_bytes("b", &[1]);
        let w = b.data_words("w", &[7]);
        assert_eq!(w % 4, 0);
        let f = b.data_floats("f", &[1.5]);
        assert_eq!(f % 4, 0);
        let p = b.build().unwrap();
        let off = (w - p.data_base()) as usize;
        assert_eq!(&p.data()[off..off + 4], &7u32.to_le_bytes());
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut b = ProgramBuilder::new();
        let far = b.new_label();
        b.beq(A0, A1, far);
        for _ in 0..2000 {
            b.nop();
        }
        b.bind(far);
        b.ecall();
        match b.build() {
            Err(AsmError::OffsetOutOfRange {
                mnemonic: "branch", ..
            }) => {}
            other => panic!("expected OffsetOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn simt_e_offset_points_back_to_simt_s() {
        let mut b = ProgramBuilder::new();
        let start = b.bind_new_label();
        b.simt_s(T0, T1, T2, 1);
        b.add(A0, A0, T0);
        b.simt_e(T0, T2, start);
        let p = b.build().unwrap();
        match p.decode_at(p.text_base() + 8).unwrap() {
            Inst::SimtE { l_offset, .. } => assert_eq!(l_offset, -8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pseudo_instructions_encode() {
        let mut b = ProgramBuilder::new();
        b.mv(A0, A1);
        b.not(A0, A0);
        b.neg(A0, A0);
        b.seqz(A0, A1);
        b.snez(A0, A1);
        b.ret();
        let p = b.build().unwrap();
        assert_eq!(p.text_len(), 6);
        for i in 0..6 {
            assert!(decode(p.text()[i]).is_ok());
        }
        assert_eq!(
            p.decode_at(p.text_base() + 20).unwrap(),
            Inst::Jalr {
                rd: ZERO,
                rs1: RA,
                offset: 0
            }
        );
    }

    #[test]
    fn fli_loads_float_constant() {
        let mut b = ProgramBuilder::new();
        b.fli_s(FReg::new(0), T0, 3.25);
        let p = b.build().unwrap();
        // li t0, bits; fmv.w.x ft0, t0
        let bits = 3.25f32.to_bits();
        let mut t0 = 0u32;
        for i in 0..p.text_len() {
            match p.decode_at(p.text_base() + (i as u32) * 4).unwrap() {
                Inst::Lui { imm, .. } => t0 = imm as u32,
                Inst::OpImm { imm, .. } => t0 = t0.wrapping_add(imm as u32),
                Inst::IntToFp { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(t0, bits);
    }
}
