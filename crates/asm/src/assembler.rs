//! A two-pass text assembler for RV32IMF plus the DiAG SIMT extension.
//!
//! The accepted syntax is the common GNU-flavoured RISC-V assembly subset:
//! labels (`name:`), comments (`#` or `//` to end of line), the directives
//! `.text`, `.data`, `.word`, `.float`, `.zero`, `.align`, `.globl` (which
//! is accepted and ignored), and one instruction per line. All standard
//! pseudo-instructions emitted by [`crate::ProgramBuilder`] are accepted,
//! so disassembled programs re-assemble.
//!
//! # Examples
//!
//! ```
//! use diag_asm::assemble;
//!
//! let program = assemble(r#"
//!     .data
//! value:
//!     .word 41
//!     .text
//! main:
//!     la   a1, value
//!     lw   a0, 0(a1)
//!     addi a0, a0, 1
//!     ecall
//! "#)?;
//! assert_eq!(program.text_len(), 5); // la expands to two instructions
//! # Ok::<(), diag_asm::AsmError>(())
//! ```

use std::collections::HashMap;

use diag_isa::{FReg, Inst, Reg};

use crate::builder::{Label, ProgramBuilder};
use crate::error::AsmError;
use crate::program::Program;

/// Assembles a source string into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError::Parse`] with the offending line number for any
/// syntax problem, and the builder's resolution errors (unbound labels,
/// out-of-range offsets, undefined symbols) after parsing.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(source)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

#[derive(Debug)]
struct Assembler {
    builder: ProgramBuilder,
    labels: HashMap<String, Label>,
    segment: Segment,
    /// Data labels awaiting their definition address (label on its own line
    /// in `.data`, bound by the next data-emitting directive).
    pending_data_labels: Vec<String>,
    data_scratch: u32,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            builder: ProgramBuilder::new(),
            labels: HashMap::new(),
            segment: Segment::Text,
            pending_data_labels: Vec::new(),
            data_scratch: 0,
        }
    }

    fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            l
        } else {
            let l = self.builder.new_named_label(name);
            self.labels.insert(name.to_string(), l);
            l
        }
    }

    fn assemble(mut self, source: &str) -> Result<Program, AsmError> {
        for (idx, raw_line) in source.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            self.line(line, line_no)?;
        }
        if let Some(name) = self.pending_data_labels.first() {
            return Err(AsmError::Parse {
                line: source.lines().count(),
                message: format!("data label `{name}` has no following data"),
            });
        }
        self.builder.build()
    }

    fn line(&mut self, mut line: &str, line_no: usize) -> Result<(), AsmError> {
        // Peel off any leading labels.
        while let Some(colon) = find_label_colon(line) {
            let name = line[..colon].trim();
            if !is_identifier(name) {
                return Err(AsmError::Parse {
                    line: line_no,
                    message: format!("invalid label name `{name}`"),
                });
            }
            match self.segment {
                Segment::Text => {
                    let l = self.label(name);
                    if self.builder.is_bound(l) {
                        return Err(AsmError::RebindLabel {
                            label: name.to_string(),
                        });
                    }
                    self.builder.bind(l);
                }
                Segment::Data => self.pending_data_labels.push(name.to_string()),
            }
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix('.') {
            return self.directive(rest, line_no);
        }
        if self.segment == Segment::Data {
            return Err(AsmError::Parse {
                line: line_no,
                message: "instruction in .data segment".to_string(),
            });
        }
        self.instruction(line, line_no)
    }

    fn fresh_data_name(&mut self) -> String {
        self.data_scratch += 1;
        format!("__data_{}", self.data_scratch)
    }

    fn directive(&mut self, text: &str, line_no: usize) -> Result<(), AsmError> {
        let (name, args) = split_mnemonic(text);
        match name {
            "text" => {
                self.segment = Segment::Text;
                Ok(())
            }
            "data" => {
                self.segment = Segment::Data;
                Ok(())
            }
            "globl" | "global" | "align" | "section" | "p2align" | "balign" => Ok(()),
            "word" => {
                let words = split_args(args)
                    .iter()
                    .map(|a| parse_int(a, line_no))
                    .collect::<Result<Vec<i64>, _>>()?;
                let words: Vec<u32> = words.into_iter().map(|w| w as u32).collect();
                self.emit_data(line_no, |b, name| b.data_words(name, &words))
            }
            "float" => {
                let values = split_args(args)
                    .iter()
                    .map(|a| {
                        a.parse::<f32>().map_err(|_| AsmError::Parse {
                            line: line_no,
                            message: format!("invalid float `{a}`"),
                        })
                    })
                    .collect::<Result<Vec<f32>, _>>()?;
                self.emit_data(line_no, |b, name| b.data_floats(name, &values))
            }
            "zero" | "space" => {
                let len = parse_int(args.trim(), line_no)? as usize;
                self.emit_data(line_no, |b, name| b.data_zeroed(name, len))
            }
            other => Err(AsmError::Parse {
                line: line_no,
                message: format!("unknown directive `.{other}`"),
            }),
        }
    }

    /// Emits a datum under the first pending label (or a fresh internal
    /// name); any further stacked labels alias the same address.
    fn emit_data(
        &mut self,
        line_no: usize,
        place: impl FnOnce(&mut ProgramBuilder, &str) -> u32,
    ) -> Result<(), AsmError> {
        let labels = std::mem::take(&mut self.pending_data_labels);
        let primary = match labels.first() {
            Some(name) => name.clone(),
            None => self.fresh_data_name(),
        };
        for name in &labels {
            if self.builder.has_symbol(name) {
                return Err(AsmError::Parse {
                    line: line_no,
                    message: format!("data symbol `{name}` defined twice"),
                });
            }
        }
        let addr = place(&mut self.builder, &primary);
        for alias in labels.iter().skip(1) {
            self.builder.define_data_symbol(alias, addr);
        }
        Ok(())
    }

    fn instruction(&mut self, line: &str, n: usize) -> Result<(), AsmError> {
        let (mnemonic, rest) = split_mnemonic(line);
        let args = split_args(rest);
        let b = &mut self.builder;

        macro_rules! nargs {
            ($count:expr) => {
                if args.len() != $count {
                    return Err(AsmError::Parse {
                        line: n,
                        message: format!(
                            "`{mnemonic}` expects {} operand(s), found {}",
                            $count,
                            args.len()
                        ),
                    });
                }
            };
        }
        macro_rules! xr {
            ($i:expr) => {
                parse_reg(&args[$i], n)?
            };
        }
        macro_rules! fr {
            ($i:expr) => {
                parse_freg(&args[$i], n)?
            };
        }
        macro_rules! imm {
            ($i:expr) => {
                parse_int(&args[$i], n)? as i32
            };
        }
        macro_rules! memref {
            ($i:expr) => {
                parse_mem(&args[$i], n)?
            };
        }
        match mnemonic {
            // 3-register integer ops
            "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and"
            | "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
                nargs!(3);
                let (rd, rs1, rs2) = (xr!(0), xr!(1), xr!(2));
                match mnemonic {
                    "add" => b.add(rd, rs1, rs2),
                    "sub" => b.sub(rd, rs1, rs2),
                    "sll" => b.sll(rd, rs1, rs2),
                    "slt" => b.slt(rd, rs1, rs2),
                    "sltu" => b.sltu(rd, rs1, rs2),
                    "xor" => b.xor(rd, rs1, rs2),
                    "srl" => b.srl(rd, rs1, rs2),
                    "sra" => b.sra(rd, rs1, rs2),
                    "or" => b.or(rd, rs1, rs2),
                    "and" => b.and(rd, rs1, rs2),
                    "mul" => b.mul(rd, rs1, rs2),
                    "mulh" => b.mulh(rd, rs1, rs2),
                    "mulhsu" => b.mulhsu(rd, rs1, rs2),
                    "mulhu" => b.mulhu(rd, rs1, rs2),
                    "div" => b.div(rd, rs1, rs2),
                    "divu" => b.divu(rd, rs1, rs2),
                    "rem" => b.rem(rd, rs1, rs2),
                    _ => b.remu(rd, rs1, rs2),
                }
            }
            // immediate ops
            "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
                nargs!(3);
                let (rd, rs1, imm) = (xr!(0), xr!(1), imm!(2));
                match mnemonic {
                    "addi" => b.addi(rd, rs1, imm),
                    "slti" => b.slti(rd, rs1, imm),
                    "sltiu" => b.sltiu(rd, rs1, imm),
                    "xori" => b.xori(rd, rs1, imm),
                    "ori" => b.ori(rd, rs1, imm),
                    "andi" => b.andi(rd, rs1, imm),
                    "slli" => b.slli(rd, rs1, imm),
                    "srli" => b.srli(rd, rs1, imm),
                    _ => b.srai(rd, rs1, imm),
                }
            }
            // loads
            "lw" | "lh" | "lb" | "lhu" | "lbu" => {
                nargs!(2);
                let rd = xr!(0);
                let (offset, base) = memref!(1);
                match mnemonic {
                    "lw" => b.lw(rd, base, offset),
                    "lh" => b.lh(rd, base, offset),
                    "lb" => b.lb(rd, base, offset),
                    "lhu" => b.lhu(rd, base, offset),
                    _ => b.lbu(rd, base, offset),
                }
            }
            // stores
            "sw" | "sh" | "sb" => {
                nargs!(2);
                let src = xr!(0);
                let (offset, base) = memref!(1);
                match mnemonic {
                    "sw" => b.sw(src, base, offset),
                    "sh" => b.sh(src, base, offset),
                    _ => b.sb(src, base, offset),
                }
            }
            // branches (label or numeric offset form)
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" | "bgt" | "ble" | "bgtu" | "bleu" => {
                nargs!(3);
                let (rs1, rs2) = (xr!(0), xr!(1));
                let target = self.branch_target(&args[2], n)?;
                let b = &mut self.builder;
                match mnemonic {
                    "beq" => b.beq(rs1, rs2, target),
                    "bne" => b.bne(rs1, rs2, target),
                    "blt" => b.blt(rs1, rs2, target),
                    "bge" => b.bge(rs1, rs2, target),
                    "bltu" => b.bltu(rs1, rs2, target),
                    "bgeu" => b.bgeu(rs1, rs2, target),
                    "bgt" => b.bgt(rs1, rs2, target),
                    "ble" => b.ble(rs1, rs2, target),
                    "bgtu" => b.bgtu(rs1, rs2, target),
                    _ => b.bleu(rs1, rs2, target),
                }
            }
            "beqz" | "bnez" | "blez" | "bgez" | "bltz" | "bgtz" => {
                nargs!(2);
                let rs = xr!(0);
                let target = self.branch_target(&args[1], n)?;
                let b = &mut self.builder;
                match mnemonic {
                    "beqz" => b.beqz(rs, target),
                    "bnez" => b.bnez(rs, target),
                    "blez" => b.blez(rs, target),
                    "bgez" => b.bgez(rs, target),
                    "bltz" => b.bltz(rs, target),
                    _ => b.bgtz(rs, target),
                }
            }
            "lui" => {
                nargs!(2);
                let rd = xr!(0);
                let v = parse_int(&args[1], n)?;
                b.lui(rd, (v as i32) << 12);
            }
            "auipc" => {
                nargs!(2);
                let rd = xr!(0);
                let v = parse_int(&args[1], n)?;
                b.auipc(rd, (v as i32) << 12);
            }
            "jal" => match args.len() {
                1 => {
                    let target = self.branch_target(&args[0], n)?;
                    self.builder.jal(Reg::RA, target);
                }
                2 => {
                    let rd = xr!(0);
                    let target = self.branch_target(&args[1], n)?;
                    self.builder.jal(rd, target);
                }
                _ => {
                    return Err(AsmError::Parse {
                        line: n,
                        message: "`jal` expects 1 or 2 operands".to_string(),
                    })
                }
            },
            "jalr" => match args.len() {
                1 => {
                    let rs = xr!(0);
                    b.jalr(Reg::RA, rs, 0);
                }
                2 => {
                    let rd = xr!(0);
                    let (offset, base) = memref!(1);
                    b.jalr(rd, base, offset);
                }
                _ => {
                    return Err(AsmError::Parse {
                        line: n,
                        message: "`jalr` expects 1 or 2 operands".to_string(),
                    })
                }
            },
            "j" => {
                nargs!(1);
                let target = self.branch_target(&args[0], n)?;
                self.builder.j(target);
            }
            "call" => {
                nargs!(1);
                let target = self.branch_target(&args[0], n)?;
                self.builder.call(target);
            }
            "jr" => {
                nargs!(1);
                let rs = xr!(0);
                b.jr(rs);
            }
            "ret" => {
                nargs!(0);
                b.ret();
            }
            "nop" => {
                nargs!(0);
                b.nop();
            }
            "li" => {
                nargs!(2);
                let rd = xr!(0);
                let v = parse_int(&args[1], n)?;
                b.li(rd, v as i32);
            }
            "la" => {
                nargs!(2);
                let rd = xr!(0);
                b.la(rd, &args[1]);
            }
            "mv" => {
                nargs!(2);
                let (rd, rs) = (xr!(0), xr!(1));
                b.mv(rd, rs);
            }
            "not" => {
                nargs!(2);
                let (rd, rs) = (xr!(0), xr!(1));
                b.not(rd, rs);
            }
            "neg" => {
                nargs!(2);
                let (rd, rs) = (xr!(0), xr!(1));
                b.neg(rd, rs);
            }
            "seqz" => {
                nargs!(2);
                let (rd, rs) = (xr!(0), xr!(1));
                b.seqz(rd, rs);
            }
            "snez" => {
                nargs!(2);
                let (rd, rs) = (xr!(0), xr!(1));
                b.snez(rd, rs);
            }
            "ecall" => {
                nargs!(0);
                b.ecall();
            }
            "ebreak" => {
                nargs!(0);
                b.ebreak();
            }
            "fence" => {
                b.fence();
            }
            // FP loads/stores
            "flw" => {
                nargs!(2);
                let rd = fr!(0);
                let (offset, base) = memref!(1);
                b.flw(rd, base, offset);
            }
            "fsw" => {
                nargs!(2);
                let src = fr!(0);
                let (offset, base) = memref!(1);
                b.fsw(src, base, offset);
            }
            // FP 3-register ops
            "fadd.s" | "fsub.s" | "fmul.s" | "fdiv.s" | "fsgnj.s" | "fsgnjn.s" | "fsgnjx.s"
            | "fmin.s" | "fmax.s" => {
                nargs!(3);
                let (rd, rs1, rs2) = (fr!(0), fr!(1), fr!(2));
                match mnemonic {
                    "fadd.s" => b.fadd_s(rd, rs1, rs2),
                    "fsub.s" => b.fsub_s(rd, rs1, rs2),
                    "fmul.s" => b.fmul_s(rd, rs1, rs2),
                    "fdiv.s" => b.fdiv_s(rd, rs1, rs2),
                    "fsgnj.s" => b.fsgnj_s(rd, rs1, rs2),
                    "fsgnjn.s" => b.fsgnjn_s(rd, rs1, rs2),
                    "fsgnjx.s" => b.fsgnjx_s(rd, rs1, rs2),
                    "fmin.s" => b.fmin_s(rd, rs1, rs2),
                    _ => b.fmax_s(rd, rs1, rs2),
                }
            }
            "fsqrt.s" => {
                nargs!(2);
                let (rd, rs1) = (fr!(0), fr!(1));
                b.fsqrt_s(rd, rs1);
            }
            "fmadd.s" | "fmsub.s" | "fnmsub.s" | "fnmadd.s" => {
                nargs!(4);
                let (rd, rs1, rs2, rs3) = (fr!(0), fr!(1), fr!(2), fr!(3));
                match mnemonic {
                    "fmadd.s" => b.fmadd_s(rd, rs1, rs2, rs3),
                    "fmsub.s" => b.fmsub_s(rd, rs1, rs2, rs3),
                    "fnmsub.s" => b.fnmsub_s(rd, rs1, rs2, rs3),
                    _ => b.fnmadd_s(rd, rs1, rs2, rs3),
                }
            }
            "feq.s" | "flt.s" | "fle.s" => {
                nargs!(3);
                let rd = xr!(0);
                let (rs1, rs2) = (fr!(1), fr!(2));
                match mnemonic {
                    "feq.s" => b.feq_s(rd, rs1, rs2),
                    "flt.s" => b.flt_s(rd, rs1, rs2),
                    _ => b.fle_s(rd, rs1, rs2),
                }
            }
            "fcvt.w.s" | "fcvt.wu.s" | "fmv.x.w" | "fclass.s" => {
                nargs!(2);
                let rd = xr!(0);
                let rs1 = fr!(1);
                match mnemonic {
                    "fcvt.w.s" => b.fcvt_w_s(rd, rs1),
                    "fcvt.wu.s" => b.fcvt_wu_s(rd, rs1),
                    "fmv.x.w" => b.fmv_x_w(rd, rs1),
                    _ => b.fclass_s(rd, rs1),
                }
            }
            "fcvt.s.w" | "fcvt.s.wu" | "fmv.w.x" => {
                nargs!(2);
                let rd = fr!(0);
                let rs1 = xr!(1);
                match mnemonic {
                    "fcvt.s.w" => b.fcvt_s_w(rd, rs1),
                    "fcvt.s.wu" => b.fcvt_s_wu(rd, rs1),
                    _ => b.fmv_w_x(rd, rs1),
                }
            }
            "fmv.s" => {
                nargs!(2);
                let (rd, rs) = (fr!(0), fr!(1));
                b.fmv_s(rd, rs);
            }
            "fabs.s" => {
                nargs!(2);
                let (rd, rs) = (fr!(0), fr!(1));
                b.fabs_s(rd, rs);
            }
            "fneg.s" => {
                nargs!(2);
                let (rd, rs) = (fr!(0), fr!(1));
                b.fneg_s(rd, rs);
            }
            // DiAG SIMT extension
            "simt_s" => {
                nargs!(4);
                let (rc, r_step, r_end) = (xr!(0), xr!(1), xr!(2));
                let interval = parse_int(&args[3], n)?;
                if !(1..=127).contains(&interval) {
                    return Err(AsmError::ImmediateOutOfRange {
                        mnemonic: "simt_s",
                        value: interval,
                    });
                }
                b.simt_s(rc, r_step, r_end, interval as u8);
            }
            "simt_e" => {
                nargs!(3);
                let (rc, r_end) = (xr!(0), xr!(1));
                // Third operand is the start label (or numeric offset).
                if let Ok(off) = parse_int(&args[2], n) {
                    self.builder.inst(Inst::SimtE {
                        rc,
                        r_end,
                        l_offset: off as i32,
                    });
                } else {
                    let target = self.branch_target(&args[2], n)?;
                    self.builder.simt_e(rc, r_end, target);
                }
            }
            other => {
                return Err(AsmError::Parse {
                    line: n,
                    message: format!("unknown mnemonic `{other}`"),
                })
            }
        }
        Ok(())
    }

    /// Branch targets are labels, or bare numeric byte offsets relative to
    /// the branch itself (the disassembler's output form).
    fn branch_target(&mut self, text: &str, line_no: usize) -> Result<Label, AsmError> {
        if let Ok(offset) = parse_int(text, line_no) {
            // Synthesize an anonymous label at the destination word
            // (positions are absolute, so forward offsets bind eagerly
            // too — this is how disassembled programs re-assemble).
            let cur = self.builder.position() as i64;
            let dest = cur + offset / 4;
            if offset % 4 != 0 || dest < 0 {
                return Err(AsmError::Parse {
                    line: line_no,
                    message: format!("invalid numeric branch offset {offset}"),
                });
            }
            let l = self.builder.new_label();
            self.builder.bind_at(l, dest as u32);
            Ok(l)
        } else {
            Ok(self.label(text))
        }
    }
}

fn strip_comment(line: &str) -> &str {
    let end = line.find('#').unwrap_or(line.len());
    let end = line.find("//").map_or(end, |e| e.min(end));
    &line[..end]
}

fn find_label_colon(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    // Only treat as label if everything before the colon is an identifier.
    if is_identifier(line[..colon].trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && s.parse::<f64>().is_err()
}

fn split_mnemonic(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    }
}

fn split_args(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        return Vec::new();
    }
    rest.split(',').map(|a| a.trim().to_string()).collect()
}

fn parse_reg(text: &str, line_no: usize) -> Result<Reg, AsmError> {
    text.parse().map_err(|_| AsmError::Parse {
        line: line_no,
        message: format!("invalid integer register `{text}`"),
    })
}

fn parse_freg(text: &str, line_no: usize) -> Result<FReg, AsmError> {
    text.parse().map_err(|_| AsmError::Parse {
        line: line_no,
        message: format!("invalid floating-point register `{text}`"),
    })
}

fn parse_int(text: &str, line_no: usize) -> Result<i64, AsmError> {
    let text = text.trim();
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| AsmError::Parse {
        line: line_no,
        message: format!("invalid integer `{text}`"),
    })?;
    Ok(if neg { -value } else { value })
}

/// Parses `offset(base)` memory operands; a bare `(base)` means offset 0.
fn parse_mem(text: &str, line_no: usize) -> Result<(i32, Reg), AsmError> {
    let open = text.find('(').ok_or_else(|| AsmError::Parse {
        line: line_no,
        message: format!("expected `offset(base)`, found `{text}`"),
    })?;
    let close = text.rfind(')').ok_or_else(|| AsmError::Parse {
        line: line_no,
        message: format!("unclosed parenthesis in `{text}`"),
    })?;
    let offset_text = text[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        parse_int(offset_text, line_no)? as i32
    };
    let base = parse_reg(text[open + 1..close].trim(), line_no)?;
    Ok((offset, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_isa::{AluOp, BranchOp, LoadOp};

    #[test]
    fn basic_program_assembles() {
        let p = assemble(
            r#"
            # sum the numbers 1..=10
            main:
                li   t0, 10
                li   t1, 0
            loop:
                add  t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                ecall
            "#,
        )
        .unwrap();
        assert_eq!(p.text_len(), 6);
        match p.decode_at(p.text_base() + 16).unwrap() {
            Inst::Branch {
                op: BranchOp::Bne,
                offset,
                ..
            } => assert_eq!(offset, -8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn data_segment_and_la() {
        let p = assemble(
            r#"
            .data
            vec:
                .word 1, 2, 3, 4
            count:
                .word 4
            .text
                la   a0, vec
                lw   a1, 0(a0)
                ecall
            "#,
        )
        .unwrap();
        let vec_addr = p.symbol("vec").unwrap();
        assert_eq!(p.symbol("count"), Some(vec_addr + 16));
        assert_eq!(&p.data()[0..4], &1u32.to_le_bytes());
    }

    #[test]
    fn float_data() {
        let p = assemble(".data\nf:\n .float 1.5, -2.0\n.text\nnop\n").unwrap();
        assert_eq!(&p.data()[0..4], &1.5f32.to_bits().to_le_bytes());
        assert_eq!(&p.data()[4..8], &(-2.0f32).to_bits().to_le_bytes());
    }

    #[test]
    fn fp_instructions_assemble() {
        let p = assemble(
            r#"
                flw   ft0, 0(a0)
                flw   ft1, 4(a0)
                fmadd.s ft2, ft0, ft1, ft2
                fsqrt.s ft3, ft2
                feq.s t0, ft3, ft3
                fsw   ft3, 8(a0)
                ecall
            "#,
        )
        .unwrap();
        assert_eq!(p.text_len(), 7);
    }

    #[test]
    fn simt_instructions_assemble() {
        let p = assemble(
            r#"
            start:
                simt_s t0, t1, t2, 2
                add a0, a0, t0
                simt_e t0, t2, start
                ecall
            "#,
        )
        .unwrap();
        match p.decode_at(p.text_base() + 8).unwrap() {
            Inst::SimtE { l_offset, .. } => assert_eq!(l_offset, -8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = assemble("nop\nbogus a0, a1\n").unwrap_err();
        match err {
            AsmError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_register_rejected() {
        assert!(assemble("add q0, a1, a2").is_err());
    }

    #[test]
    fn comments_stripped() {
        let p = assemble("nop # trailing\n// whole line\nnop\n").unwrap();
        assert_eq!(p.text_len(), 2);
    }

    #[test]
    fn numeric_backward_branch_offsets() {
        // The disassembler prints numeric offsets; backward ones re-assemble.
        let p = assemble("nop\nnop\nbne t0, t1, -8\necall\n").unwrap();
        match p.decode_at(p.text_base() + 8).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, -8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memref_without_offset() {
        let p = assemble("lw a0, (sp)\necall\n").unwrap();
        match p.decode_at(p.text_base()).unwrap() {
            Inst::Load {
                op: LoadOp::Lw,
                offset,
                ..
            } => assert_eq!(offset, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hex_and_binary_immediates() {
        let p = assemble("addi a0, zero, 0x7f\naddi a1, zero, 0b101\necall\n").unwrap();
        match p.decode_at(p.text_base()).unwrap() {
            Inst::OpImm {
                op: AluOp::Add,
                imm,
                ..
            } => assert_eq!(imm, 0x7F),
            other => panic!("unexpected {other:?}"),
        }
        match p.decode_at(p.text_base() + 4).unwrap() {
            Inst::OpImm { imm, .. } => assert_eq!(imm, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instruction_in_data_segment_rejected() {
        let err = assemble(".data\nadd a0, a1, a2\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { .. }));
    }

    #[test]
    fn label_and_instruction_on_same_line() {
        let p = assemble("top: addi a0, a0, 1\nbnez a0, top\n").unwrap();
        assert_eq!(p.text_len(), 2);
        match p.decode_at(p.text_base() + 4).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, -4),
            other => panic!("unexpected {other:?}"),
        }
    }
}
