//! # diag-asm — assembler and program builder for the DiAG reproduction
//!
//! Programs for the machine models in this workspace are bare-metal RV32IMF
//! images. This crate provides two ways to produce them:
//!
//! - [`ProgramBuilder`]: a typed Rust DSL with labels and a data segment —
//!   the way all [`diag-workloads`](../../workloads) kernels are authored.
//! - [`assemble`]: a two-pass text assembler accepting the common
//!   GNU-flavoured syntax, used by examples and tests.
//!
//! Both produce a [`Program`]: text words, data bytes, entry point, and
//! symbol table.
//!
//! # Examples
//!
//! ```
//! use diag_asm::assemble;
//!
//! let program = assemble("li a0, 1\necall\n")?;
//! assert_eq!(program.text_len(), 2);
//! # Ok::<(), diag_asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assembler;
mod builder;
mod error;
mod program;

pub use assembler::assemble;
pub use builder::{Label, ProgramBuilder};
pub use error::AsmError;
pub use program::{Program, DATA_BASE, STACK_STRIDE, STACK_TOP, TEXT_BASE};
