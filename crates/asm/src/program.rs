//! Loadable program images.
//!
//! A [`Program`] is the common currency between the assembler/builder and
//! the machine models: a text segment of 32-bit instruction words, a data
//! segment of bytes, an entry point, and a symbol table.

use std::collections::BTreeMap;
use std::fmt;

use diag_isa::{decode, Inst, INST_BYTES};

/// Default base address of the text segment.
pub const TEXT_BASE: u32 = 0x0000_1000;
/// Default base address of the data segment.
pub const DATA_BASE: u32 = 0x0010_0000;
/// Default initial stack pointer (grows down). Each hardware thread `t`
/// receives `STACK_TOP - t * STACK_STRIDE`.
pub const STACK_TOP: u32 = 0x0100_0000;
/// Per-thread stack spacing.
pub const STACK_STRIDE: u32 = 0x0001_0000;

/// A fully-resolved program image ready to load into a machine.
///
/// # Examples
///
/// ```
/// use diag_asm::ProgramBuilder;
/// use diag_isa::Reg;
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::A0, 42);
/// b.ecall();
/// let program = b.build()?;
/// assert_eq!(program.text_len(), 2);
/// # Ok::<(), diag_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    text: Vec<u32>,
    text_base: u32,
    data: Vec<u8>,
    data_base: u32,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Assembles a program from its parts. Most callers should use
    /// [`crate::ProgramBuilder`] or [`crate::assemble`] instead.
    pub fn from_parts(
        text: Vec<u32>,
        text_base: u32,
        data: Vec<u8>,
        data_base: u32,
        entry: u32,
        symbols: BTreeMap<String, u32>,
    ) -> Program {
        Program {
            text,
            text_base,
            data,
            data_base,
            entry,
            symbols,
        }
    }

    /// The instruction words of the text segment.
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Number of instructions in the text segment.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Base address of the text segment.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// One past the last text address.
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * INST_BYTES
    }

    /// The initialized data segment bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Base address of the data segment.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// The entry-point address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols in address order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// The instruction word at `addr`, if `addr` is inside the text segment
    /// and word-aligned.
    pub fn fetch(&self, addr: u32) -> Option<u32> {
        if addr < self.text_base || !addr.is_multiple_of(INST_BYTES) {
            return None;
        }
        let index = ((addr - self.text_base) / INST_BYTES) as usize;
        self.text.get(index).copied()
    }

    /// Decodes the instruction at `addr`.
    pub fn decode_at(&self, addr: u32) -> Option<Inst> {
        self.fetch(addr).and_then(|w| decode(w).ok())
    }

    /// Whether `addr` is a word-aligned address inside the text segment.
    pub fn contains_text_addr(&self, addr: u32) -> bool {
        addr >= self.text_base && addr < self.text_end() && addr.is_multiple_of(INST_BYTES)
    }

    /// The nearest symbol at or before `addr`, for humanizing addresses in
    /// diagnostics. Returns the symbol name and `addr`'s byte offset from it.
    pub fn symbol_before(&self, addr: u32) -> Option<(&str, u32)> {
        self.symbols
            .iter()
            .filter(|&(_, &a)| a <= addr)
            .max_by_key(|&(_, &a)| a)
            .map(|(n, &a)| (n.as_str(), addr - a))
    }

    /// A human-readable location for `addr`: the address plus, when a symbol
    /// precedes it, `<symbol+offset>`.
    ///
    /// # Examples
    ///
    /// ```
    /// use diag_asm::assemble;
    ///
    /// let p = assemble("start:\n  addi a0, zero, 1\n  ecall\n").unwrap();
    /// assert_eq!(p.describe_addr(p.entry() + 4), "0x1004 <start+0x4>");
    /// ```
    pub fn describe_addr(&self, addr: u32) -> String {
        match self.symbol_before(addr) {
            Some((name, 0)) => format!("{addr:#x} <{name}>"),
            Some((name, off)) => format!("{addr:#x} <{name}+{off:#x}>"),
            None => format!("{addr:#x}"),
        }
    }

    /// Disassembly lines for the instructions around `addr` (`before` and
    /// `after` counted in instructions), clamped to the text segment — the
    /// context block embedded in analyzer diagnostics. The line for `addr`
    /// itself is marked with `>`.
    pub fn disasm_context(&self, addr: u32, before: u32, after: u32) -> Vec<String> {
        let mut lines = Vec::new();
        if !self.contains_text_addr(addr) {
            return lines;
        }
        let lo = addr.saturating_sub(before * INST_BYTES).max(self.text_base);
        let hi = (addr + after * INST_BYTES).min(self.text_end() - INST_BYTES);
        let mut at = lo;
        while at <= hi {
            let word = self.fetch(at).expect("in text");
            let marker = if at == addr { '>' } else { ' ' };
            match decode(word) {
                Ok(inst) => lines.push(format!("{marker} {at:#07x}: {inst}")),
                Err(_) => lines.push(format!("{marker} {at:#07x}: <illegal {word:#010x}>")),
            }
            at += INST_BYTES;
        }
        lines
    }

    /// A listing of the whole text segment: `addr: word  disassembly`.
    pub fn listing(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for (i, &word) in self.text.iter().enumerate() {
            let addr = self.text_base + (i as u32) * INST_BYTES;
            match decode(word) {
                Ok(inst) => writeln!(out, "{addr:#07x}: {word:08x}  {inst}").unwrap(),
                Err(_) => writeln!(out, "{addr:#07x}: {word:08x}  <illegal>").unwrap(),
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} instructions at {:#x}, {} data bytes at {:#x}, entry {:#x}",
            self.text.len(),
            self.text_base,
            self.data.len(),
            self.data_base,
            self.entry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_isa::encode;

    fn sample() -> Program {
        let text = vec![encode(&Inst::NOP), encode(&Inst::Ecall)];
        Program::from_parts(
            text,
            TEXT_BASE,
            vec![1, 2, 3, 4],
            DATA_BASE,
            TEXT_BASE,
            BTreeMap::new(),
        )
    }

    #[test]
    fn fetch_bounds() {
        let p = sample();
        assert_eq!(p.fetch(TEXT_BASE), Some(encode(&Inst::NOP)));
        assert_eq!(p.fetch(TEXT_BASE + 4), Some(encode(&Inst::Ecall)));
        assert_eq!(p.fetch(TEXT_BASE + 8), None);
        assert_eq!(p.fetch(TEXT_BASE - 4), None);
        assert_eq!(p.fetch(TEXT_BASE + 2), None); // misaligned
    }

    #[test]
    fn decode_at_works() {
        let p = sample();
        assert_eq!(p.decode_at(TEXT_BASE + 4), Some(Inst::Ecall));
    }

    #[test]
    fn listing_contains_disassembly() {
        let p = sample();
        let listing = p.listing();
        assert!(listing.contains("ecall"));
        assert!(listing.contains("addi zero, zero, 0"));
    }

    #[test]
    fn text_end() {
        let p = sample();
        assert_eq!(p.text_end(), TEXT_BASE + 8);
    }
}
