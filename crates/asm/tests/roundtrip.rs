//! Randomized tests for the assembler: disassembled programs re-assemble
//! to identical machine code, and builder-emitted programs survive a full
//! listing → parse → encode cycle. Driven by the in-workspace
//! [`SplitMix64`] generator so the suite runs fully offline; the `heavy`
//! feature scales the case count up for soak runs.

use diag_asm::{assemble, ProgramBuilder};
use diag_isa::prng::SplitMix64;
use diag_isa::regs::*;
use diag_isa::{AluOp, BranchOp, LoadOp, Reg, StoreOp};

#[cfg(not(feature = "heavy"))]
const CASES: u64 = 96;
#[cfg(feature = "heavy")]
const CASES: u64 = 8_192;

fn any_reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(rng.gen_range(0u8..32))
}

#[derive(Debug, Clone, Copy)]
enum Stmt {
    Op(AluOp, Reg, Reg, Reg),
    Imm(AluOp, Reg, Reg, i32),
    Load(LoadOp, Reg, Reg, i32),
    Store(StoreOp, Reg, Reg, i32),
    BranchBack(BranchOp, Reg, Reg),
    Li(Reg, i32),
    Jump,
    Nop,
}

fn any_stmt(rng: &mut SplitMix64) -> Stmt {
    const OPS: [AluOp; 7] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
        AluOp::Sltu,
    ];
    const IMM_OPS: [AluOp; 4] = [AluOp::Add, AluOp::Xor, AluOp::And, AluOp::Or];
    const LOADS: [LoadOp; 3] = [LoadOp::Lw, LoadOp::Lb, LoadOp::Lhu];
    const STORES: [StoreOp; 2] = [StoreOp::Sw, StoreOp::Sb];
    const BRANCHES: [BranchOp; 3] = [BranchOp::Beq, BranchOp::Bne, BranchOp::Blt];
    match rng.gen_range(0u32..8) {
        0 => Stmt::Op(
            OPS[rng.gen_range(0usize..OPS.len())],
            any_reg(rng),
            any_reg(rng),
            any_reg(rng),
        ),
        1 => Stmt::Imm(
            IMM_OPS[rng.gen_range(0usize..IMM_OPS.len())],
            any_reg(rng),
            any_reg(rng),
            rng.gen_range(-2048i32..2048),
        ),
        2 => Stmt::Load(
            LOADS[rng.gen_range(0usize..LOADS.len())],
            any_reg(rng),
            any_reg(rng),
            rng.gen_range(-256i32..256),
        ),
        3 => Stmt::Store(
            STORES[rng.gen_range(0usize..STORES.len())],
            any_reg(rng),
            any_reg(rng),
            rng.gen_range(-256i32..256),
        ),
        4 => Stmt::BranchBack(
            BRANCHES[rng.gen_range(0usize..BRANCHES.len())],
            any_reg(rng),
            any_reg(rng),
        ),
        5 => Stmt::Li(any_reg(rng), rng.gen::<u32>() as i32),
        6 => Stmt::Jump,
        _ => Stmt::Nop,
    }
}

fn random_stmts(rng: &mut SplitMix64, max: usize) -> Vec<Stmt> {
    let count = rng.gen_range(1usize..max);
    (0..count).map(|_| any_stmt(rng)).collect()
}

/// listing() output re-assembles to the exact same instruction words.
#[test]
fn listing_reassembles_bit_identically() {
    let mut rng = SplitMix64::seed_from_u64(0xA53A_0001);
    for _ in 0..CASES {
        let stmts = random_stmts(&mut rng, 40);
        let mut b = ProgramBuilder::new();
        let start = b.bind_new_label();
        for s in &stmts {
            match *s {
                Stmt::Op(op, rd, rs1, rs2) => b.inst(diag_isa::Inst::Op { op, rd, rs1, rs2 }),
                Stmt::Imm(op, rd, rs1, imm) => b.inst(diag_isa::Inst::OpImm { op, rd, rs1, imm }),
                Stmt::Load(op, rd, rs1, offset) => b.inst(diag_isa::Inst::Load {
                    op,
                    rd,
                    rs1,
                    offset,
                }),
                Stmt::Store(op, rs2, rs1, offset) => b.inst(diag_isa::Inst::Store {
                    op,
                    rs1,
                    rs2,
                    offset,
                }),
                Stmt::BranchBack(op, rs1, rs2) => b.bne_like(op, rs1, rs2, start),
                Stmt::Li(rd, v) => b.li(rd, v),
                Stmt::Jump => b.j(start),
                Stmt::Nop => b.nop(),
            }
        }
        b.ecall();
        let program = b.build().expect("builder program assembles");

        let mut text = String::new();
        for line in program.listing().lines() {
            text.push_str(line.split("  ").nth(1).expect("listing format"));
            text.push('\n');
        }
        let again = assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        assert_eq!(program.text(), again.text());
    }
}

/// Every builder program decodes cleanly end to end.
#[test]
fn builder_programs_fully_decode() {
    let mut rng = SplitMix64::seed_from_u64(0xA53A_0002);
    for _ in 0..CASES {
        let stmts = random_stmts(&mut rng, 40);
        let mut b = ProgramBuilder::new();
        let start = b.bind_new_label();
        for s in &stmts {
            match *s {
                Stmt::Op(op, rd, rs1, rs2) => b.inst(diag_isa::Inst::Op { op, rd, rs1, rs2 }),
                Stmt::Li(rd, v) => b.li(rd, v),
                _ => b.nop(),
            }
        }
        b.j(start);
        let program = b.build().unwrap();
        for i in 0..program.text_len() as u32 {
            assert!(program.decode_at(program.text_base() + 4 * i).is_some());
        }
    }
}

/// Helper extension so the generator can emit arbitrary branch ops through
/// the builder's typed API.
trait BranchExt {
    fn bne_like(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, target: diag_asm::Label);
}

impl BranchExt for ProgramBuilder {
    fn bne_like(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, target: diag_asm::Label) {
        match op {
            BranchOp::Beq => self.beq(rs1, rs2, target),
            BranchOp::Bne => self.bne(rs1, rs2, target),
            BranchOp::Blt => self.blt(rs1, rs2, target),
            BranchOp::Bge => self.bge(rs1, rs2, target),
            BranchOp::Bltu => self.bltu(rs1, rs2, target),
            BranchOp::Bgeu => self.bgeu(rs1, rs2, target),
        }
    }
}

#[test]
fn listing_of_every_fp_instruction_reassembles() {
    let mut b = ProgramBuilder::new();
    b.flw(FT0, A0, 0);
    b.fsw(FT0, A0, 4);
    b.fadd_s(FT1, FT0, FT0);
    b.fsub_s(FT2, FT1, FT0);
    b.fmul_s(FT3, FT2, FT1);
    b.fdiv_s(FT4, FT3, FT2);
    b.fsqrt_s(FT5, FT4);
    b.fsgnj_s(FT6, FT5, FT4);
    b.fsgnjn_s(FT7, FT6, FT5);
    b.fsgnjx_s(FT8, FT7, FT6);
    b.fmin_s(FT9, FT8, FT7);
    b.fmax_s(FT10, FT9, FT8);
    b.fmadd_s(FT11, FT10, FT9, FT8);
    b.fmsub_s(FS0, FT11, FT10, FT9);
    b.fnmsub_s(FS1, FS0, FT11, FT10);
    b.fnmadd_s(FS2, FS1, FS0, FT11);
    b.feq_s(T0, FS2, FS1);
    b.flt_s(T1, FS1, FS0);
    b.fle_s(T2, FS0, FS2);
    b.fcvt_w_s(T3, FS2);
    b.fcvt_wu_s(T4, FS1);
    b.fmv_x_w(T5, FS0);
    b.fclass_s(T6, FS2);
    b.fcvt_s_w(FS3, T0);
    b.fcvt_s_wu(FS4, T1);
    b.fmv_w_x(FS5, T2);
    b.simt_s(T0, T1, T2, 3);
    b.inst(diag_isa::Inst::SimtE {
        rc: T0,
        r_end: T2,
        l_offset: -108,
    });
    b.ecall();
    let program = b.build().unwrap();
    let mut text = String::new();
    for line in program.listing().lines() {
        text.push_str(line.split("  ").nth(1).unwrap());
        text.push('\n');
    }
    let again = assemble(&text).unwrap();
    assert_eq!(program.text(), again.text());
}
