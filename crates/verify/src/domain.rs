//! The abstract value domain: u32 intervals with a known-alignment bit.
//!
//! An [`Itv`] denotes the set of 32-bit values
//! `{ v : lo <= v <= hi  and  trailing_zeros(v) >= tz }` (with
//! `trailing_zeros(0) == 32`, so zero satisfies every alignment claim).
//! The range component proves bounds facts; the trailing-zeros component
//! proves natural-alignment facts for memory accesses. The two components
//! are independent conjuncts: `lo`/`hi` themselves need not satisfy the
//! alignment constraint.
//!
//! Every transfer function below is *conservative*: for all concrete
//! inputs drawn from the operand sets, the concrete result (as computed
//! by [`diag_isa::exec::alu`]) is a member of the result set. The unit
//! tests at the bottom check this exhaustively over small value grids for
//! every ALU opcode.

/// An interval of u32 values with a minimum trailing-zero count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Itv {
    /// Inclusive lower bound.
    pub lo: u32,
    /// Inclusive upper bound.
    pub hi: u32,
    /// Every member has at least this many trailing zero bits (0..=32).
    pub tz: u8,
}

/// Smallest `2^k - 1` mask covering `x` (all bits at or below the highest
/// set bit of `x`).
fn smear(x: u32) -> u32 {
    if x == 0 {
        0
    } else {
        u32::MAX >> x.leading_zeros()
    }
}

/// `trailing_zeros` clamped into the `tz` encoding (0 maps to 32).
fn tzof(v: u32) -> u8 {
    v.trailing_zeros().min(32) as u8
}

impl Itv {
    /// The full domain: any 32-bit value.
    pub fn top() -> Itv {
        Itv {
            lo: 0,
            hi: u32::MAX,
            tz: 0,
        }
    }

    /// The singleton `{v}`.
    pub fn exact(v: u32) -> Itv {
        Itv {
            lo: v,
            hi: v,
            tz: tzof(v),
        }
    }

    /// The plain range `[lo, hi]`. Any range of two or more values
    /// contains an odd number, so no alignment is claimed unless the
    /// range is a singleton.
    pub fn range(lo: u32, hi: u32) -> Itv {
        debug_assert!(lo <= hi);
        if lo == hi {
            Itv::exact(lo)
        } else {
            Itv { lo, hi, tz: 0 }
        }
    }

    /// True when the full domain (no information).
    pub fn is_top(&self) -> bool {
        *self == Itv::top()
    }

    /// `Some(v)` when the range pins a single value.
    pub fn is_singleton(&self) -> Option<u32> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Membership test against both conjuncts.
    pub fn contains(&self, v: u32) -> bool {
        self.lo <= v && v <= self.hi && tzof(v) >= self.tz
    }

    /// Least upper bound: the smallest `Itv` covering both.
    pub fn join(&self, other: &Itv) -> Itv {
        Itv {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            tz: self.tz.min(other.tz),
        }
    }

    /// Widening: jump any still-moving bound straight to the lattice
    /// extreme so ascending chains at loop heads terminate. `self` is the
    /// previous state, `next` the newly joined one.
    pub fn widen(&self, next: &Itv) -> Itv {
        Itv {
            lo: if next.lo < self.lo { 0 } else { self.lo },
            hi: if next.hi > self.hi { u32::MAX } else { self.hi },
            tz: next.tz.min(self.tz),
        }
    }

    /// Intersection; `None` when the ranges are disjoint (the refined
    /// state is infeasible). The alignment conjuncts simply accumulate.
    pub fn intersect(&self, other: &Itv) -> Option<Itv> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            None
        } else {
            Some(Itv {
                lo,
                hi,
                tz: self.tz.max(other.tz),
            })
        }
    }

    /// Wrapping add. Exact when the u64 sums of both bound pairs land in
    /// the same 2^32 window (either both wrap or neither does); the
    /// alignment claim survives wrapping because 2^32 is a multiple of
    /// any claimed power of two.
    pub fn add(&self, other: &Itv) -> Itv {
        let tz = self.tz.min(other.tz);
        let lo = self.lo as u64 + other.lo as u64;
        let hi = self.hi as u64 + other.hi as u64;
        if (lo >> 32) == (hi >> 32) {
            Itv {
                lo: lo as u32,
                hi: hi as u32,
                tz,
            }
        } else {
            Itv {
                lo: 0,
                hi: u32::MAX,
                tz,
            }
        }
    }

    /// Wrapping subtract; same both-wrap-or-neither argument as
    /// [`Itv::add`], in i64.
    pub fn sub(&self, other: &Itv) -> Itv {
        let tz = self.tz.min(other.tz);
        let lo = self.lo as i64 - other.hi as i64;
        let hi = self.hi as i64 - other.lo as i64;
        if (lo < 0) == (hi < 0) {
            Itv {
                lo: lo as u32,
                hi: hi as u32,
                tz,
            }
        } else {
            Itv {
                lo: 0,
                hi: u32::MAX,
                tz,
            }
        }
    }

    /// Shift left by a known amount (`s` already masked to 0..=31).
    /// Alignment always gains `s` bits; the range is exact when no
    /// member's high bits shift out.
    pub fn sll_by(&self, s: u32) -> Itv {
        let tz = (self.tz as u32 + s).min(32) as u8;
        if s == 0 {
            return *self;
        }
        if self.hi >> (32 - s) == 0 {
            Itv {
                lo: self.lo << s,
                hi: self.hi << s,
                tz,
            }
        } else {
            Itv {
                lo: 0,
                hi: u32::MAX,
                tz,
            }
        }
    }

    /// Logical shift right by a known amount: monotone, always exact.
    pub fn srl_by(&self, s: u32) -> Itv {
        Itv {
            lo: self.lo >> s,
            hi: self.hi >> s,
            tz: self.tz.saturating_sub(s as u8),
        }
    }

    /// Arithmetic shift right by a known amount. Monotone on each sign
    /// half; for sign-mixed ranges only the alignment claim survives
    /// (shifting a multiple of 2^s right by `s` is exact division).
    pub fn sra_by(&self, s: u32) -> Itv {
        let tz = self.tz.saturating_sub(s as u8);
        let neg = 0x8000_0000u32;
        if self.hi < neg || self.lo >= neg {
            // u32 order equals i32 order within one sign half.
            Itv {
                lo: ((self.lo as i32) >> s) as u32,
                hi: ((self.hi as i32) >> s) as u32,
                tz,
            }
        } else {
            Itv {
                lo: 0,
                hi: u32::MAX,
                tz,
            }
        }
    }

    /// Bitwise and: the result never exceeds either operand (unsigned),
    /// and keeps the zeros of both.
    pub fn and(&self, other: &Itv) -> Itv {
        if let (Some(a), Some(b)) = (self.is_singleton(), other.is_singleton()) {
            return Itv::exact(a & b);
        }
        Itv {
            lo: 0,
            hi: self.hi.min(other.hi),
            tz: self.tz.max(other.tz),
        }
    }

    /// Bitwise or: at least the larger operand, at most all bits up to
    /// the highest bit either side can set.
    pub fn or(&self, other: &Itv) -> Itv {
        if let (Some(a), Some(b)) = (self.is_singleton(), other.is_singleton()) {
            return Itv::exact(a | b);
        }
        Itv {
            lo: self.lo.max(other.lo),
            hi: smear(self.hi | other.hi),
            tz: self.tz.min(other.tz),
        }
    }

    /// Bitwise xor: bounded by the bit positions either side can set.
    pub fn xor(&self, other: &Itv) -> Itv {
        if let (Some(a), Some(b)) = (self.is_singleton(), other.is_singleton()) {
            return Itv::exact(a ^ b);
        }
        Itv {
            lo: 0,
            hi: smear(self.hi | other.hi),
            tz: self.tz.min(other.tz),
        }
    }

    /// Low 32 bits of the product. Exact when the extreme product fits in
    /// u32; factor alignments always accumulate (mod 2^32 preserves any
    /// power-of-two divisor up to 2^32).
    pub fn mul(&self, other: &Itv) -> Itv {
        let tz = (self.tz as u32 + other.tz as u32).min(32) as u8;
        if self.hi as u64 * other.hi as u64 <= u32::MAX as u64 {
            Itv {
                lo: self.lo * other.lo,
                hi: self.hi * other.hi,
                tz,
            }
        } else {
            Itv {
                lo: 0,
                hi: u32::MAX,
                tz,
            }
        }
    }

    /// High 32 bits of the unsigned product: monotone in both operands.
    pub fn mulhu(&self, other: &Itv) -> Itv {
        Itv::range(
            ((self.lo as u64 * other.lo as u64) >> 32) as u32,
            ((self.hi as u64 * other.hi as u64) >> 32) as u32,
        )
    }

    /// Unsigned quotient, when the divisor is provably nonzero
    /// (division by zero yields `u32::MAX` in RV32M, outside the
    /// monotone formula).
    pub fn divu(&self, other: &Itv) -> Itv {
        if other.lo >= 1 {
            Itv::range(self.lo / other.hi, self.hi / other.lo)
        } else {
            Itv::top()
        }
    }

    /// Unsigned remainder: `a % b < b` when `b != 0`, and `a % b <= a`
    /// always (`a % 0 == a` in RV32M).
    pub fn remu(&self, other: &Itv) -> Itv {
        if other.lo >= 1 {
            Itv::range(0, self.hi.min(other.hi - 1))
        } else {
            Itv::range(0, self.hi)
        }
    }

    /// Signed quotient, only in the easy quadrant: both operands
    /// provably non-negative and the divisor nonzero. Anything touching
    /// a sign bit (or the `i32::MIN / -1` overflow case) degrades.
    pub fn div_signed(&self, other: &Itv) -> Itv {
        let nn = |i: &Itv| i.hi <= i32::MAX as u32;
        if nn(self) && nn(other) && other.lo >= 1 {
            Itv::range(self.lo / other.hi, self.hi / other.lo)
        } else {
            Itv::top()
        }
    }

    /// Signed remainder in the same non-negative quadrant.
    pub fn rem_signed(&self, other: &Itv) -> Itv {
        let nn = |i: &Itv| i.hi <= i32::MAX as u32;
        if nn(self) && nn(other) && other.lo >= 1 {
            Itv::range(0, self.hi.min(other.hi - 1))
        } else {
            Itv::top()
        }
    }

    /// `a < b` (unsigned) as a 0/1 interval; decided when the ranges
    /// don't overlap.
    pub fn sltu(&self, other: &Itv) -> Itv {
        if self.hi < other.lo {
            Itv::exact(1)
        } else if self.lo >= other.hi {
            Itv::exact(0)
        } else {
            Itv::range(0, 1)
        }
    }

    /// `a < b` (signed) as a 0/1 interval, via the sign-bias transform.
    pub fn slt(&self, other: &Itv) -> Itv {
        match (self.bias(), other.bias()) {
            (Some(a), Some(b)) => a.sltu(&b),
            _ => Itv::range(0, 1),
        }
    }

    /// Maps the interval through `v ^ 0x8000_0000`, which carries signed
    /// order onto unsigned order. The image is a contiguous interval only
    /// when the range does not straddle the sign boundary.
    pub fn bias(&self) -> Option<Itv> {
        let b = 0x8000_0000u32;
        if self.lo < b && self.hi >= b {
            None
        } else {
            Some(Itv {
                lo: self.lo ^ b,
                hi: self.hi ^ b,
                tz: 0,
            })
        }
    }

    /// Undoes [`Itv::bias`], reattaching the alignment claim `tz` (a
    /// refinement never invalidates the original claim).
    fn unbias(biased: Itv, tz: u8) -> Itv {
        let b = 0x8000_0000u32;
        Itv {
            lo: biased.lo ^ b,
            hi: biased.hi ^ b,
            tz,
        }
    }
}

/// Refinement of an operand pair `(a, b)` through a known-true unsigned
/// `a < b`. Returns `None` when the predicate is infeasible for the pair.
pub fn refine_ltu(a: &Itv, b: &Itv) -> Option<(Itv, Itv)> {
    if b.hi == 0 || a.lo == u32::MAX {
        return None;
    }
    let a2 = a.intersect(&Itv {
        lo: 0,
        hi: b.hi - 1,
        tz: 0,
    })?;
    let b2 = b.intersect(&Itv {
        lo: a.lo + 1,
        hi: u32::MAX,
        tz: 0,
    })?;
    Some((a2, b2))
}

/// Refinement through a known-true unsigned `a >= b`.
pub fn refine_geu(a: &Itv, b: &Itv) -> Option<(Itv, Itv)> {
    let a2 = a.intersect(&Itv {
        lo: b.lo,
        hi: u32::MAX,
        tz: 0,
    })?;
    let b2 = b.intersect(&Itv {
        lo: 0,
        hi: a.hi,
        tz: 0,
    })?;
    Some((a2, b2))
}

/// Refinement through a known-true signed `a < b`, when both intervals
/// stay within one sign half (otherwise returns the operands unchanged —
/// skipping a refinement is always sound).
pub fn refine_lt(a: &Itv, b: &Itv) -> Option<(Itv, Itv)> {
    match (a.bias(), b.bias()) {
        (Some(ab), Some(bb)) => {
            let (a2, b2) = refine_ltu(&ab, &bb)?;
            Some((Itv::unbias(a2, a.tz), Itv::unbias(b2, b.tz)))
        }
        _ => Some((*a, *b)),
    }
}

/// Refinement through a known-true signed `a >= b`.
pub fn refine_ge(a: &Itv, b: &Itv) -> Option<(Itv, Itv)> {
    match (a.bias(), b.bias()) {
        (Some(ab), Some(bb)) => {
            let (a2, b2) = refine_geu(&ab, &bb)?;
            Some((Itv::unbias(a2, a.tz), Itv::unbias(b2, b.tz)))
        }
        _ => Some((*a, *b)),
    }
}

/// Refinement through a known-true `a == b`: both collapse to the
/// intersection.
pub fn refine_eq(a: &Itv, b: &Itv) -> Option<(Itv, Itv)> {
    let m = a.intersect(b)?;
    Some((m, m))
}

/// Refinement through a known-true `a != b`: useful only against a
/// singleton, where a touching bound can be nudged off it.
pub fn refine_ne(a: &Itv, b: &Itv) -> Option<(Itv, Itv)> {
    fn trim(x: &Itv, v: u32) -> Option<Itv> {
        let mut x = *x;
        if x.lo == v && x.hi == v {
            return None;
        }
        if x.lo == v {
            x.lo += 1;
        }
        if x.hi == v {
            x.hi -= 1;
        }
        Some(x)
    }
    match (a.is_singleton(), b.is_singleton()) {
        (Some(av), Some(bv)) if av == bv => None,
        (Some(av), _) => Some((*a, trim(b, av)?)),
        (_, Some(bv)) => Some((trim(a, bv)?, *b)),
        _ => Some((*a, *b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_isa::exec::{alu, branch_taken};
    use diag_isa::AluOp;

    /// A small grid of concrete values chosen to hit wrap boundaries,
    /// sign boundaries, and alignment corners.
    const GRID: &[u32] = &[
        0,
        1,
        2,
        3,
        4,
        5,
        7,
        8,
        12,
        16,
        31,
        32,
        100,
        0xFF,
        0x100,
        0x7FFF_FFFE,
        0x7FFF_FFFF,
        0x8000_0000,
        0x8000_0001,
        0xFFFF_FF00,
        0xFFFF_FFFE,
        u32::MAX,
    ];

    /// Every interval with grid endpoints (lo <= hi), plus singletons.
    fn grid_itvs() -> Vec<Itv> {
        let mut out = Vec::new();
        for &a in GRID {
            for &b in GRID {
                if a <= b {
                    out.push(Itv::range(a, b));
                }
            }
        }
        out
    }

    /// Concrete members of `i` drawn from the grid (endpoints included
    /// via `range` construction).
    fn members(i: &Itv) -> Vec<u32> {
        GRID.iter().copied().filter(|&v| i.contains(v)).collect()
    }

    fn apply(op: AluOp, a: &Itv, b: &Itv) -> Itv {
        match op {
            AluOp::Add => a.add(b),
            AluOp::Sub => a.sub(b),
            AluOp::Sll => match b.is_singleton() {
                Some(s) => a.sll_by(s & 0x1F),
                None => Itv {
                    lo: 0,
                    hi: u32::MAX,
                    tz: a.tz,
                },
            },
            AluOp::Srl => match b.is_singleton() {
                Some(s) => a.srl_by(s & 0x1F),
                None => Itv::top(),
            },
            AluOp::Sra => match b.is_singleton() {
                Some(s) => a.sra_by(s & 0x1F),
                None => Itv::top(),
            },
            AluOp::Slt => a.slt(b),
            AluOp::Sltu => a.sltu(b),
            AluOp::Xor => a.xor(b),
            AluOp::Or => a.or(b),
            AluOp::And => a.and(b),
            AluOp::Mul => a.mul(b),
            AluOp::Mulh => Itv::top(),
            AluOp::Mulhsu => Itv::top(),
            AluOp::Mulhu => a.mulhu(b),
            AluOp::Div => a.div_signed(b),
            AluOp::Divu => a.divu(b),
            AluOp::Rem => a.rem_signed(b),
            AluOp::Remu => a.remu(b),
        }
    }

    #[test]
    fn transfer_functions_are_sound_on_the_grid() {
        let itvs = grid_itvs();
        let ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Or,
            AluOp::And,
            AluOp::Mul,
            AluOp::Mulh,
            AluOp::Mulhsu,
            AluOp::Mulhu,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
        ];
        for a in &itvs {
            let avs = members(a);
            for b in &itvs {
                let bvs = members(b);
                for &op in &ops {
                    let r = apply(op, a, b);
                    for &av in &avs {
                        for &bv in &bvs {
                            let c = alu(op, av, bv);
                            assert!(
                                r.contains(c),
                                "{op:?}: {av:#x} op {bv:#x} = {c:#x} not in {r:?} \
                                 (a={a:?}, b={b:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn alignment_claims_survive_arithmetic() {
        // 16-aligned plus 4-aligned is 4-aligned, scaled by 8 is
        // 32-aligned, and shifting right gives it back.
        let a = Itv {
            lo: 16,
            hi: 64,
            tz: 4,
        };
        let b = Itv {
            lo: 4,
            hi: 12,
            tz: 2,
        };
        let s = a.add(&b);
        assert_eq!(s.tz, 2);
        assert_eq!(s.sll_by(3).tz, 5);
        assert_eq!(s.sll_by(3).srl_by(1).tz, 4);
        for v in [20u32, 28, 76] {
            assert!(s.contains(v));
        }
        assert!(!s.contains(21));
    }

    #[test]
    fn refinements_are_sound_on_the_grid() {
        let itvs = grid_itvs();
        for a in &itvs {
            for b in &itvs {
                let pairs: [(Option<(Itv, Itv)>, diag_isa::BranchOp); 6] = [
                    (refine_ltu(a, b), diag_isa::BranchOp::Bltu),
                    (refine_geu(a, b), diag_isa::BranchOp::Bgeu),
                    (refine_lt(a, b), diag_isa::BranchOp::Blt),
                    (refine_ge(a, b), diag_isa::BranchOp::Bge),
                    (refine_eq(a, b), diag_isa::BranchOp::Beq),
                    (refine_ne(a, b), diag_isa::BranchOp::Bne),
                ];
                for (refined, op) in pairs {
                    for &av in &members(a) {
                        for &bv in &members(b) {
                            if branch_taken(op, av, bv) {
                                // The concrete pair satisfies the
                                // predicate, so it must survive.
                                let (a2, b2) = refined.unwrap_or_else(|| {
                                    panic!("{op:?} refined {a:?},{b:?} to bottom but {av:#x},{bv:#x} satisfies it")
                                });
                                assert!(a2.contains(av), "{op:?} lost {av:#x} from {a:?}");
                                assert!(b2.contains(bv), "{op:?} lost {bv:#x} from {b:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn join_and_widen_cover_both_sides() {
        let a = Itv::range(4, 10);
        let b = Itv::range(8, 20);
        let j = a.join(&b);
        assert_eq!((j.lo, j.hi), (4, 20));
        let w = a.widen(&j);
        assert_eq!((w.lo, w.hi), (4, u32::MAX));
        let w2 = b.widen(&a.join(&b));
        assert_eq!((w2.lo, w2.hi), (0, 20));
    }

    #[test]
    fn intersect_detects_disjoint() {
        assert!(Itv::range(0, 4).intersect(&Itv::range(5, 9)).is_none());
        let m = Itv::range(0, 8).intersect(&Itv::range(4, 12)).unwrap();
        assert_eq!((m.lo, m.hi), (4, 8));
    }
}
