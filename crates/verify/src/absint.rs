//! The worklist fixpoint engine: abstract execution of a guest program
//! over the interval domain, one [`AbsState`] per basic-block entry.
//!
//! The engine reuses [`diag_analyze`]'s CFG (blocks, natural loops, trap
//! edges) and ascends to a fixpoint by joining successor-entry states,
//! widening at natural-loop heads once a head keeps changing. The
//! per-instruction transfer function mirrors the architectural
//! interpreter in `diag_sim::interp` — same wrapping adds, same SIMT
//! marker semantics, same branch comparisons — but over sets of values.

use diag_analyze::Cfg;
use diag_asm::Program;
use diag_isa::{ArchReg, BranchOp, ControlFlow, Inst, LoadOp, Reg, INST_BYTES, NUM_LANES};

use crate::domain::{self, Itv};

/// Joins at a natural-loop head after which further growth widens.
const WIDEN_AFTER: u32 = 3;
/// Joins at *any* block after which growth widens — a termination
/// backstop for irreducible flow the natural-loop detector misses.
const WIDEN_ALWAYS_AFTER: u32 = 24;

/// One abstract machine state: an interval per architectural lane
/// (32 integer + 32 FP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    lanes: Box<[Itv; NUM_LANES]>,
}

impl AbsState {
    /// All lanes unconstrained (except the hardwired zero lane).
    pub fn top() -> AbsState {
        let mut s = AbsState {
            lanes: Box::new([Itv::top(); NUM_LANES]),
        };
        s.lanes[0] = Itv::exact(0);
        s
    }

    /// The wave-entry state all machines establish for a thread: zeroed
    /// lanes except the thread id in `a0`, the thread count in `a1`, and
    /// a 64 KiB-strided stack pointer in `sp`.
    pub fn entry(threads: usize) -> AbsState {
        let threads = threads.max(1) as u32;
        let mut s = AbsState {
            lanes: Box::new([Itv::exact(0); NUM_LANES]),
        };
        s.set(Reg::A0.into(), Itv::range(0, threads - 1));
        s.set(Reg::A1.into(), Itv::exact(threads));
        let sp_lo = diag_asm::STACK_TOP - (threads - 1) * diag_asm::STACK_STRIDE;
        s.set(
            Reg::SP.into(),
            Itv {
                lo: sp_lo,
                hi: diag_asm::STACK_TOP,
                tz: 16,
            },
        );
        s
    }

    /// Reads a lane's interval.
    pub fn get(&self, r: ArchReg) -> Itv {
        self.lanes[r.index()]
    }

    /// Writes a lane's interval; the zero lane is hardwired.
    pub fn set(&mut self, r: ArchReg, v: Itv) {
        if !r.is_zero() {
            self.lanes[r.index()] = v;
        }
    }

    /// Lane-wise join.
    pub(crate) fn join(&self, other: &AbsState) -> AbsState {
        let mut out = self.clone();
        for i in 0..NUM_LANES {
            out.lanes[i] = out.lanes[i].join(&other.lanes[i]);
        }
        out
    }

    /// Lane-wise widening of `self` (old) against `next` (new join).
    fn widen(&self, next: &AbsState) -> AbsState {
        let mut out = self.clone();
        for i in 0..NUM_LANES {
            out.lanes[i] = out.lanes[i].widen(&next.lanes[i]);
        }
        out
    }
}

/// The abstract effect of one instruction: the interval written to its
/// destination lane (if any) and the interval of the memory address it
/// touches (if any).
#[derive(Debug, Clone, Copy)]
pub struct InstEffect {
    /// Destination lane and the interval of values written to it.
    pub dest: Option<(ArchReg, Itv)>,
    /// Effective-address interval for loads, stores, and FP memory ops.
    pub addr: Option<Itv>,
}

/// Applies one instruction to `st`, returning its [`InstEffect`]. The
/// branch decision itself is handled by the block-edge code (with operand
/// refinement); this function only models the dataflow.
pub fn transfer_inst(program: &Program, pc: u32, inst: &Inst, st: &mut AbsState) -> InstEffect {
    let mut addr: Option<Itv> = None;
    let dest: Option<(ArchReg, Itv)> = match *inst {
        Inst::Lui { rd, imm } => Some((rd.into(), Itv::exact(imm as u32))),
        Inst::Auipc { rd, imm } => Some((rd.into(), Itv::exact(pc.wrapping_add(imm as u32)))),
        Inst::OpImm { op, rd, rs1, imm } => {
            let a = st.get(rs1.into());
            let b = Itv::exact(imm as u32);
            Some((rd.into(), alu_itv(op, &a, &b)))
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let a = st.get(rs1.into());
            let b = st.get(rs2.into());
            Some((rd.into(), alu_itv(op, &a, &b)))
        }
        Inst::Jal { rd, .. } => Some((rd.into(), Itv::exact(pc.wrapping_add(INST_BYTES)))),
        Inst::Jalr { rd, .. } => Some((rd.into(), Itv::exact(pc.wrapping_add(INST_BYTES)))),
        Inst::Branch { .. } | Inst::Fence | Inst::Ecall | Inst::Ebreak => None,
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
            ..
        } => {
            addr = Some(st.get(rs1.into()).add(&Itv::exact(offset as u32)));
            let loaded = match op {
                LoadOp::Lbu => Itv::range(0, 0xFF),
                LoadOp::Lhu => Itv::range(0, 0xFFFF),
                LoadOp::Lb | LoadOp::Lh | LoadOp::Lw => Itv::top(),
            };
            Some((rd.into(), loaded))
        }
        Inst::Store { rs1, offset, .. } => {
            addr = Some(st.get(rs1.into()).add(&Itv::exact(offset as u32)));
            None
        }
        Inst::Flw { rd, rs1, offset } => {
            addr = Some(st.get(rs1.into()).add(&Itv::exact(offset as u32)));
            Some((rd.into(), Itv::top()))
        }
        Inst::Fsw { rs1, offset, .. } => {
            addr = Some(st.get(rs1.into()).add(&Itv::exact(offset as u32)));
            None
        }
        Inst::FpOp { rd, .. } => Some((rd.into(), Itv::top())),
        Inst::FpFma { rd, .. } => Some((rd.into(), Itv::top())),
        Inst::FpCmp { rd, .. } => Some((rd.into(), Itv::range(0, 1))),
        Inst::FpToInt { rd, .. } => Some((rd.into(), Itv::top())),
        Inst::IntToFp { rd, .. } => Some((rd.into(), Itv::top())),
        Inst::SimtS { rc, .. } => {
            // Sequential marker semantics: rc passes through unchanged.
            Some((rc.into(), st.get(rc.into())))
        }
        Inst::SimtE { rc, l_offset, .. } => {
            let rc_new = simt_e_next(program, pc, l_offset, rc, st);
            Some((rc.into(), rc_new))
        }
    };
    if let Some((lane, v)) = dest {
        st.set(lane, v);
    }
    InstEffect {
        dest: dest.filter(|(lane, _)| !lane.is_zero()),
        addr,
    }
}

/// The interval `rc` takes after a `simt_e` at `pc` executes once: the
/// paired `simt_s`'s step lane added to the current counter. An unpaired
/// `simt_e` (a runtime error) degrades to top.
fn simt_e_next(program: &Program, pc: u32, l_offset: i32, rc: Reg, st: &AbsState) -> Itv {
    match program.decode_at(pc.wrapping_add(l_offset as u32)) {
        Some(Inst::SimtS { r_step, .. }) => st.get(rc.into()).add(&st.get(r_step.into())),
        _ => Itv::top(),
    }
}

/// Interval counterpart of [`diag_isa::exec::alu`].
fn alu_itv(op: diag_isa::AluOp, a: &Itv, b: &Itv) -> Itv {
    use diag_isa::AluOp;
    match op {
        AluOp::Add => a.add(b),
        AluOp::Sub => a.sub(b),
        AluOp::Sll => match b.is_singleton() {
            Some(s) => a.sll_by(s & 0x1F),
            // Left shift by an unknown amount can only add low zeros.
            None => Itv {
                lo: 0,
                hi: u32::MAX,
                tz: a.tz,
            },
        },
        AluOp::Srl => match b.is_singleton() {
            Some(s) => a.srl_by(s & 0x1F),
            None => Itv::top(),
        },
        AluOp::Sra => match b.is_singleton() {
            Some(s) => a.sra_by(s & 0x1F),
            None => Itv::top(),
        },
        AluOp::Slt => a.slt(b),
        AluOp::Sltu => a.sltu(b),
        AluOp::Xor => a.xor(b),
        AluOp::Or => a.or(b),
        AluOp::And => a.and(b),
        AluOp::Mul => a.mul(b),
        AluOp::Mulh | AluOp::Mulhsu => Itv::top(),
        AluOp::Mulhu => a.mulhu(b),
        AluOp::Div => a.div_signed(b),
        AluOp::Divu => a.divu(b),
        AluOp::Rem => a.rem_signed(b),
        AluOp::Remu => a.remu(b),
    }
}

/// The fixpoint result: per-block entry states plus engine statistics.
#[derive(Debug)]
pub struct Fixpoint {
    /// Entry state per CFG block; `None` means abstractly unreachable.
    pub entries: Vec<Option<AbsState>>,
    /// Total block transfers performed by the worklist.
    pub iterations: u64,
    /// Lane widenings applied at loop heads (and backstop joins).
    pub widenings: u64,
}

/// Runs the worklist to a fixpoint over `cfg`.
///
/// `trap_vector` mirrors the machine configuration: when set and inside
/// the text segment, the handler block is seeded with a conservative top
/// state (an asynchronous interrupt can arrive in any machine state, not
/// just via the `ebreak` edges the CFG records).
pub fn fixpoint(
    program: &Program,
    cfg: &Cfg,
    threads: usize,
    trap_vector: Option<u32>,
) -> Fixpoint {
    let n = cfg.blocks.len();
    let mut entries: Vec<Option<AbsState>> = vec![None; n];
    let mut joins = vec![0u32; n];
    let mut iterations = 0u64;
    let mut widenings = 0u64;
    if n == 0 {
        return Fixpoint {
            entries,
            iterations,
            widenings,
        };
    }

    let loop_heads: Vec<bool> = {
        let mut heads = vec![false; n];
        for l in cfg.natural_loops() {
            heads[l.head] = true;
        }
        heads
    };

    entries[cfg.entry] = Some(AbsState::entry(threads));
    let mut worklist = std::collections::VecDeque::from([cfg.entry]);
    let mut queued = vec![false; n];
    queued[cfg.entry] = true;
    if let Some(vector) = trap_vector {
        if let Some(tb) = cfg.block_at(vector) {
            entries[tb] = Some(AbsState::top());
            worklist.push_back(tb);
            queued[tb] = true;
        }
    }

    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        iterations += 1;
        let Some(state) = entries[b].clone() else {
            continue;
        };
        for (succ, out) in block_out_states(program, cfg, b, state) {
            let merged = match &entries[succ] {
                None => out,
                Some(old) => {
                    let joined = old.join(&out);
                    if joined == *old {
                        continue;
                    }
                    joins[succ] += 1;
                    if (loop_heads[succ] && joins[succ] >= WIDEN_AFTER)
                        || joins[succ] >= WIDEN_ALWAYS_AFTER
                    {
                        widenings += 1;
                        old.widen(&joined)
                    } else {
                        joined
                    }
                }
            };
            if entries[succ].as_ref() != Some(&merged) {
                entries[succ] = Some(merged);
                if !queued[succ] {
                    queued[succ] = true;
                    worklist.push_back(succ);
                }
            }
        }
    }

    Fixpoint {
        entries,
        iterations,
        widenings,
    }
}

/// Abstractly executes block `b` from `state` and returns the out-state
/// flowing along each CFG successor edge, with branch-operand refinement
/// applied per edge. Infeasible edges (refinement proves the predicate
/// can't hold) are dropped.
pub fn block_out_states(
    program: &Program,
    cfg: &Cfg,
    b: usize,
    mut state: AbsState,
) -> Vec<(usize, AbsState)> {
    let block = &cfg.blocks[b];
    if block.insts.is_empty() {
        return Vec::new();
    }
    for &(pc, ref inst) in &block.insts[..block.insts.len() - 1] {
        transfer_inst(program, pc, inst, &mut state);
    }
    let &(last_pc, ref last) = block
        .insts
        .last()
        .expect("non-empty block has a terminator");

    let mut out: Vec<(usize, AbsState)> = Vec::new();
    let push = |target: u32, st: AbsState, out: &mut Vec<(usize, AbsState)>| {
        if let Some(idx) = cfg.block_at(target) {
            out.push((idx, st));
        }
    };

    match last.control_flow() {
        ControlFlow::Branch { offset } => {
            let Inst::Branch { op, rs1, rs2, .. } = *last else {
                unreachable!("Branch control flow from a non-branch");
            };
            let a = state.get(rs1.into());
            let bi = state.get(rs2.into());
            let taken_target = last_pc.wrapping_add(offset as u32);
            let fall = last_pc.wrapping_add(INST_BYTES);
            // Branches write no lane; refine each edge independently.
            if let Some((ra, rb)) = refine(op, true, &a, &bi) {
                let mut st = state.clone();
                st.set(rs1.into(), ra);
                st.set(rs2.into(), rb);
                push(taken_target, st, &mut out);
            }
            if let Some((ra, rb)) = refine(op, false, &a, &bi) {
                let mut st = state.clone();
                st.set(rs1.into(), ra);
                st.set(rs2.into(), rb);
                push(fall, st, &mut out);
            }
        }
        ControlFlow::SimtLoop { l_offset } => {
            let Inst::SimtE { rc, .. } = *last else {
                unreachable!("SimtLoop control flow from a non-simt_e");
            };
            // The rc update happened in transfer below; model it here
            // since simt_e is the terminator.
            transfer_inst(program, last_pc, last, &mut state);
            let _ = rc;
            let back = last_pc
                .wrapping_add(l_offset as u32)
                .wrapping_add(INST_BYTES);
            push(back, state.clone(), &mut out);
            push(last_pc.wrapping_add(INST_BYTES), state, &mut out);
        }
        ControlFlow::Jump { .. } | ControlFlow::Next => {
            transfer_inst(program, last_pc, last, &mut state);
            let (fall, taken) = last.static_successors(last_pc);
            if let Some(t) = taken {
                push(t, state.clone(), &mut out);
            } else if let Some(f) = fall {
                push(f, state, &mut out);
            }
        }
        ControlFlow::Trap => {
            // `ebreak`: the CFG records an edge to the trap vector when
            // one is configured; lanes are preserved across the trap.
            transfer_inst(program, last_pc, last, &mut state);
            for &s in &block.succs {
                out.push((s, state.clone()));
            }
        }
        ControlFlow::Halt | ControlFlow::Indirect { .. } => {
            // Halt ends the thread; indirect flow is handled by the
            // degraded top-state mode in `lib.rs`, never here.
        }
    }
    out
}

/// Refines branch operands given the branch `op` resolved to `taken`.
/// `None` means the edge is infeasible.
fn refine(op: BranchOp, taken: bool, a: &Itv, b: &Itv) -> Option<(Itv, Itv)> {
    match (op, taken) {
        (BranchOp::Beq, true) | (BranchOp::Bne, false) => domain::refine_eq(a, b),
        (BranchOp::Beq, false) | (BranchOp::Bne, true) => domain::refine_ne(a, b),
        (BranchOp::Bltu, true) | (BranchOp::Bgeu, false) => domain::refine_ltu(a, b),
        (BranchOp::Bltu, false) | (BranchOp::Bgeu, true) => domain::refine_geu(a, b),
        (BranchOp::Blt, true) | (BranchOp::Bge, false) => domain::refine_lt(a, b),
        (BranchOp::Blt, false) | (BranchOp::Bge, true) => domain::refine_ge(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    fn run(src: &str, threads: usize) -> (Program, Cfg, Fixpoint) {
        let program = assemble(src).unwrap();
        let cfg = Cfg::build(&program, None);
        let fix = fixpoint(&program, &cfg, threads, None);
        (program, cfg, fix)
    }

    #[test]
    fn straight_line_constants_are_exact() {
        let (program, cfg, fix) = run("li t0, 40\naddi t1, t0, 2\necall\n", 1);
        let entry = fix.entries[cfg.entry].clone().unwrap();
        let mut st = entry;
        for &(pc, ref inst) in &cfg.blocks[cfg.entry].insts {
            transfer_inst(&program, pc, inst, &mut st);
        }
        assert_eq!(st.get(Reg::T1.into()).is_singleton(), Some(42));
    }

    #[test]
    fn loop_counter_is_bounded_by_refinement() {
        // for (t0 = 0; t0 != 10; t0++) — at the loop exit t0 == 10.
        let (program, cfg, fix) = run(
            "li t0, 0\nloop:\naddi t0, t0, 1\nbne t0, a1, loop\nsw t0, 0(gp)\necall\n",
            10,
        );
        // Find the exit block (the one containing the store).
        let store_block = cfg
            .blocks
            .iter()
            .position(|b| b.insts.iter().any(|(_, i)| i.is_store()))
            .unwrap();
        let st = fix.entries[store_block].clone().unwrap();
        assert_eq!(st.get(Reg::T0.into()).is_singleton(), Some(10));
        let _ = program;
    }

    #[test]
    fn infeasible_edge_is_dropped() {
        // t0 is provably 3, so `beq t0, zero, dead` never goes to dead.
        let (_, cfg, fix) = run(
            "li t0, 3\nbeq t0, zero, dead\necall\ndead:\nli t1, 1\necall\n",
            1,
        );
        let dead: Vec<usize> = (0..cfg.blocks.len())
            .filter(|&i| fix.entries[i].is_none())
            .collect();
        assert_eq!(dead.len(), 1, "exactly the dead block lacks a state");
        assert_eq!(cfg.blocks[dead[0]].start, diag_asm::TEXT_BASE + 12);
    }

    #[test]
    fn entry_state_models_thread_parameters() {
        let st = AbsState::entry(4);
        assert_eq!(st.get(Reg::A0.into()).lo, 0);
        assert_eq!(st.get(Reg::A0.into()).hi, 3);
        assert_eq!(st.get(Reg::A1.into()).is_singleton(), Some(4));
        let sp = st.get(Reg::SP.into());
        assert!(sp.tz >= 4, "stack pointers are at least 16-byte aligned");
        assert_eq!(sp.hi, diag_asm::STACK_TOP);
    }
}
