//! Rendering a [`Verification`] as human-readable text or
//! machine-readable JSON.
//!
//! Both emitters are byte-deterministic for a given verification: facts
//! arrive pre-sorted by (pc, kind) and the per-PC map iterates in
//! address order. The JSON emitter is hand-rolled, matching the
//! workspace's no-dependency policy (same approach as
//! `diag_analyze::report`).

use std::fmt::Write as _;

use crate::{Fact, Itv, Verdict, Verification};

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a witness interval compactly: a singleton prints as one
/// value, a range as `[lo, hi]`, with a `/2^tz` alignment suffix when
/// one is known.
fn witness(w: &Itv) -> String {
    let mut out = match w.is_singleton() {
        Some(v) => format!("{v:#x}"),
        None => format!("[{:#x}, {:#x}]", w.lo, w.hi),
    };
    if w.tz > 0 && w.is_singleton().is_none() {
        let _ = write!(out, "/2^{}", w.tz);
    }
    out
}

/// Renders the verification as an indented text report. Proved facts are
/// summarized in aggregate; refuted and unknown facts are listed
/// individually (they are what a reader acts on).
pub fn text_report(name: &str, program: &diag_asm::Program, v: &Verification) -> String {
    let mut out = String::new();
    let (proved, refuted, unknown) = v.verdict_counts();
    let _ = writeln!(
        out,
        "{name}: {} stations verified, {} facts ({proved} proved, {refuted} refuted, \
         {unknown} unknown), {} fixpoint transfers, {} widenings{}",
        v.pcs.len(),
        v.facts.len(),
        v.iterations,
        v.widenings,
        if v.imprecise_indirect {
            ", imprecise (indirect jumps)"
        } else {
            ""
        },
    );
    for t in &v.loops {
        let _ = writeln!(
            out,
            "  loop {}: {}",
            program.describe_addr(t.head_pc),
            match t.iterations {
                Some((lo, hi)) if lo == hi => format!("{lo} iterations per entry"),
                Some((lo, hi)) => format!("{lo}..={hi} iterations per entry"),
                None => "trip count underivable".to_string(),
            },
        );
    }
    for f in &v.facts {
        if f.verdict == Verdict::Proved {
            continue;
        }
        let _ = writeln!(
            out,
            "  [{}] {} {}: {}{}",
            f.verdict.name(),
            program.describe_addr(f.pc),
            f.kind.name(),
            f.detail,
            match &f.witness {
                Some(w) => format!(" (witness {})", witness(w)),
                None => String::new(),
            },
        );
    }
    out
}

fn json_fact(out: &mut String, f: &Fact) {
    let _ = write!(
        out,
        "{{\"pc\":{},\"kind\":\"{}\",\"verdict\":\"{}\",",
        f.pc,
        f.kind.name(),
        f.verdict.name(),
    );
    match &f.witness {
        Some(w) => {
            let _ = write!(
                out,
                "\"witness\":{{\"lo\":{},\"hi\":{},\"tz\":{}}},",
                w.lo, w.hi, w.tz
            );
        }
        None => out.push_str("\"witness\":null,"),
    }
    let _ = write!(out, "\"detail\":\"{}\"}}", json_escape(&f.detail));
}

/// Renders the verification as a single-line JSON object (facts, loops,
/// and per-station intervals included).
pub fn json_report(name: &str, v: &Verification) -> String {
    let mut out = String::from("{");
    let (proved, refuted, unknown) = v.verdict_counts();
    let _ = write!(
        out,
        "\"name\":\"{}\",\"threads\":{},\"imprecise_indirect\":{},\"iterations\":{},\
         \"widenings\":{},\"stations\":{},\"summary\":{{\"proved\":{proved},\
         \"refuted\":{refuted},\"unknown\":{unknown}}},",
        json_escape(name),
        v.threads,
        v.imprecise_indirect,
        v.iterations,
        v.widenings,
        v.pcs.len(),
    );
    out.push_str("\"facts\":[");
    for (i, f) in v.facts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_fact(&mut out, f);
    }
    out.push_str("],\"loops\":[");
    for (i, t) in v.loops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"head\":{},\"latch\":{},", t.head_pc, t.latch_pc);
        match t.entry_pc {
            Some(pc) => {
                let _ = write!(out, "\"entry\":{pc},");
            }
            None => out.push_str("\"entry\":null,"),
        }
        match t.iterations {
            Some((lo, hi)) => {
                let _ = write!(out, "\"min\":{lo},\"max\":{hi}}}");
            }
            None => out.push_str("\"min\":null,\"max\":null}"),
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, VerifyOptions};
    use diag_asm::assemble;

    #[test]
    fn reports_are_deterministic() {
        let program =
            assemble("li t0, 0\nloop:\naddi t0, t0, 1\nblt t0, a1, loop\nsw t0, 0(gp)\necall\n")
                .unwrap();
        let v1 = verify(&program, &VerifyOptions::default());
        let v2 = verify(&program, &VerifyOptions::default());
        assert_eq!(json_report("p", &v1), json_report("p", &v2));
        assert_eq!(
            text_report("p", &program, &v1),
            text_report("p", &program, &v2)
        );
        assert!(json_report("p", &v1).contains("\"facts\":["));
    }

    #[test]
    fn witness_formats() {
        assert_eq!(witness(&Itv::exact(16)), "0x10");
        assert_eq!(
            witness(&Itv {
                lo: 0,
                hi: 64,
                tz: 2
            }),
            "[0x0, 0x40]/2^2"
        );
    }
}
