//! The soundness harness: checks that what the simulator *observed* is
//! contained in what the verifier *inferred*.
//!
//! `diag_sim`'s [`Observer`](diag_sim::Observer) hooks record, per
//! retired PC, the min/max of every destination value and effective
//! address plus the weakest alignment seen. Abstract-interpretation
//! soundness demands observed ⊆ inferred at every PC — any violation is
//! a verifier bug, and the integration tests fail loudly on one.

use diag_asm::Program;
use diag_sim::{ObservationLog, ObservedRange};

use crate::{Itv, Verification};

/// Checks one observed range against an inferred interval.
fn contained(what: &str, pc: u32, obs: &ObservedRange, inferred: &Itv, out: &mut Vec<String>) {
    if obs.min < inferred.lo || obs.max > inferred.hi {
        out.push(format!(
            "pc {pc:#x}: observed {what} range [{:#x}, {:#x}] escapes inferred \
             [{:#x}, {:#x}]",
            obs.min, obs.max, inferred.lo, inferred.hi
        ));
    }
    if obs.min_tz < inferred.tz as u32 {
        out.push(format!(
            "pc {pc:#x}: observed {what} alignment 2^{} below inferred 2^{}",
            obs.min_tz, inferred.tz
        ));
    }
}

/// Verifies observed ⊆ inferred for every PC the simulator retired.
/// Returns a list of human-readable violations — empty means sound.
///
/// Checked per retired PC:
/// - the PC appears in the verifier's reachable-station map;
/// - every observed destination value lies in the inferred destination
///   interval (range and alignment);
/// - every observed effective address lies in the inferred address
///   interval.
pub fn check_observations(
    program: &Program,
    v: &Verification,
    log: &ObservationLog,
) -> Vec<String> {
    let mut out = Vec::new();
    for (&pc, obs) in log.pcs() {
        let Some(iv) = v.pcs.get(&pc) else {
            out.push(format!(
                "pc {pc:#x} ({}) retired {} times but the verifier finds it unreachable",
                program.describe_addr(pc),
                obs.execs
            ));
            continue;
        };
        if let Some(d) = &obs.dest {
            match &iv.dest {
                Some(itv) => contained("dest", pc, d, itv, &mut out),
                None => out.push(format!(
                    "pc {pc:#x}: observed a destination write but the verifier inferred none"
                )),
            }
        }
        if let Some(a) = &obs.addr {
            match &iv.addr {
                Some(itv) => contained("addr", pc, a, itv, &mut out),
                None => out.push(format!(
                    "pc {pc:#x}: observed a memory access but the verifier inferred none"
                )),
            }
        }
    }
    out
}

/// Cross-validates derived trip-count bounds against observed execution
/// counts: for a loop whose preheader terminator executed `e` times and
/// whose derived bounds are `[lo, hi]`, the header must have executed
/// between `e*lo` and `e*hi` times. Returns violations — empty means
/// every derived bound contains the measured iteration counts.
pub fn check_loop_counts(v: &Verification, log: &ObservationLog) -> Vec<String> {
    let mut out = Vec::new();
    for t in &v.loops {
        let (Some((lo, hi)), Some(entry_pc)) = (t.iterations, t.entry_pc) else {
            continue;
        };
        let entries = log.execs(entry_pc);
        let head = log.execs(t.head_pc);
        let floor = entries.saturating_mul(lo);
        let ceil = entries.saturating_mul(hi);
        if head < floor || head > ceil {
            out.push(format!(
                "loop {:#x}: {entries} entries with derived bounds [{lo}, {hi}] allow \
                 [{floor}, {ceil}] header executions, observed {head}",
                t.head_pc
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, VerifyOptions};
    use diag_asm::assemble;
    use diag_sim::interp::{arch_step, ArchState};
    use diag_sim::Observer;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Runs `program` on the reference interpreter with an observer
    /// attached, one thread at a time.
    fn observe(program: &Program, threads: usize) -> ObservationLog {
        let shared = Rc::new(RefCell::new(ObservationLog::new()));
        let observer = Observer::to_shared(&shared);
        let mut mem = diag_mem::MainMemory::with_program(program);
        for t in 0..threads {
            let mut state = ArchState::new_thread(program.entry(), t, threads);
            for _ in 0..100_000 {
                if state.halted {
                    break;
                }
                let info = arch_step(&mut state, program, &mut mem, None).unwrap();
                observer.retire(
                    info.pc,
                    info.dest,
                    match info.mem {
                        diag_sim::interp::MemEffect::Load { addr, .. }
                        | diag_sim::interp::MemEffect::Store { addr, .. } => Some(addr),
                        diag_sim::interp::MemEffect::None => None,
                    },
                );
            }
            assert!(state.halted, "program did not halt");
        }
        drop(observer);
        Rc::try_unwrap(shared).unwrap().into_inner()
    }

    #[test]
    fn observed_is_contained_for_a_loop() {
        let src = "li t0, 0\nli t1, 0\nloop:\nadd t1, t1, a0\naddi t0, t0, 1\n\
                   blt t0, a1, loop\nslli t2, a0, 2\nadd t2, t2, gp\nsw t1, 256(t2)\necall\n";
        let program = assemble(src).unwrap();
        let threads = 4;
        let v = verify(
            &program,
            &VerifyOptions {
                threads,
                trap_vector: None,
            },
        );
        let log = observe(&program, threads);
        let violations = check_observations(&program, &v, &log);
        assert!(violations.is_empty(), "{violations:?}");
        let loop_violations = check_loop_counts(&v, &log);
        assert!(loop_violations.is_empty(), "{loop_violations:?}");
    }

    #[test]
    fn an_unsound_interval_is_caught() {
        let program = assemble("li t0, 7\necall\n").unwrap();
        let mut v = verify(&program, &VerifyOptions::default());
        let log = observe(&program, 1);
        // Sanity: the honest verification passes.
        assert!(check_observations(&program, &v, &log).is_empty());
        // Corrupt the inferred interval for the li and expect a report.
        let pc = program.text_base();
        v.pcs.get_mut(&pc).unwrap().dest = Some(Itv {
            lo: 6,
            hi: 6,
            tz: 0,
        });
        let violations = check_observations(&program, &v, &log);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("dest"), "{violations:?}");
    }
}
