//! Per-PC facts derived from the fixpoint, and loop trip-count bounds.
//!
//! Each fact carries a three-valued verdict: `Proved` (holds on every
//! execution), `Refuted` (fails on every execution that reaches the PC),
//! or `Unknown` (the abstraction is too coarse to decide). A `Refuted`
//! memory fact is the static mirror of a simulator trap — the
//! `verify_oob` example demonstrates the two agreeing on the same PC.

use diag_analyze::Cfg;
use diag_asm::{Program, DATA_BASE, STACK_TOP};
use diag_isa::{ArchReg, BranchOp, Inst, INST_BYTES};

use crate::absint::{block_out_states, AbsState, Fixpoint, InstEffect};
use crate::domain::Itv;

/// Three-valued outcome of a verification query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds on every execution reaching the PC.
    Proved,
    /// The property fails on every execution reaching the PC.
    Refuted,
    /// The interval abstraction cannot decide the property.
    Unknown,
}

impl Verdict {
    /// Lower-case label used by both report formats.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Proved => "proved",
            Verdict::Refuted => "refuted",
            Verdict::Unknown => "unknown",
        }
    }
}

/// The property a [`Fact`] speaks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// Every address this access can compute stays inside the data
    /// window `[DATA_BASE, STACK_TOP)`.
    MemBounds,
    /// Every address this access can compute is naturally aligned for
    /// its size.
    MemAlign,
    /// The static control-transfer target lands inside the text segment.
    BranchTarget,
    /// The natural loop headed here has derivable trip-count bounds.
    TripCount,
    /// The station computes the same value on every execution.
    ConstFold,
    /// The block starting here is never entered.
    Unreachable,
}

impl FactKind {
    /// Stable label used by both report formats.
    pub fn name(&self) -> &'static str {
        match self {
            FactKind::MemBounds => "mem-bounds",
            FactKind::MemAlign => "mem-align",
            FactKind::BranchTarget => "branch-target",
            FactKind::TripCount => "trip-count",
            FactKind::ConstFold => "const-fold",
            FactKind::Unreachable => "unreachable",
        }
    }

    /// Ordering code for the deterministic (pc, kind) fact sort.
    pub fn code(&self) -> u8 {
        match self {
            FactKind::MemBounds => 0,
            FactKind::MemAlign => 1,
            FactKind::BranchTarget => 2,
            FactKind::TripCount => 3,
            FactKind::ConstFold => 4,
            FactKind::Unreachable => 5,
        }
    }
}

/// One verification result, anchored to a program counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// The station's address.
    pub pc: u32,
    /// Which property the verdict speaks about.
    pub kind: FactKind,
    /// The three-valued outcome.
    pub verdict: Verdict,
    /// The witness interval backing the verdict (the address interval
    /// for memory facts, the value for const-fold, the trip bounds for
    /// loops).
    pub witness: Option<Itv>,
    /// Human-readable elaboration.
    pub detail: String,
}

/// Trip-count bounds for one natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopTrip {
    /// Address of the loop-header block.
    pub head_pc: u32,
    /// Address of the back-edge terminator.
    pub latch_pc: u32,
    /// Terminator of the unique loop preheader, when the loop has one
    /// with a single out-edge — its execution count equals the number of
    /// times the loop is entered, which the soundness harness uses to
    /// cross-check `iterations` against observed execution counts.
    pub entry_pc: Option<u32>,
    /// Inclusive bounds on body executions per loop entry, when
    /// derivable.
    pub iterations: Option<(u64, u64)>,
}

/// Appends the memory / branch-target / const-fold facts for one
/// instruction, given its abstract effect.
pub(crate) fn inst_facts(
    program: &Program,
    pc: u32,
    inst: &Inst,
    effect: &InstEffect,
    out: &mut Vec<Fact>,
) {
    if let (Some(size), Some(addr)) = (inst.mem_size(), effect.addr) {
        out.push(mem_bounds_fact(pc, size, &addr));
        out.push(mem_align_fact(pc, size, &addr));
    }

    match inst {
        Inst::Branch { .. } | Inst::Jal { .. } => {
            let target = inst
                .static_target(pc)
                .expect("branch/jal has a static target");
            let (verdict, detail) = if program.contains_text_addr(target) {
                (Verdict::Proved, format!("target {target:#x} is in text"))
            } else {
                (
                    Verdict::Refuted,
                    format!("target {target:#x} is outside text"),
                )
            };
            out.push(Fact {
                pc,
                kind: FactKind::BranchTarget,
                verdict,
                witness: Some(Itv::exact(target)),
                detail,
            });
        }
        Inst::Jalr { .. } => out.push(Fact {
            pc,
            kind: FactKind::BranchTarget,
            verdict: Verdict::Unknown,
            witness: None,
            detail: "indirect target".to_string(),
        }),
        Inst::SimtE { l_offset, .. } => {
            let target = pc.wrapping_add(*l_offset as u32).wrapping_add(INST_BYTES);
            let (verdict, detail) = if program.contains_text_addr(target) {
                (
                    Verdict::Proved,
                    format!("loop-back target {target:#x} is in text"),
                )
            } else {
                (
                    Verdict::Refuted,
                    format!("loop-back target {target:#x} is outside text"),
                )
            };
            out.push(Fact {
                pc,
                kind: FactKind::BranchTarget,
                verdict,
                witness: Some(Itv::exact(target)),
                detail,
            });
        }
        _ => {}
    }

    // Constant-foldable: the destination is pinned to a single value
    // even though the station reads at least one live register. (Pure
    // immediate producers like `lui` are constant by construction and
    // not worth reporting.)
    if !matches!(inst, Inst::SimtS { .. } | Inst::SimtE { .. }) {
        if let Some((_, itv)) = effect.dest {
            if let Some(v) = itv.is_singleton() {
                let reads_reg = inst.sources().iter().any(|r: ArchReg| !r.is_zero());
                if reads_reg {
                    out.push(Fact {
                        pc,
                        kind: FactKind::ConstFold,
                        verdict: Verdict::Proved,
                        witness: Some(Itv::exact(v)),
                        detail: format!("always computes {v:#x}"),
                    });
                }
            }
        }
    }
}

/// The in-bounds fact for a `size`-byte access at abstract address
/// `addr`: the access window `[a, a+size)` must stay inside
/// `[DATA_BASE, STACK_TOP)`.
fn mem_bounds_fact(pc: u32, size: u32, addr: &Itv) -> Fact {
    let last_ok = STACK_TOP - size;
    let verdict = if addr.lo >= DATA_BASE && addr.hi <= last_ok {
        Verdict::Proved
    } else if addr.hi < DATA_BASE || addr.lo > last_ok {
        Verdict::Refuted
    } else {
        Verdict::Unknown
    };
    Fact {
        pc,
        kind: FactKind::MemBounds,
        verdict,
        witness: Some(*addr),
        detail: format!(
            "{size}-byte access, addr in [{:#x}, {:#x}], window [{DATA_BASE:#x}, {STACK_TOP:#x})",
            addr.lo, addr.hi
        ),
    }
}

/// The natural-alignment fact for a `size`-byte access.
fn mem_align_fact(pc: u32, size: u32, addr: &Itv) -> Fact {
    let log2 = size.trailing_zeros() as u8;
    // No multiple of `size` lies in [lo, hi] when rounding lo up
    // overshoots hi.
    let first_aligned = (addr.lo as u64).div_ceil(size as u64) * size as u64;
    let verdict = if addr.tz >= log2 {
        Verdict::Proved
    } else if first_aligned > addr.hi as u64 {
        Verdict::Refuted
    } else {
        Verdict::Unknown
    };
    Fact {
        pc,
        kind: FactKind::MemAlign,
        verdict,
        witness: Some(*addr),
        detail: format!(
            "{size}-byte access, addr in [{:#x}, {:#x}] with 2^{} alignment known",
            addr.lo, addr.hi, addr.tz
        ),
    }
}

/// `taken(op, a, b)` can hold for some members (over-approximate).
fn cmp_possible(op: BranchOp, a: &Itv, b: &Itv) -> bool {
    match op {
        BranchOp::Beq => a.lo <= b.hi && b.lo <= a.hi,
        BranchOp::Bne => {
            !(a.is_singleton().is_some() && a.lo == b.lo && b.is_singleton().is_some())
        }
        BranchOp::Bltu => a.lo < b.hi,
        BranchOp::Bgeu => a.hi >= b.lo,
        BranchOp::Blt | BranchOp::Bge => match (a.bias(), b.bias()) {
            (Some(ab), Some(bb)) => cmp_possible(unsigned_of(op), &ab, &bb),
            _ => true,
        },
    }
}

/// `taken(op, a, b)` holds for every member (under-approximate).
fn cmp_certain(op: BranchOp, a: &Itv, b: &Itv) -> bool {
    match op {
        BranchOp::Beq => a.is_singleton().is_some() && b.is_singleton().is_some() && a.lo == b.lo,
        BranchOp::Bne => a.hi < b.lo || b.hi < a.lo,
        BranchOp::Bltu => a.hi < b.lo,
        BranchOp::Bgeu => a.lo >= b.hi,
        BranchOp::Blt | BranchOp::Bge => match (a.bias(), b.bias()) {
            (Some(ab), Some(bb)) => cmp_certain(unsigned_of(op), &ab, &bb),
            _ => false,
        },
    }
}

/// The unsigned comparison equivalent to a signed one after the
/// sign-bias transform.
fn unsigned_of(op: BranchOp) -> BranchOp {
    match op {
        BranchOp::Blt => BranchOp::Bltu,
        BranchOp::Bge => BranchOp::Bgeu,
        other => other,
    }
}

/// Complement comparison: `!taken(op, a, b) == taken(negate(op), a, b)`.
fn negate(op: BranchOp) -> BranchOp {
    match op {
        BranchOp::Beq => BranchOp::Bne,
        BranchOp::Bne => BranchOp::Beq,
        BranchOp::Blt => BranchOp::Bge,
        BranchOp::Bge => BranchOp::Blt,
        BranchOp::Bltu => BranchOp::Bgeu,
        BranchOp::Bgeu => BranchOp::Bltu,
    }
}

/// Derivation cap: loops whose bounds are not pinned within this many
/// abstract unrollings are reported as underivable.
const TRIP_CAP: u64 = 1 << 20;

/// The continue predicate of a bottom-tested loop in canonical form:
/// after the induction lane steps by `c`, the loop re-enters while
/// `op(X, B)` (or `op(B, X)` when the induction lane is the right
/// operand) holds.
struct Canon {
    x: ArchReg,
    b_itv: Itv,
    c: u32,
    op: BranchOp,
    x_left: bool,
}

/// Derives trip-count bounds for every natural loop of `cfg`. Loops that
/// don't fit the canonical shape get `iterations: None`.
pub(crate) fn derive_loops(program: &Program, cfg: &Cfg, fix: &Fixpoint) -> Vec<LoopTrip> {
    cfg.natural_loops()
        .iter()
        .map(|l| {
            let head_pc = cfg.blocks[l.head].start;
            let latch = l.back_edges[0];
            let latch_pc = cfg.blocks[latch]
                .insts
                .last()
                .map(|&(pc, _)| pc)
                .unwrap_or(head_pc);
            let (entry_state, entry_pc) = loop_entry(program, cfg, fix, l.head, &l.body);
            let iterations = if l.back_edges.len() == 1 {
                entry_state
                    .as_ref()
                    .and_then(|st| derive_one(program, cfg, l.head, latch, &l.body, st))
            } else {
                None
            };
            LoopTrip {
                head_pc,
                latch_pc,
                entry_pc,
                iterations,
            }
        })
        .collect()
}

/// Joins the states flowing into the loop head from outside the body,
/// and identifies the unique single-exit preheader terminator when there
/// is one.
fn loop_entry(
    program: &Program,
    cfg: &Cfg,
    fix: &Fixpoint,
    head: usize,
    body: &[usize],
) -> (Option<AbsState>, Option<u32>) {
    let mut state: Option<AbsState> = None;
    let mut outside: Vec<usize> = Vec::new();
    for &p in &cfg.blocks[head].preds {
        if body.contains(&p) {
            continue;
        }
        outside.push(p);
        let Some(ps) = fix.entries[p].clone() else {
            continue;
        };
        for (succ, out) in block_out_states(program, cfg, p, ps) {
            if succ == head {
                state = Some(match state {
                    None => out,
                    Some(s) => s.join(&out),
                });
            }
        }
    }
    let entry_pc = match outside.as_slice() {
        [p] if cfg.blocks[*p].succs.len() == 1 => cfg.blocks[*p].insts.last().map(|&(pc, _)| pc),
        _ => None,
    };
    (state, entry_pc)
}

/// Attempts the canonical trip-count derivation for one loop.
fn derive_one(
    program: &Program,
    cfg: &Cfg,
    head: usize,
    latch: usize,
    body: &[usize],
    entry: &AbsState,
) -> Option<(u64, u64)> {
    // Structural: the body is a single path head -> ... -> latch, so
    // every body block (and in particular the induction step) executes
    // exactly once per iteration.
    let mut chain = vec![head];
    let mut cur = head;
    while cur != latch {
        let succs = &cfg.blocks[cur].succs;
        if succs.len() != 1 {
            return None;
        }
        cur = succs[0];
        if !body.contains(&cur) || chain.contains(&cur) {
            return None;
        }
        chain.push(cur);
    }
    if chain.len() != body.len() {
        return None;
    }

    let head_pc = cfg.blocks[head].start;
    let &(latch_pc, ref term) = cfg.blocks[latch].insts.last()?;
    let writes = |lane: ArchReg| -> usize {
        body.iter()
            .flat_map(|&bb| cfg.blocks[bb].insts.iter())
            .filter(|(_, i)| written_lane(i) == Some(lane))
            .count()
    };
    // Finds the unique `addi X, X, c` when X is stepped exactly once.
    let step_of = |lane: ArchReg| -> Option<u32> {
        if writes(lane) != 1 {
            return None;
        }
        body.iter()
            .flat_map(|&bb| cfg.blocks[bb].insts.iter())
            .find_map(|(_, i)| match *i {
                Inst::OpImm {
                    op: diag_isa::AluOp::Add,
                    rd,
                    rs1,
                    imm,
                } if ArchReg::from(rd) == lane && rs1 == rd && imm != 0 => Some(imm as u32),
                _ => None,
            })
    };

    let canon = match *term {
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let taken = latch_pc.wrapping_add(offset as u32);
            let fall = latch_pc.wrapping_add(INST_BYTES);
            // Continue predicate: the condition under which the latch
            // re-enters the head.
            let cont_op = if taken == head_pc {
                op
            } else if fall == head_pc {
                negate(op)
            } else {
                return None;
            };
            let (a, b) = (ArchReg::from(rs1), ArchReg::from(rs2));
            if let Some(c) = step_of(a) {
                if writes(b) == 0 {
                    Canon {
                        x: a,
                        b_itv: entry.get(b),
                        c,
                        op: cont_op,
                        x_left: true,
                    }
                } else {
                    return None;
                }
            } else if let Some(c) = step_of(b) {
                if writes(a) == 0 {
                    Canon {
                        x: b,
                        b_itv: entry.get(a),
                        c,
                        op: cont_op,
                        x_left: false,
                    }
                } else {
                    return None;
                }
            } else {
                return None;
            }
        }
        Inst::SimtE {
            rc,
            r_end,
            l_offset,
        } => {
            if latch_pc
                .wrapping_add(l_offset as u32)
                .wrapping_add(INST_BYTES)
                != head_pc
            {
                return None;
            }
            let step = match program.decode_at(latch_pc.wrapping_add(l_offset as u32)) {
                Some(Inst::SimtS { r_step, .. }) => {
                    if writes(ArchReg::from(r_step)) != 0 {
                        return None;
                    }
                    entry.get(r_step.into()).is_singleton()?
                }
                _ => return None,
            };
            let rc_lane = ArchReg::from(rc);
            // rc must be stepped only by the simt_e itself.
            if writes(rc_lane) != 1 || step == 0 || writes(ArchReg::from(r_end)) != 0 {
                return None;
            }
            Canon {
                x: rc_lane,
                b_itv: entry.get(r_end.into()),
                c: step,
                op: BranchOp::Blt,
                x_left: true,
            }
        }
        _ => return None,
    };

    // Abstractly unroll: X_k = X_0 + k*c (interval add is sound across
    // wrap), stopping when the continue predicate *certainly* fails (an
    // upper bound: every concrete instance has stopped by then) and
    // recording the first k where it *possibly* fails (a lower bound: no
    // instance can stop earlier).
    let stop_op = negate(canon.op);
    let step = Itv::exact(canon.c);
    let mut x = entry.get(canon.x);
    let mut n_lo: Option<u64> = None;
    for k in 1..=TRIP_CAP {
        x = x.add(&step);
        let (a, b) = if canon.x_left {
            (x, canon.b_itv)
        } else {
            (canon.b_itv, x)
        };
        if n_lo.is_none() && cmp_possible(stop_op, &a, &b) {
            n_lo = Some(k);
        }
        if cmp_certain(stop_op, &a, &b) {
            return Some((n_lo.unwrap_or(k), k));
        }
    }
    None
}

/// The lane an instruction writes, including the implicit `simt_e`
/// counter update that [`Inst::dest`] does not report.
fn written_lane(inst: &Inst) -> Option<ArchReg> {
    match *inst {
        Inst::SimtE { rc, .. } => {
            let lane = ArchReg::from(rc);
            (!lane.is_zero()).then_some(lane)
        }
        _ => inst.dest(),
    }
}
