//! `diag-verify` — an abstract-interpretation static verifier for DiAG
//! guest programs, soundness-checked against the simulator.
//!
//! The verifier runs a worklist fixpoint over [`diag_analyze`]'s control
//! flow graph with an interval domain per architectural lane (a u32
//! range plus a known-alignment bit count, see [`Itv`]), and emits
//! per-PC [`Fact`]s with three-valued verdicts:
//!
//! - **mem-bounds** — every address a load/store can compute stays in
//!   the data window `[DATA_BASE, STACK_TOP)`;
//! - **mem-align** — every such address is naturally aligned;
//! - **branch-target** — static control transfers land in text;
//! - **trip-count** — natural loops have derivable iteration bounds;
//! - **const-fold** — a station computes the same value on every run;
//! - **unreachable** — a block is never entered.
//!
//! Soundness is not taken on faith: `diag_sim`'s [`Observer`] hooks
//! record per-PC value/address ranges as the machines retire
//! instructions, and [`soundness::check_observations`] asserts the
//! observed ranges are contained in the inferred intervals — on every
//! workload, machine model, and thread configuration (see
//! `tests/soundness.rs`).
//!
//! [`Observer`]: diag_sim::Observer

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use diag_analyze::Cfg;
use diag_asm::Program;

pub mod absint;
pub mod domain;
pub mod facts;
pub mod report;
pub mod soundness;

pub use absint::{AbsState, InstEffect};
pub use domain::Itv;
pub use facts::{Fact, FactKind, LoopTrip, Verdict};
pub use report::{json_report, text_report};
pub use soundness::{check_loop_counts, check_observations};

/// Counts completed [`verify`] fixpoint runs, process-wide. The pipeline
/// warm-cache tests assert this stays flat when verifications are served
/// from the artifact cache.
static FIXPOINT_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of [`verify`] fixpoint runs since process start.
pub fn fixpoint_runs() -> u64 {
    FIXPOINT_RUNS.load(Ordering::Relaxed)
}

/// Inputs that change what the verifier can prove (and therefore key the
/// pipeline's verification artifacts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Thread count the wave will launch with: bounds the entry values
    /// of `a0` (thread id), `a1` (thread count), and `sp`.
    pub threads: usize,
    /// Trap vector, mirroring the machine configuration: when set, the
    /// handler block is analyzed under a conservative top state.
    pub trap_vector: Option<u32>,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            threads: 1,
            trap_vector: None,
        }
    }
}

/// The inferred intervals for one station: what it writes and where it
/// touches memory.
#[derive(Debug, Clone, Copy)]
pub struct PcIntervals {
    /// Interval of values written to the destination lane, when the
    /// station writes one.
    pub dest: Option<Itv>,
    /// Interval of effective addresses, for memory stations.
    pub addr: Option<Itv>,
}

/// The full result of statically verifying one program.
#[derive(Debug, Clone)]
pub struct Verification {
    /// Thread count the verification assumed.
    pub threads: usize,
    /// True when the program contains indirect jumps: the CFG cannot be
    /// trusted for reachability, so the verifier degrades to per-station
    /// top-state analysis and suppresses unreachable/trip-count facts.
    pub imprecise_indirect: bool,
    /// Worklist block transfers performed to reach the fixpoint.
    pub iterations: u64,
    /// Lane widenings applied at loop heads.
    pub widenings: u64,
    /// Inferred intervals per reachable station.
    pub pcs: BTreeMap<u32, PcIntervals>,
    /// All facts, sorted by (pc, fact kind).
    pub facts: Vec<Fact>,
    /// Trip-count bounds per natural loop, sorted by head address.
    pub loops: Vec<LoopTrip>,
}

impl Verification {
    /// Number of facts with a [`Verdict::Refuted`] verdict.
    pub fn refuted_count(&self) -> usize {
        self.facts
            .iter()
            .filter(|f| f.verdict == Verdict::Refuted)
            .count()
    }

    /// (proved, refuted, unknown) fact counts.
    pub fn verdict_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.facts {
            match f.verdict {
                Verdict::Proved => c.0 += 1,
                Verdict::Refuted => c.1 += 1,
                Verdict::Unknown => c.2 += 1,
            }
        }
        c
    }

    /// The facts anchored at one station.
    pub fn facts_at(&self, pc: u32) -> impl Iterator<Item = &Fact> {
        self.facts.iter().filter(move |f| f.pc == pc)
    }
}

/// Statically verifies `program` under `opts`, running the abstract
/// interpreter to a fixpoint and deriving all facts.
pub fn verify(program: &Program, opts: &VerifyOptions) -> Verification {
    let cfg = Cfg::build(program, opts.trap_vector);
    let result = if cfg.has_indirect {
        verify_degraded(program, &cfg, opts)
    } else {
        verify_precise(program, &cfg, opts)
    };
    FIXPOINT_RUNS.fetch_add(1, Ordering::Relaxed);
    result
}

/// The precise path: fixpoint over block-entry states, then one
/// deterministic final pass deriving per-PC intervals and facts.
fn verify_precise(program: &Program, cfg: &Cfg, opts: &VerifyOptions) -> Verification {
    let fix = absint::fixpoint(program, cfg, opts.threads, opts.trap_vector);
    let mut pcs = BTreeMap::new();
    let mut facts = Vec::new();

    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(entry) = fix.entries[b].clone() else {
            facts.push(Fact {
                pc: block.start,
                kind: FactKind::Unreachable,
                verdict: Verdict::Proved,
                witness: None,
                detail: format!(
                    "block [{:#x}, {:#x}) is never entered",
                    block.start, block.end
                ),
            });
            continue;
        };
        let mut state = entry;
        for &(pc, ref inst) in &block.insts {
            let effect = absint::transfer_inst(program, pc, inst, &mut state);
            pcs.insert(
                pc,
                PcIntervals {
                    dest: effect.dest.map(|(_, itv)| itv),
                    addr: effect.addr,
                },
            );
            facts::inst_facts(program, pc, inst, &effect, &mut facts);
        }
    }

    let loops = facts::derive_loops(program, cfg, &fix);
    for t in &loops {
        let (verdict, witness, detail) = match t.iterations {
            Some((lo, hi)) => (
                Verdict::Proved,
                Some(Itv::range(
                    lo.min(u32::MAX as u64) as u32,
                    hi.min(u32::MAX as u64) as u32,
                )),
                format!("{lo}..={hi} iterations per entry (latch {:#x})", t.latch_pc),
            ),
            None => (
                Verdict::Unknown,
                None,
                format!("no canonical bound (latch {:#x})", t.latch_pc),
            ),
        };
        facts.push(Fact {
            pc: t.head_pc,
            kind: FactKind::TripCount,
            verdict,
            witness,
            detail,
        });
    }

    facts.sort_by_key(|f| (f.pc, f.kind.code()));
    Verification {
        threads: opts.threads.max(1),
        imprecise_indirect: false,
        iterations: fix.iterations,
        widenings: fix.widenings,
        pcs,
        facts,
        loops,
    }
}

/// The degraded path for programs with indirect jumps: an indirect
/// target can land on any station, so block boundaries can't be trusted
/// and every station is analyzed under a fresh top state. Facts that are
/// still derivable that way (an `sw 0(zero)` is misaligned under *any*
/// state) keep their verdicts; reachability and loop facts are
/// suppressed.
fn verify_degraded(program: &Program, cfg: &Cfg, opts: &VerifyOptions) -> Verification {
    let mut pcs = BTreeMap::new();
    let mut facts = Vec::new();
    let base = program.text_base();
    for i in 0..program.text_len() {
        let pc = base + 4 * i as u32;
        let Some(inst) = program.decode_at(pc) else {
            continue;
        };
        let mut state = AbsState::top();
        let effect = absint::transfer_inst(program, pc, &inst, &mut state);
        pcs.insert(
            pc,
            PcIntervals {
                dest: effect.dest.map(|(_, itv)| itv),
                addr: effect.addr,
            },
        );
        facts::inst_facts(program, pc, &inst, &effect, &mut facts);
    }
    facts.sort_by_key(|f| (f.pc, f.kind.code()));
    let _ = cfg;
    Verification {
        threads: opts.threads.max(1),
        imprecise_indirect: true,
        iterations: 0,
        widenings: 0,
        pcs,
        facts,
        loops: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_asm::assemble;

    #[test]
    fn proves_clean_program() {
        let program = assemble(
            "li t0, 0x100000\nli t1, 5\nloop:\nsw t1, 0(t0)\naddi t0, t0, 4\n\
             addi t1, t1, -1\nbnez t1, loop\necall\n",
        )
        .unwrap();
        let v = verify(&program, &VerifyOptions::default());
        assert_eq!(v.refuted_count(), 0);
        assert!(!v.imprecise_indirect);
        // The store's alignment is provable: base 0x100000 stepped by 4.
        let align = v
            .facts
            .iter()
            .find(|f| f.kind == FactKind::MemAlign)
            .unwrap();
        assert_eq!(align.verdict, Verdict::Proved);
    }

    #[test]
    fn refutes_out_of_window_store() {
        let program = assemble("li t0, 3\nsw zero, 0(t0)\necall\n").unwrap();
        let v = verify(&program, &VerifyOptions::default());
        let pc = program.text_base() + 4;
        let kinds: Vec<_> = v
            .facts_at(pc)
            .filter(|f| f.verdict == Verdict::Refuted)
            .map(|f| f.kind)
            .collect();
        assert!(kinds.contains(&FactKind::MemBounds), "facts: {:?}", v.facts);
        assert!(kinds.contains(&FactKind::MemAlign));
    }

    #[test]
    fn derives_trip_count() {
        let program =
            assemble("li t0, 0\nloop:\naddi t0, t0, 1\nblt t0, a1, loop\necall\n").unwrap();
        let v = verify(
            &program,
            &VerifyOptions {
                threads: 7,
                trap_vector: None,
            },
        );
        assert_eq!(v.loops.len(), 1);
        assert_eq!(v.loops[0].iterations, Some((7, 7)));
        assert!(v.loops[0].entry_pc.is_some());
    }

    #[test]
    fn flags_unreachable_and_const_fold() {
        let program = assemble(
            "li t0, 3\nadd t1, t0, t0\nbeq t1, zero, dead\necall\ndead:\nli t2, 9\necall\n",
        )
        .unwrap();
        let v = verify(&program, &VerifyOptions::default());
        assert!(v
            .facts
            .iter()
            .any(|f| f.kind == FactKind::Unreachable && f.verdict == Verdict::Proved));
        let cf = v
            .facts
            .iter()
            .find(|f| f.kind == FactKind::ConstFold)
            .expect("add of two known constants is const-foldable");
        assert_eq!(cf.witness.and_then(|w| w.is_singleton()), Some(6));
    }

    #[test]
    fn fixpoint_counter_advances() {
        let before = fixpoint_runs();
        let program = assemble("ecall\n").unwrap();
        let _ = verify(&program, &VerifyOptions::default());
        assert!(fixpoint_runs() > before);
    }
}
