//! The verifier's load-bearing guarantee, tested end-to-end: on every
//! bundled workload, on every machine model, in every threading shape,
//! the value and address ranges the simulator *observes* at each station
//! are contained in the intervals the verifier *infers* — observed ⊆
//! inferred. A single violation means the abstract semantics diverged
//! from the architectural semantics and every `Proved` verdict is
//! suspect.
//!
//! The same runs also cross-validate the derived trip counts (measured
//! iteration counts must fall inside the inferred bounds) and pin the
//! property that the stock corpus is refutation-free: a `Refuted` fact
//! on a program that completes without a `SimError` would be a verifier
//! bug by definition.

use std::cell::RefCell;
use std::rc::Rc;

use diag_asm::Program;
use diag_baseline::{InOrder, O3Config, OooCpu};
use diag_core::{Diag, DiagConfig};
use diag_sim::{Machine, ObservationLog, Observer, SharedObservations};
use diag_verify::{check_loop_counts, check_observations, verify, Verdict, VerifyOptions};
use diag_workloads::Params;

/// Runs `program` to completion on `machine` with the observer attached
/// and returns the per-PC observation log. Takes the machine by value:
/// rings/cores keep observer clones from wave launch, so the machine
/// must drop before the log can be taken out of its cell.
fn observe(
    name: &str,
    mut machine: Box<dyn Machine>,
    program: &Program,
    threads: usize,
) -> ObservationLog {
    let shared: SharedObservations = Rc::new(RefCell::new(ObservationLog::new()));
    machine.set_observer(Observer::to_shared(&shared));
    machine
        .run(program, threads)
        .unwrap_or_else(|e| panic!("{name} failed on {}: {e}", machine.name()));
    drop(machine);
    Rc::try_unwrap(shared)
        .expect("machine retained the observation log")
        .into_inner()
}

/// The three machine models, freshly constructed per run.
fn machines() -> Vec<(&'static str, Box<dyn Machine>)> {
    vec![
        (
            "diag",
            Box::new(Diag::new(DiagConfig::f4c32())) as Box<dyn Machine>,
        ),
        (
            "ooo",
            Box::new(OooCpu::new(O3Config::aggressive_8wide(), 4)),
        ),
        ("inorder", Box::new(InOrder::new())),
    ]
}

/// The threading shapes exercised: single-thread, multi-thread, and (for
/// capable kernels) the SIMT-annotated variant.
fn shapes() -> Vec<Params> {
    vec![
        Params::tiny(),
        Params::tiny().with_threads(4),
        Params::tiny().with_threads(4).with_simt(true),
    ]
}

#[test]
fn observed_ranges_are_contained_in_inferred_intervals() {
    let mut runs = 0usize;
    for spec in diag_workloads::all() {
        for params in shapes() {
            if params.simt && !spec.simt_capable {
                continue;
            }
            let built = spec
                .build(&params)
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", spec.name));
            let opts = VerifyOptions {
                threads: params.threads,
                trap_vector: None,
            };
            let v = verify(&built.program, &opts);
            for (label, machine) in machines() {
                let log = observe(spec.name, machine, &built.program, params.threads);
                assert!(
                    !log.pcs().is_empty(),
                    "{} on {label}: observer recorded nothing",
                    spec.name
                );
                let violations = check_observations(&built.program, &v, &log);
                assert!(
                    violations.is_empty(),
                    "{} on {label} (threads={}, simt={}): observed values escape \
                     inferred intervals:\n{}",
                    spec.name,
                    params.threads,
                    params.simt,
                    violations.join("\n")
                );
                let loop_violations = check_loop_counts(&v, &log);
                assert!(
                    loop_violations.is_empty(),
                    "{} on {label} (threads={}, simt={}): measured iteration counts \
                     escape inferred trip-count bounds:\n{}",
                    spec.name,
                    params.threads,
                    params.simt,
                    loop_violations.join("\n")
                );
                runs += 1;
            }
        }
    }
    // 18 workloads × ≥2 shapes × 3 machines — a shrunk corpus would
    // silently weaken the guarantee.
    assert!(runs >= 100, "only {runs} soundness runs executed");
}

/// A program that completes without a `SimError` must not carry a single
/// `Refuted` fact: refutation claims *every* concrete execution faults,
/// and here is one that did not.
#[test]
fn completing_programs_are_never_refuted() {
    for spec in diag_workloads::all() {
        for params in shapes() {
            if params.simt && !spec.simt_capable {
                continue;
            }
            let built = spec
                .build(&params)
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", spec.name));
            let mut machine = InOrder::new();
            machine
                .run(&built.program, params.threads)
                .unwrap_or_else(|e| panic!("{}: run failed: {e}", spec.name));
            let opts = VerifyOptions {
                threads: params.threads,
                trap_vector: None,
            };
            let v = verify(&built.program, &opts);
            let refuted: Vec<_> = v
                .facts
                .iter()
                .filter(|f| f.verdict == Verdict::Refuted)
                .collect();
            assert!(
                refuted.is_empty(),
                "{} (threads={}, simt={}) completed cleanly but carries refuted \
                 facts: {:?}",
                spec.name,
                params.threads,
                params.simt,
                refuted
            );
        }
    }
}
