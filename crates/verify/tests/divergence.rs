//! The verifier flags the *exact* station where a poisoned-reference run
//! diverges.
//!
//! The kernel accumulates an uninitialized lane (`t1`) into another
//! (`s0`). Under the workspace's zero-init convention the result is an
//! accidentally-correct zero, so result checking cannot see the bug —
//! but a reference interpreter whose uninitialized lanes start poisoned
//! diverges at the first read of the poison. The verifier, which models
//! the zero-init entry state exactly, proves the accumulating station
//! always writes the constant 0 — a `const-fold` fact whose truth
//! *depends on the convention*. This test pins that the fact lands on
//! precisely the station where the poisoned run first writes a different
//! value: the static proof and the dynamic divergence name the same pc.

use diag_asm::{assemble, Program};
use diag_isa::ArchReg;
use diag_mem::MainMemory;
use diag_sim::interp::{arch_step, ArchState};
use diag_verify::{verify, FactKind, Verdict, VerifyOptions};

const POISON: u32 = 0xDEAD_BEEF;

const KERNEL: &str = "
    addi t0, zero, 10
loop:
    add  s0, s0, t1
    addi t0, t0, -1
    bnez t0, loop
    sw   s0, 0(zero)
    ecall
";

/// Steps a zero-init and a poisoned interpreter in lockstep and returns
/// the pc of the first step whose destination write differs.
fn first_divergence(program: &Program) -> u32 {
    let mut clean = ArchState::new_thread(program.entry(), 0, 1);
    let mut dirty = ArchState::new_thread(program.entry(), 0, 1);
    let keep = [ArchReg::new(10), ArchReg::new(11), ArchReg::new(2)];
    for i in 1..dirty.regs.len() {
        if !keep.iter().any(|r| r.index() == i) {
            dirty.regs[i] = POISON;
        }
    }
    let mut clean_mem = MainMemory::with_program(program);
    let mut dirty_mem = MainMemory::with_program(program);
    loop {
        let a = arch_step(&mut clean, program, &mut clean_mem, None).expect("clean step");
        let b = arch_step(&mut dirty, program, &mut dirty_mem, None).expect("poisoned step");
        assert_eq!(a.pc, b.pc, "control flow diverged before a value did");
        if a.dest.map(|(_, v)| v) != b.dest.map(|(_, v)| v) {
            return a.pc;
        }
        assert!(!clean.halted, "no divergence before halt");
    }
}

#[test]
fn const_fold_fact_lands_on_the_divergence_pc() {
    let program = assemble(KERNEL).expect("kernel assembles");
    let divergence_pc = first_divergence(&program);

    let v = verify(&program, &VerifyOptions::default());
    let fact = v
        .facts
        .iter()
        .find(|f| f.pc == divergence_pc && f.kind == FactKind::ConstFold)
        .unwrap_or_else(|| {
            panic!(
                "no const-fold fact at divergence pc {divergence_pc:#x}; facts: {:?}",
                v.facts
            )
        });
    assert_eq!(fact.verdict, Verdict::Proved);
    let witness = fact.witness.expect("const-fold carries a witness");
    assert_eq!(
        (witness.lo, witness.hi),
        (0, 0),
        "the convention-dependent constant is zero"
    );
}
