//! A source lint the toolchain cannot express: `unwrap()` / `expect()`
//! are forbidden in the simulator's non-test code.
//!
//! The machines (`crates/core`, `crates/sim`) are library code driven by
//! arbitrary guest programs — a panic there takes down a whole sweep and
//! masks the `SimError` that should have been reported. The artifact
//! store (`crates/pipeline`) and the server (`crates/serve`) are shared
//! by many concurrent requests — a panic there poisons locks or drops a
//! connection instead of producing an error frame. The harness
//! (`crates/bench`) and energy models (`crates/power`) back every
//! figure and the autotuner — a panic there aborts a sweep that the
//! runner's error taxonomy should have survived. The observability
//! stack (`crates/trace`, `crates/profile`, `crates/telemetry`) is
//! attached to live runs precisely to explain them — a panic inside a
//! tracer, profiler, or metrics hook destroys the run it was observing.
//! Clippy's `unwrap_used` lint cannot be adopted piecemeal without
//! attribute noise at every test module, so this is a small,
//! dependency-free scanner with the policy hard-coded:
//!
//! - only `crates/core/src`, `crates/sim/src`, `crates/pipeline/src`,
//!   `crates/serve/src`, `crates/bench/src`, `crates/power/src`,
//!   `crates/trace/src`, `crates/profile/src`, and
//!   `crates/telemetry/src` are in scope;
//! - `#[cfg(test)]` items (and everything nested inside them) are
//!   exempt;
//! - a deliberate use is allowed by writing `// lint: allow(unwrap)` on
//!   the same line or the line above, where the reviewer expects a
//!   justification.

use std::path::Path;
use std::process::ExitCode;

/// Directories scanned, relative to the workspace root.
const SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/pipeline/src",
    "crates/serve/src",
    "crates/bench/src",
    "crates/power/src",
    "crates/trace/src",
    "crates/profile/src",
    "crates/telemetry/src",
];

/// The escape-hatch marker.
const ALLOW: &str = "lint: allow(unwrap)";

/// One forbidden call site.
struct Offense {
    path: String,
    line: usize,
    what: &'static str,
}

/// Runs the lint over `root`. Prints every offense; empty output and a
/// success exit mean the tree is clean.
pub fn run(root: &Path) -> ExitCode {
    let mut offenses = Vec::new();
    let mut files = 0usize;
    for dir in SCOPE {
        let dir = root.join(dir);
        let mut paths = Vec::new();
        collect_rs_files(&dir, &mut paths);
        paths.sort();
        for path in paths {
            files += 1;
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("xtask lint: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            scan_file(&rel, &text, &mut offenses);
        }
    }
    if files == 0 {
        eprintln!("xtask lint: found no source files under {SCOPE:?} — wrong root?");
        return ExitCode::FAILURE;
    }
    for o in &offenses {
        println!(
            "{}:{}: `{}` in non-test simulator code (return a SimError or \
             justify with `// {ALLOW}`)",
            o.path, o.line, o.what
        );
    }
    if offenses.is_empty() {
        println!("xtask lint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} offense(s)", offenses.len());
        ExitCode::FAILURE
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans one file, appending offenses. Test code is excluded by brace
/// tracking: a `#[cfg(test)]` attribute exempts the next item's whole
/// block.
fn scan_file(path: &str, text: &str, out: &mut Vec<Offense>) {
    let mut depth: i64 = 0;
    // Depth *outside* the current `#[cfg(test)]` block, when inside one.
    let mut test_until: Option<i64> = None;
    // A `#[cfg(test)]` was seen and its item's opening brace is pending.
    let mut pending_cfg_test = false;
    let mut prev_line_allows = false;

    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        let allows = raw.contains(ALLOW);
        // Comment-only lines contribute neither braces nor calls (doc
        // comments routinely show `.unwrap()` in examples — those are
        // compiled by rustdoc as test code anyway).
        if trimmed.starts_with("//") {
            prev_line_allows = allows;
            continue;
        }
        let code = match trimmed.find("//") {
            Some(i) => &trimmed[..i],
            None => trimmed,
        };

        if test_until.is_none() {
            if code.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            }
            let in_test_item = pending_cfg_test;
            if !in_test_item
                && (code.contains(".unwrap()") || code.contains(".expect("))
                && !allows
                && !prev_line_allows
            {
                let what = if code.contains(".unwrap()") {
                    "unwrap()"
                } else {
                    "expect()"
                };
                out.push(Offense {
                    path: path.to_string(),
                    line: idx + 1,
                    what,
                });
            }
            let before = depth;
            depth += brace_delta(code);
            if pending_cfg_test && depth > before {
                // The attribute's item opened its block on this line.
                test_until = Some(before);
                pending_cfg_test = false;
            }
        } else {
            depth += brace_delta(code);
            if test_until.is_some_and(|d| depth <= d) {
                test_until = None;
            }
        }
        prev_line_allows = allows;
    }
}

/// Net brace nesting change of `code`, ignoring braces inside string,
/// raw-string, and char literals (format-string braces are balanced and
/// cancel out; the literal cases that are not, like `'{'` or
/// `r#"{"k":1}"#`, must not skew the count).
fn brace_delta(code: &str) -> i64 {
    let chars: Vec<char> = code.chars().collect();
    let mut delta = 0i64;
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                // Ordinary string: skip to the closing quote, honoring
                // escapes.
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => break,
                        _ => i += 1,
                    }
                }
            }
            'r' if i == 0 || (!chars[i - 1].is_alphanumeric() && chars[i - 1] != '_') => {
                // Possible raw string `r#*"…"#*`: skip to the closing
                // quote followed by the same number of hashes.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < chars.len() && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < chars.len() && chars[j] == '"' {
                    j += 1;
                    while j < chars.len() {
                        if chars[j] == '"'
                            && chars[j + 1..].iter().take_while(|c| **c == '#').count() >= hashes
                        {
                            j += hashes;
                            break;
                        }
                        j += 1;
                    }
                    i = j;
                }
            }
            // A lifetime tick (`&'a`) is followed by an identifier and
            // no closing quote; only treat `'` as a char literal when
            // the quote closes within two characters (`'x'`, `'\\n'`).
            '\'' => {
                let (skip, is_char) = match chars.get(i + 1) {
                    Some('\\') => (3, true),
                    Some(_) => (2, chars.get(i + 2) == Some(&'\'')),
                    None => (0, false),
                };
                if is_char {
                    i += skip;
                }
            }
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
        i += 1;
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offenses(text: &str) -> Vec<usize> {
        let mut out = Vec::new();
        scan_file("f.rs", text, &mut out);
        out.iter().map(|o| o.line).collect()
    }

    #[test]
    fn flags_unwrap_and_expect_in_library_code() {
        let text = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n}\n";
        assert_eq!(offenses(text), vec![2, 3]);
    }

    #[test]
    fn exempts_cfg_test_modules_entirely() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        x.unwrap();\n    }\n}\nfn h() { y.unwrap(); }\n";
        assert_eq!(offenses(text), vec![8]);
    }

    #[test]
    fn honors_the_allow_marker_on_either_line() {
        let same = "fn f() { x.unwrap(); } // lint: allow(unwrap) — infallible here\n";
        assert_eq!(offenses(same), Vec::<usize>::new());
        let above = "// lint: allow(unwrap) — infallible here\nfn f() { x.unwrap(); }\n";
        assert_eq!(offenses(above), Vec::<usize>::new());
    }

    #[test]
    fn ignores_comments_and_doc_examples() {
        let text = "/// x.unwrap();\n// x.unwrap();\nfn f() {}\n";
        assert_eq!(offenses(text), Vec::<usize>::new());
    }

    #[test]
    fn string_braces_do_not_derail_block_tracking() {
        let text = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }\n";
        assert_eq!(offenses(text), vec![6]);
    }

    #[test]
    fn raw_string_braces_do_not_derail_block_tracking() {
        // JSON-heavy tests write raw strings like r#"{"verb":"x"}"# —
        // their unbalanced-looking braces must not end the cfg(test)
        // exemption early.
        let text = "#[cfg(test)]\nmod tests {\n    fn g() {\n        let s = r#\"{\"verb\":\"dance\"}}}\"#;\n        parse(s).unwrap();\n    }\n}\nfn h() { y.unwrap(); }\n";
        assert_eq!(offenses(text), vec![8]);
    }

    #[test]
    fn brace_delta_handles_literals() {
        assert_eq!(brace_delta("fn f() {"), 1);
        assert_eq!(brace_delta("}"), -1);
        assert_eq!(brace_delta("let s = r#\"}}}\"#;"), 0);
        assert_eq!(brace_delta("let s = r\"}\";"), 0);
        assert_eq!(brace_delta("let c = '{';"), 0);
        assert_eq!(brace_delta("let c = '\\n'; {"), 1);
        assert_eq!(brace_delta("write(\"{\\\"k\\\": 1}}\")"), 0);
        // An identifier ending in `r` before a string is not a raw
        // string prefix.
        assert_eq!(brace_delta("var\"}\""), 0);
    }
}
