//! Workspace automation (`cargo xtask` pattern). Dependency-free on
//! purpose: these tasks run in CI before anything else is trusted.
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lint;

const USAGE: &str = "usage: cargo run -p xtask -- <task>

tasks:
  lint    forbid unwrap()/expect() in simulator non-test code
          (escape hatch: `// lint: allow(unwrap)` on the same or the
          preceding line, with a justification)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&workspace_root()),
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: xtask always lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}
