//! Randomized property tests: every valid instruction round-trips through
//! the 32-bit wire format, and decoding is total (never panics) over
//! arbitrary words. Driven by the in-workspace [`SplitMix64`] generator so
//! the suite runs fully offline; the `heavy` feature scales the case count
//! up for soak runs.

use diag_isa::prng::SplitMix64;
use diag_isa::{
    decode, encode, AluOp, BranchOp, FReg, FmaOp, FpCmpOp, FpOp, FpToIntOp, Inst, IntToFpOp,
    LoadOp, Reg, StoreOp,
};

#[cfg(not(feature = "heavy"))]
const CASES: u64 = 2_000;
#[cfg(feature = "heavy")]
const CASES: u64 = 200_000;

fn any_reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(rng.gen_range(0u8..32))
}

fn any_freg(rng: &mut SplitMix64) -> FReg {
    FReg::new(rng.gen_range(0u8..32))
}

const ALU_OPS: [AluOp; 18] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Mulhsu,
    AluOp::Mulhu,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
];

fn any_alu_op(rng: &mut SplitMix64) -> AluOp {
    ALU_OPS[rng.gen_range(0usize..ALU_OPS.len())]
}

fn any_imm_alu_op(rng: &mut SplitMix64) -> AluOp {
    loop {
        let op = any_alu_op(rng);
        if op.has_imm_form() {
            return op;
        }
    }
}

fn imm12(rng: &mut SplitMix64) -> i32 {
    rng.gen_range(-2048i32..2048)
}

/// Draws one instruction uniformly across the valid instruction space.
fn any_inst(rng: &mut SplitMix64) -> Inst {
    const BRANCH_OPS: [BranchOp; 6] = [
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blt,
        BranchOp::Bge,
        BranchOp::Bltu,
        BranchOp::Bgeu,
    ];
    const LOAD_OPS: [LoadOp; 5] = [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu];
    const STORE_OPS: [StoreOp; 3] = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw];
    const FP_OPS: [FpOp; 9] = [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::SgnJ,
        FpOp::SgnJN,
        FpOp::SgnJX,
        FpOp::Min,
        FpOp::Max,
    ];
    const FMA_OPS: [FmaOp; 4] = [FmaOp::MAdd, FmaOp::MSub, FmaOp::NMSub, FmaOp::NMAdd];
    const FCMP_OPS: [FpCmpOp; 3] = [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le];
    const F2I_OPS: [FpToIntOp; 4] = [
        FpToIntOp::CvtW,
        FpToIntOp::CvtWu,
        FpToIntOp::MvXW,
        FpToIntOp::Class,
    ];
    const I2F_OPS: [IntToFpOp; 3] = [IntToFpOp::CvtW, IntToFpOp::CvtWu, IntToFpOp::MvWX];

    match rng.gen_range(0u32..21) {
        0 => Inst::Lui {
            rd: any_reg(rng),
            imm: rng.gen_range(-(1i32 << 19)..(1 << 19)) << 12,
        },
        1 => Inst::Auipc {
            rd: any_reg(rng),
            imm: rng.gen_range(-(1i32 << 19)..(1 << 19)) << 12,
        },
        2 => Inst::Jal {
            rd: any_reg(rng),
            offset: rng.gen_range(-(1i32 << 19)..(1 << 19)) * 2,
        },
        3 => Inst::Jalr {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: imm12(rng),
        },
        4 => Inst::Branch {
            op: BRANCH_OPS[rng.gen_range(0usize..BRANCH_OPS.len())],
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: imm12(rng) * 2,
        },
        5 => Inst::Load {
            op: LOAD_OPS[rng.gen_range(0usize..LOAD_OPS.len())],
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: imm12(rng),
        },
        6 => Inst::Store {
            op: STORE_OPS[rng.gen_range(0usize..STORE_OPS.len())],
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: imm12(rng),
        },
        7 => {
            let op = any_imm_alu_op(rng);
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm12(rng) & 0x1F,
                _ => imm12(rng),
            };
            Inst::OpImm {
                op,
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm,
            }
        }
        8 => Inst::Op {
            op: any_alu_op(rng),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        9 => Inst::Fence,
        10 => Inst::Ecall,
        11 => Inst::Ebreak,
        12 => Inst::Flw {
            rd: any_freg(rng),
            rs1: any_reg(rng),
            offset: imm12(rng),
        },
        13 => Inst::Fsw {
            rs1: any_reg(rng),
            rs2: any_freg(rng),
            offset: imm12(rng),
        },
        14 => {
            if rng.gen::<bool>() {
                Inst::FpOp {
                    op: FP_OPS[rng.gen_range(0usize..FP_OPS.len())],
                    rd: any_freg(rng),
                    rs1: any_freg(rng),
                    rs2: any_freg(rng),
                }
            } else {
                Inst::FpOp {
                    op: FpOp::Sqrt,
                    rd: any_freg(rng),
                    rs1: any_freg(rng),
                    rs2: FReg::new(0),
                }
            }
        }
        15 => Inst::FpFma {
            op: FMA_OPS[rng.gen_range(0usize..FMA_OPS.len())],
            rd: any_freg(rng),
            rs1: any_freg(rng),
            rs2: any_freg(rng),
            rs3: any_freg(rng),
        },
        16 => Inst::FpCmp {
            op: FCMP_OPS[rng.gen_range(0usize..FCMP_OPS.len())],
            rd: any_reg(rng),
            rs1: any_freg(rng),
            rs2: any_freg(rng),
        },
        17 => Inst::FpToInt {
            op: F2I_OPS[rng.gen_range(0usize..F2I_OPS.len())],
            rd: any_reg(rng),
            rs1: any_freg(rng),
        },
        18 => Inst::IntToFp {
            op: I2F_OPS[rng.gen_range(0usize..I2F_OPS.len())],
            rd: any_freg(rng),
            rs1: any_reg(rng),
        },
        19 => Inst::SimtS {
            rc: any_reg(rng),
            r_step: any_reg(rng),
            r_end: any_reg(rng),
            interval: rng.gen_range(1u8..128),
        },
        _ => Inst::SimtE {
            rc: any_reg(rng),
            r_end: any_reg(rng),
            l_offset: imm12(rng),
        },
    }
}

/// decode(encode(inst)) == inst for the entire valid instruction space.
#[test]
fn encode_decode_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0xD1A6_0001);
    for case in 0..CASES {
        let inst = any_inst(&mut rng);
        let word = encode(&inst);
        let back = decode(word).expect("encoded instruction must decode");
        assert_eq!(back, inst, "case {case}: {inst:?} -> {word:#010x}");
    }
}

/// Decoding never panics, for any 32-bit word.
#[test]
fn decode_is_total() {
    let mut rng = SplitMix64::seed_from_u64(0xD1A6_0002);
    for _ in 0..CASES {
        let _ = decode(rng.gen::<u32>());
    }
    // Plus the corners.
    for word in [0u32, u32::MAX, 0x7FFF_FFFF, 0x8000_0000] {
        let _ = decode(word);
    }
}

/// If an arbitrary word decodes, re-encoding produces a word that decodes
/// to the same instruction (encodings are canonical up to ignored fields
/// like rounding modes and fence operands).
#[test]
fn decode_encode_stable() {
    let mut rng = SplitMix64::seed_from_u64(0xD1A6_0003);
    for _ in 0..CASES {
        let word = rng.gen::<u32>();
        if let Ok(inst) = decode(word) {
            let word2 = encode(&inst);
            assert_eq!(
                decode(word2).expect("re-encoded word must decode"),
                inst,
                "{word:#010x} -> {inst:?} -> {word2:#010x}"
            );
        }
    }
}

/// Disassembly text is nonempty and starts with a lowercase mnemonic.
#[test]
fn disasm_nonempty() {
    let mut rng = SplitMix64::seed_from_u64(0xD1A6_0004);
    for _ in 0..CASES {
        let text = any_inst(&mut rng).to_string();
        assert!(!text.is_empty());
        let first = text.chars().next().unwrap();
        assert!(first.is_ascii_lowercase(), "mnemonic: {text}");
    }
}
