//! Property tests: every valid instruction round-trips through the 32-bit
//! wire format, and decoding is total (never panics) over arbitrary words.

use diag_isa::{
    decode, encode, AluOp, BranchOp, FReg, FmaOp, FpCmpOp, FpOp, FpToIntOp, Inst, IntToFpOp,
    LoadOp, Reg, StoreOp,
};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn any_imm_alu_op() -> impl Strategy<Value = AluOp> {
    any_alu_op().prop_filter("must have an immediate form", |op| op.has_imm_form())
}

fn any_branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Bge),
        Just(BranchOp::Bltu),
        Just(BranchOp::Bgeu),
    ]
}

fn any_load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
    ]
}

fn any_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)]
}

fn any_fp_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::Div),
        Just(FpOp::SgnJ),
        Just(FpOp::SgnJN),
        Just(FpOp::SgnJX),
        Just(FpOp::Min),
        Just(FpOp::Max),
    ]
}

/// Strategy over the entire valid instruction space.
fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_reg(), -(1i32 << 19)..(1 << 19))
            .prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
        (any_reg(), -(1i32 << 19)..(1 << 19))
            .prop_map(|(rd, v)| Inst::Auipc { rd, imm: v << 12 }),
        (any_reg(), -(1i32 << 19)..(1 << 19))
            .prop_map(|(rd, half)| Inst::Jal { rd, offset: half * 2 }),
        (any_reg(), any_reg(), -2048i32..=2047)
            .prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (any_branch_op(), any_reg(), any_reg(), -2048i32..=2047)
            .prop_map(|(op, rs1, rs2, half)| Inst::Branch { op, rs1, rs2, offset: half * 2 }),
        (any_load_op(), any_reg(), any_reg(), -2048i32..=2047)
            .prop_map(|(op, rd, rs1, offset)| Inst::Load { op, rd, rs1, offset }),
        (any_store_op(), any_reg(), any_reg(), -2048i32..=2047)
            .prop_map(|(op, rs1, rs2, offset)| Inst::Store { op, rs1, rs2, offset }),
        (any_imm_alu_op(), any_reg(), any_reg(), -2048i32..=2047).prop_map(
            |(op, rd, rs1, imm)| {
                let imm = match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => imm & 0x1F,
                    _ => imm,
                };
                Inst::OpImm { op, rd, rs1, imm }
            }
        ),
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Op { op, rd, rs1, rs2 }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (any_freg(), any_reg(), -2048i32..=2047)
            .prop_map(|(rd, rs1, offset)| Inst::Flw { rd, rs1, offset }),
        (any_reg(), any_freg(), -2048i32..=2047)
            .prop_map(|(rs1, rs2, offset)| Inst::Fsw { rs1, rs2, offset }),
        (any_fp_op(), any_freg(), any_freg(), any_freg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::FpOp { op, rd, rs1, rs2 }),
        (any_freg(), any_freg()).prop_map(|(rd, rs1)| Inst::FpOp {
            op: FpOp::Sqrt,
            rd,
            rs1,
            rs2: FReg::new(0)
        }),
        (
            prop_oneof![
                Just(FmaOp::MAdd),
                Just(FmaOp::MSub),
                Just(FmaOp::NMSub),
                Just(FmaOp::NMAdd)
            ],
            any_freg(),
            any_freg(),
            any_freg(),
            any_freg()
        )
            .prop_map(|(op, rd, rs1, rs2, rs3)| Inst::FpFma { op, rd, rs1, rs2, rs3 }),
        (
            prop_oneof![Just(FpCmpOp::Eq), Just(FpCmpOp::Lt), Just(FpCmpOp::Le)],
            any_reg(),
            any_freg(),
            any_freg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::FpCmp { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(FpToIntOp::CvtW),
                Just(FpToIntOp::CvtWu),
                Just(FpToIntOp::MvXW),
                Just(FpToIntOp::Class)
            ],
            any_reg(),
            any_freg()
        )
            .prop_map(|(op, rd, rs1)| Inst::FpToInt { op, rd, rs1 }),
        (
            prop_oneof![Just(IntToFpOp::CvtW), Just(IntToFpOp::CvtWu), Just(IntToFpOp::MvWX)],
            any_freg(),
            any_reg()
        )
            .prop_map(|(op, rd, rs1)| Inst::IntToFp { op, rd, rs1 }),
        (any_reg(), any_reg(), any_reg(), 1u8..=127)
            .prop_map(|(rc, r_step, r_end, interval)| Inst::SimtS { rc, r_step, r_end, interval }),
        (any_reg(), any_reg(), -2048i32..=2047)
            .prop_map(|(rc, r_end, l_offset)| Inst::SimtE { rc, r_end, l_offset }),
    ]
}

proptest! {
    /// decode(encode(inst)) == inst for the entire valid instruction space.
    #[test]
    fn encode_decode_round_trip(inst in any_inst()) {
        let word = encode(&inst);
        let back = decode(word).expect("encoded instruction must decode");
        prop_assert_eq!(back, inst);
    }

    /// Decoding never panics, for any 32-bit word.
    #[test]
    fn decode_is_total(word in any::<u32>()) {
        let _ = decode(word);
    }

    /// If an arbitrary word decodes, re-encoding produces a word that decodes
    /// to the same instruction (encodings are canonical up to ignored fields
    /// like rounding modes and fence operands).
    #[test]
    fn decode_encode_stable(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            let word2 = encode(&inst);
            prop_assert_eq!(decode(word2).expect("re-encoded word must decode"), inst);
        }
    }

    /// Disassembly text is nonempty and starts with a lowercase mnemonic.
    #[test]
    fn disasm_nonempty(inst in any_inst()) {
        let text = inst.to_string();
        prop_assert!(!text.is_empty());
        let first = text.chars().next().unwrap();
        prop_assert!(first.is_ascii_lowercase());
    }
}
