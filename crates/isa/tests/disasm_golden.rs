//! Golden round-trip: every [`Inst`] variant (and every operation of every
//! op sub-enum) must disassemble to text the assembler parses back to the
//! identical instruction.
//!
//! The coverage bookkeeping is deliberately written with **exhaustive
//! matches and no fallback arms**: adding a variant to `Inst` or to any op
//! enum fails compilation here until an exemplar is added, so the
//! round-trip property can never silently lose coverage.

use diag_isa::{
    decode, AluOp, BranchOp, FReg, FmaOp, FpCmpOp, FpOp, FpToIntOp, Inst, IntToFpOp, LoadOp, Reg,
    StoreOp,
};

/// Maps each `Inst` variant to a dense slot index. Exhaustive on purpose:
/// a new variant fails compilation until it gets a slot and an exemplar.
fn variant_slot(inst: &Inst) -> usize {
    match inst {
        Inst::Lui { .. } => 0,
        Inst::Auipc { .. } => 1,
        Inst::Jal { .. } => 2,
        Inst::Jalr { .. } => 3,
        Inst::Branch { .. } => 4,
        Inst::Load { .. } => 5,
        Inst::Store { .. } => 6,
        Inst::OpImm { .. } => 7,
        Inst::Op { .. } => 8,
        Inst::Fence => 9,
        Inst::Ecall => 10,
        Inst::Ebreak => 11,
        Inst::Flw { .. } => 12,
        Inst::Fsw { .. } => 13,
        Inst::FpOp { .. } => 14,
        Inst::FpFma { .. } => 15,
        Inst::FpCmp { .. } => 16,
        Inst::FpToInt { .. } => 17,
        Inst::IntToFp { .. } => 18,
        Inst::SimtS { .. } => 19,
        Inst::SimtE { .. } => 20,
    }
}
const VARIANT_COUNT: usize = 21;

/// Defines `fn $name() -> Vec<$ty>` listing every variant of an op enum.
/// The inner `match` has no wildcard: extending the enum breaks the build
/// here until the list is updated.
macro_rules! all_ops {
    ($name:ident, $ty:ty, [$($v:path),+ $(,)?]) => {
        fn $name() -> Vec<$ty> {
            let exhaustive = |op: $ty| match op {
                $($v => (),)+
            };
            let all = vec![$($v),+];
            for &op in &all {
                exhaustive(op);
            }
            all
        }
    };
}

all_ops!(
    all_alu,
    AluOp,
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Mulhsu,
        AluOp::Mulhu,
        AluOp::Div,
        AluOp::Divu,
        AluOp::Rem,
        AluOp::Remu,
    ]
);
all_ops!(
    all_branch,
    BranchOp,
    [
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blt,
        BranchOp::Bge,
        BranchOp::Bltu,
        BranchOp::Bgeu,
    ]
);
all_ops!(
    all_load,
    LoadOp,
    [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu]
);
all_ops!(all_store, StoreOp, [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw]);
all_ops!(
    all_fp,
    FpOp,
    [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::Sqrt,
        FpOp::SgnJ,
        FpOp::SgnJN,
        FpOp::SgnJX,
        FpOp::Min,
        FpOp::Max,
    ]
);
all_ops!(
    all_fma,
    FmaOp,
    [FmaOp::MAdd, FmaOp::MSub, FmaOp::NMSub, FmaOp::NMAdd]
);
all_ops!(all_fp_cmp, FpCmpOp, [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le]);
all_ops!(
    all_fp_to_int,
    FpToIntOp,
    [
        FpToIntOp::CvtW,
        FpToIntOp::CvtWu,
        FpToIntOp::MvXW,
        FpToIntOp::Class,
    ]
);
all_ops!(
    all_int_to_fp,
    IntToFpOp,
    [IntToFpOp::CvtW, IntToFpOp::CvtWu, IntToFpOp::MvWX]
);

/// One or more exemplars per variant, covering every op of every sub-enum.
fn exemplars() -> Vec<Inst> {
    let mut v = vec![
        Inst::Lui {
            rd: Reg::A0,
            imm: 0x12345 << 12,
        },
        Inst::Auipc {
            rd: Reg::T0,
            imm: 0x7F << 12,
        },
        Inst::Jal {
            rd: Reg::RA,
            offset: 8,
        },
        Inst::Jal {
            rd: Reg::ZERO,
            offset: -8,
        },
        Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        },
        Inst::Fence,
        Inst::Ecall,
        Inst::Ebreak,
        Inst::Flw {
            rd: FReg::new(3),
            rs1: Reg::SP,
            offset: -8,
        },
        Inst::Fsw {
            rs1: Reg::A0,
            rs2: FReg::new(31),
            offset: 12,
        },
        Inst::SimtS {
            rc: Reg::T0,
            r_step: Reg::T1,
            r_end: Reg::T2,
            interval: 2,
        },
        Inst::SimtE {
            rc: Reg::T0,
            r_end: Reg::T2,
            l_offset: -8,
        },
    ];
    for op in all_branch() {
        v.push(Inst::Branch {
            op,
            rs1: Reg::T0,
            rs2: Reg::T1,
            offset: 8,
        });
    }
    for op in all_load() {
        v.push(Inst::Load {
            op,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: -4,
        });
    }
    for op in all_store() {
        v.push(Inst::Store {
            op,
            rs1: Reg::SP,
            rs2: Reg::A0,
            offset: 16,
        });
    }
    for op in all_alu() {
        v.push(Inst::Op {
            op,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        });
        if op.has_imm_form() {
            v.push(Inst::OpImm {
                op,
                rd: Reg::S2,
                rs1: Reg::S3,
                imm: 5,
            });
        }
    }
    for op in all_fp() {
        // fsqrt.s prints one source and encodes rs2 = f0.
        let rs2 = if op == FpOp::Sqrt {
            FReg::new(0)
        } else {
            FReg::new(2)
        };
        v.push(Inst::FpOp {
            op,
            rd: FReg::new(0),
            rs1: FReg::new(1),
            rs2,
        });
    }
    for op in all_fma() {
        v.push(Inst::FpFma {
            op,
            rd: FReg::new(4),
            rs1: FReg::new(5),
            rs2: FReg::new(6),
            rs3: FReg::new(7),
        });
    }
    for op in all_fp_cmp() {
        v.push(Inst::FpCmp {
            op,
            rd: Reg::A0,
            rs1: FReg::new(1),
            rs2: FReg::new(2),
        });
    }
    for op in all_fp_to_int() {
        v.push(Inst::FpToInt {
            op,
            rd: Reg::A3,
            rs1: FReg::new(9),
        });
    }
    for op in all_int_to_fp() {
        v.push(Inst::IntToFp {
            op,
            rd: FReg::new(10),
            rs1: Reg::A4,
        });
    }
    v
}

#[test]
fn every_variant_round_trips_through_disasm() {
    let mut covered = [false; VARIANT_COUNT];
    for inst in exemplars() {
        covered[variant_slot(&inst)] = true;

        // Embed the instruction between nops so branch/jump/simt targets
        // stay inside .text (the assembler rejects wild targets).
        let text = inst.to_string();
        let src = format!(
            "    addi zero, zero, 0\n\
             \x20   addi zero, zero, 0\n\
             \x20   {text}\n\
             \x20   addi zero, zero, 0\n\
             \x20   addi zero, zero, 0\n\
             \x20   ecall\n"
        );
        let program = diag_asm::assemble(&src)
            .unwrap_or_else(|e| panic!("`{text}` did not re-assemble: {e}"));
        let pc = program.entry() + 2 * 4;
        let word = program.fetch(pc).expect("instruction present");
        let decoded = decode(word).unwrap_or_else(|e| panic!("`{text}` decode failed: {e:?}"));
        assert_eq!(decoded, inst, "`{text}` round-tripped to `{decoded}`");
    }
    let missing: Vec<usize> = (0..VARIANT_COUNT).filter(|&i| !covered[i]).collect();
    assert!(
        missing.is_empty(),
        "variants without exemplars: slots {missing:?}"
    );
}
