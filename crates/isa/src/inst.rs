//! The decoded instruction representation for RV32IMF plus the DiAG SIMT
//! extension instructions (`simt_s` / `simt_e`, paper §5.4).
//!
//! [`Inst`] is the single decoded form shared by the assembler, the DiAG
//! machine, and the out-of-order baseline. Encoding and decoding to the
//! 32-bit RISC-V wire format live in [`crate::encode`] and [`crate::decode`].

use crate::reg::{ArchReg, FReg, Reg};

/// Operations performed by the integer ALU (and the M-extension units).
///
/// The same operation set is used for register-register (`OP`) and, for the
/// non-M subset, register-immediate (`OP-IMM`) instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add` / `addi`).
    Add,
    /// Subtraction (`sub`); not available in immediate form.
    Sub,
    /// Logical left shift (`sll` / `slli`).
    Sll,
    /// Signed set-less-than (`slt` / `slti`).
    Slt,
    /// Unsigned set-less-than (`sltu` / `sltiu`).
    Sltu,
    /// Bitwise exclusive or (`xor` / `xori`).
    Xor,
    /// Logical right shift (`srl` / `srli`).
    Srl,
    /// Arithmetic right shift (`sra` / `srai`).
    Sra,
    /// Bitwise or (`or` / `ori`).
    Or,
    /// Bitwise and (`and` / `andi`).
    And,
    /// Low 32 bits of signed multiplication (`mul`, RV32M).
    Mul,
    /// High 32 bits of signed × signed multiplication (`mulh`, RV32M).
    Mulh,
    /// High 32 bits of signed × unsigned multiplication (`mulhsu`, RV32M).
    Mulhsu,
    /// High 32 bits of unsigned × unsigned multiplication (`mulhu`, RV32M).
    Mulhu,
    /// Signed division (`div`, RV32M).
    Div,
    /// Unsigned division (`divu`, RV32M).
    Divu,
    /// Signed remainder (`rem`, RV32M).
    Rem,
    /// Unsigned remainder (`remu`, RV32M).
    Remu,
}

impl AluOp {
    /// Whether this operation belongs to the RV32M multiply/divide extension.
    pub const fn is_m_ext(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
        )
    }

    /// Whether this operation has an immediate (`OP-IMM`) form.
    pub const fn has_imm_form(self) -> bool {
        !self.is_m_ext() && !matches!(self, AluOp::Sub)
    }
}

/// Conditional branch comparisons (`BRANCH` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal (`beq`).
    Beq,
    /// Branch if not equal (`bne`).
    Bne,
    /// Branch if signed less-than (`blt`).
    Blt,
    /// Branch if signed greater-or-equal (`bge`).
    Bge,
    /// Branch if unsigned less-than (`bltu`).
    Bltu,
    /// Branch if unsigned greater-or-equal (`bgeu`).
    Bgeu,
}

/// Load widths and sign treatments (`LOAD` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load signed byte (`lb`).
    Lb,
    /// Load signed halfword (`lh`).
    Lh,
    /// Load word (`lw`).
    Lw,
    /// Load unsigned byte (`lbu`).
    Lbu,
    /// Load unsigned halfword (`lhu`).
    Lhu,
}

impl LoadOp {
    /// Access size in bytes.
    pub const fn size(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }
}

/// Store widths (`STORE` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte (`sb`).
    Sb,
    /// Store halfword (`sh`).
    Sh,
    /// Store word (`sw`).
    Sw,
}

impl StoreOp {
    /// Access size in bytes.
    pub const fn size(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }
}

/// Two-operand single-precision floating-point operations (`OP-FP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `fadd.s`
    Add,
    /// `fsub.s`
    Sub,
    /// `fmul.s`
    Mul,
    /// `fdiv.s`
    Div,
    /// `fsqrt.s` (rs2 is ignored / must be `f0` in the encoding)
    Sqrt,
    /// `fsgnj.s`
    SgnJ,
    /// `fsgnjn.s`
    SgnJN,
    /// `fsgnjx.s`
    SgnJX,
    /// `fmin.s`
    Min,
    /// `fmax.s`
    Max,
}

/// Fused multiply-add family (`MADD`/`MSUB`/`NMSUB`/`NMADD` major opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FmaOp {
    /// `fmadd.s`: `rs1 * rs2 + rs3`
    MAdd,
    /// `fmsub.s`: `rs1 * rs2 - rs3`
    MSub,
    /// `fnmsub.s`: `-(rs1 * rs2) + rs3`
    NMSub,
    /// `fnmadd.s`: `-(rs1 * rs2) - rs3`
    NMAdd,
}

/// Floating-point comparisons writing an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    /// `feq.s`
    Eq,
    /// `flt.s`
    Lt,
    /// `fle.s`
    Le,
}

/// Operations moving or converting from the FP register file to the integer
/// register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpToIntOp {
    /// `fcvt.w.s`: float → signed i32
    CvtW,
    /// `fcvt.wu.s`: float → unsigned u32
    CvtWu,
    /// `fmv.x.w`: raw bit move
    MvXW,
    /// `fclass.s`: classification mask
    Class,
}

/// Operations moving or converting from the integer register file to the FP
/// register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntToFpOp {
    /// `fcvt.s.w`: signed i32 → float
    CvtW,
    /// `fcvt.s.wu`: unsigned u32 → float
    CvtWu,
    /// `fmv.w.x`: raw bit move
    MvWX,
}

/// A decoded RV32IMF (+ DiAG SIMT extension) instruction.
///
/// This is the canonical decoded form used throughout the workspace. It is
/// produced by [`crate::decode::decode`] and by the assembler, and consumed
/// by every machine model.
///
/// # Examples
///
/// ```
/// use diag_isa::{decode, encode, Inst, Reg, AluOp};
///
/// let inst = Inst::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
/// let word = encode(&inst);
/// assert_eq!(decode(word).unwrap(), inst);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `lui rd, imm`: load upper immediate. `imm` is the already-shifted
    /// 32-bit value (low 12 bits zero).
    Lui {
        /// Destination register.
        rd: Reg,
        /// Upper-immediate value with low 12 bits zero.
        imm: i32,
    },
    /// `auipc rd, imm`: add upper immediate to PC.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Upper-immediate value with low 12 bits zero.
        imm: i32,
    },
    /// `jal rd, offset`: jump and link.
    Jal {
        /// Link register (often `ra` or `zero`).
        rd: Reg,
        /// Signed byte offset from this instruction's address.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)`: indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed byte offset added to `rs1`.
        offset: i32,
    },
    /// Conditional branch `op rs1, rs2, offset`.
    Branch {
        /// Comparison performed.
        op: BranchOp,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Signed byte offset from this instruction's address.
        offset: i32,
    },
    /// Integer load `op rd, offset(rs1)`.
    Load {
        /// Width/sign of the access.
        op: LoadOp,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Integer store `op rs2, offset(rs1)`.
    Store {
        /// Width of the access.
        op: StoreOp,
        /// Base address register.
        rs1: Reg,
        /// Data register.
        rs2: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Register-immediate ALU operation (`OP-IMM` major opcode).
    OpImm {
        /// Operation; must satisfy [`AluOp::has_imm_form`].
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended 12-bit immediate (shift amounts use the low 5 bits).
        imm: i32,
    },
    /// Register-register ALU / M-extension operation (`OP` major opcode).
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `fence`: memory ordering. Modelled as a no-op that serializes the
    /// cluster's load/store unit.
    Fence,
    /// `ecall`: environment call. Bare-metal programs in this workspace use
    /// it to halt the current hardware thread (the paper's prototype lacks
    /// system-instruction support; §6).
    Ecall,
    /// `ebreak`: breakpoint; treated as a halting trap.
    Ebreak,
    /// `flw rd, offset(rs1)`: floating-point load word.
    Flw {
        /// Destination FP register.
        rd: FReg,
        /// Base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// `fsw rs2, offset(rs1)`: floating-point store word.
    Fsw {
        /// Base address register.
        rs1: Reg,
        /// FP data register.
        rs2: FReg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Two-operand FP arithmetic (`OP-FP`).
    FpOp {
        /// Operation.
        op: FpOp,
        /// Destination FP register.
        rd: FReg,
        /// First source FP register.
        rs1: FReg,
        /// Second source FP register (ignored by `fsqrt.s`).
        rs2: FReg,
    },
    /// Fused multiply-add family.
    FpFma {
        /// Which fused operation.
        op: FmaOp,
        /// Destination FP register.
        rd: FReg,
        /// Multiplicand.
        rs1: FReg,
        /// Multiplier.
        rs2: FReg,
        /// Addend.
        rs3: FReg,
    },
    /// FP comparison writing an integer register.
    FpCmp {
        /// Comparison.
        op: FpCmpOp,
        /// Destination integer register.
        rd: Reg,
        /// First source FP register.
        rs1: FReg,
        /// Second source FP register.
        rs2: FReg,
    },
    /// FP → integer move/convert/classify.
    FpToInt {
        /// Operation.
        op: FpToIntOp,
        /// Destination integer register.
        rd: Reg,
        /// Source FP register.
        rs1: FReg,
    },
    /// Integer → FP move/convert.
    IntToFp {
        /// Operation.
        op: IntToFpOp,
        /// Destination FP register.
        rd: FReg,
        /// Source integer register.
        rs1: Reg,
    },
    /// `simt_s rc, r_step, r_end, interval` (DiAG extension, paper §5.4).
    ///
    /// Marks the start of a thread-pipelined region. Spawns loop instances
    /// that retain the current register file except the control register
    /// `rc`, which advances by the value of `r_step` per instance until the
    /// value of `r_end` is reached. A new instance is initiated at most once
    /// every `interval` cycles.
    SimtS {
        /// Control (induction) register.
        rc: Reg,
        /// Register holding the per-instance step added to `rc`.
        r_step: Reg,
        /// Register holding the exclusive end bound for `rc`.
        r_end: Reg,
        /// Minimum cycles between successive thread initiations (1..=127).
        interval: u8,
    },
    /// `simt_e rc, r_end, l_offset` (DiAG extension, paper §5.4).
    ///
    /// Marks the end of the pipelined region started `l_offset` bytes
    /// earlier. Only the final instance's register lanes propagate to the
    /// next processing cluster when the terminating condition is met.
    SimtE {
        /// Control (induction) register, matching the paired `simt_s`.
        rc: Reg,
        /// Register holding the exclusive end bound for `rc`.
        r_end: Reg,
        /// Signed byte offset back to the paired `simt_s` (negative).
        l_offset: i32,
    },
}

/// The kind of functional unit an instruction executes on, used for latency
/// and energy accounting by both machine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Single-cycle integer ALU (also used by branches/jumps for target and
    /// comparison computation).
    IntAlu,
    /// Pipelined integer multiplier.
    IntMul,
    /// Unpipelined integer divider.
    IntDiv,
    /// Floating-point add/sub/compare/convert/move unit.
    FpAlu,
    /// Floating-point multiplier (also used by FMA).
    FpMul,
    /// Floating-point divide/square-root unit.
    FpDiv,
    /// Address generation + memory port.
    Mem,
    /// No functional unit (fences, ecall, SIMT markers).
    None,
}

impl Inst {
    /// A canonical no-op: `addi x0, x0, 0`.
    pub const NOP: Inst = Inst::OpImm {
        op: AluOp::Add,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// The functional unit this instruction occupies while executing.
    pub fn fu_kind(&self) -> FuKind {
        match self {
            Inst::Lui { .. }
            | Inst::Auipc { .. }
            | Inst::Jal { .. }
            | Inst::Jalr { .. }
            | Inst::Branch { .. }
            | Inst::OpImm { .. } => FuKind::IntAlu,
            Inst::Op { op, .. } => match op {
                AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => FuKind::IntMul,
                AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => FuKind::IntDiv,
                _ => FuKind::IntAlu,
            },
            Inst::Load { .. } | Inst::Store { .. } | Inst::Flw { .. } | Inst::Fsw { .. } => {
                FuKind::Mem
            }
            Inst::FpOp { op, .. } => match op {
                FpOp::Mul => FuKind::FpMul,
                FpOp::Div | FpOp::Sqrt => FuKind::FpDiv,
                _ => FuKind::FpAlu,
            },
            Inst::FpFma { .. } => FuKind::FpMul,
            Inst::FpCmp { .. } | Inst::FpToInt { .. } | Inst::IntToFp { .. } => FuKind::FpAlu,
            Inst::Fence | Inst::Ecall | Inst::Ebreak | Inst::SimtS { .. } | Inst::SimtE { .. } => {
                FuKind::None
            }
        }
    }

    /// Execution latency in cycles, excluding memory-hierarchy time for
    /// loads/stores (paper §7.1 models FP as fixed delays).
    pub fn exec_latency(&self) -> u32 {
        match self.fu_kind() {
            FuKind::IntAlu | FuKind::None => 1,
            FuKind::IntMul => 3,
            FuKind::IntDiv => 20,
            FuKind::FpAlu => 4,
            FuKind::FpMul => 4,
            FuKind::FpDiv => match self {
                Inst::FpOp { op: FpOp::Sqrt, .. } => 16,
                _ => 12,
            },
            FuKind::Mem => 1, // address generation; memory time added by the LSU
        }
    }

    /// Whether this instruction can change control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. } | Inst::Ecall | Inst::Ebreak
        )
    }

    /// Whether this is an unconditional direct or indirect jump.
    pub fn is_jump(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. })
    }

    /// Whether this instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Flw { .. })
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Fsw { .. })
    }

    /// Whether this instruction accesses memory at all.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this instruction uses the floating-point unit, for the
    /// clock-gated FPU energy accounting of paper §6.1.3 / §7.3.1.
    pub fn uses_fpu(&self) -> bool {
        matches!(
            self.fu_kind(),
            FuKind::FpAlu | FuKind::FpMul | FuKind::FpDiv
        )
    }

    /// The memory access size in bytes, if this is a load or store.
    pub fn mem_size(&self) -> Option<u32> {
        match self {
            Inst::Load { op, .. } => Some(op.size()),
            Inst::Store { op, .. } => Some(op.size()),
            Inst::Flw { .. } | Inst::Fsw { .. } => Some(4),
            _ => None,
        }
    }

    /// Source register lanes read by this instruction, in the unified
    /// [`ArchReg`] lane space. `x0` sources are included (the lane is always
    /// valid) so callers need no special casing.
    pub fn sources(&self) -> SourceSet {
        let mut set = SourceSet::default();
        match *self {
            Inst::Lui { .. }
            | Inst::Auipc { .. }
            | Inst::Jal { .. }
            | Inst::Fence
            | Inst::Ecall
            | Inst::Ebreak => {}
            Inst::Jalr { rs1, .. } => set.push(rs1.into()),
            Inst::Branch { rs1, rs2, .. } => {
                set.push(rs1.into());
                set.push(rs2.into());
            }
            Inst::Load { rs1, .. } => set.push(rs1.into()),
            Inst::Store { rs1, rs2, .. } => {
                set.push(rs1.into());
                set.push(rs2.into());
            }
            Inst::OpImm { rs1, .. } => set.push(rs1.into()),
            Inst::Op { rs1, rs2, .. } => {
                set.push(rs1.into());
                set.push(rs2.into());
            }
            Inst::Flw { rs1, .. } => set.push(rs1.into()),
            Inst::Fsw { rs1, rs2, .. } => {
                set.push(rs1.into());
                set.push(rs2.into());
            }
            Inst::FpOp { op, rs1, rs2, .. } => {
                set.push(rs1.into());
                if op != FpOp::Sqrt {
                    set.push(rs2.into());
                }
            }
            Inst::FpFma { rs1, rs2, rs3, .. } => {
                set.push(rs1.into());
                set.push(rs2.into());
                set.push(rs3.into());
            }
            Inst::FpCmp { rs1, rs2, .. } => {
                set.push(rs1.into());
                set.push(rs2.into());
            }
            Inst::FpToInt { rs1, .. } => set.push(rs1.into()),
            Inst::IntToFp { rs1, .. } => set.push(rs1.into()),
            Inst::SimtS {
                rc, r_step, r_end, ..
            } => {
                set.push(rc.into());
                set.push(r_step.into());
                set.push(r_end.into());
            }
            Inst::SimtE { rc, r_end, .. } => {
                set.push(rc.into());
                set.push(r_end.into());
            }
        }
        set
    }

    /// The destination register lane written by this instruction, if any.
    /// Writes to `x0` are reported as `None` (they are architectural no-ops,
    /// and in DiAG the `x0` lane is never driven).
    pub fn dest(&self) -> Option<ArchReg> {
        let lane: ArchReg = match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::FpToInt { rd, .. } => rd.into(),
            Inst::Flw { rd, .. }
            | Inst::FpOp { rd, .. }
            | Inst::FpFma { rd, .. }
            | Inst::IntToFp { rd, .. } => rd.into(),
            Inst::SimtS { rc, .. } => rc.into(),
            _ => return None,
        };
        if lane.is_zero() {
            None
        } else {
            Some(lane)
        }
    }

    /// The statically-known branch/jump target, given this instruction's
    /// address. `jalr` has no static target and returns `None`.
    pub fn static_target(&self, pc: u32) -> Option<u32> {
        match *self {
            Inst::Jal { offset, .. } | Inst::Branch { offset, .. } => {
                Some(pc.wrapping_add(offset as u32))
            }
            _ => None,
        }
    }

    /// Whether this is a conditional branch with a negative offset — the
    /// pattern DiAG's control unit inspects for datapath reuse (paper §4.3.2).
    pub fn is_backward_branch(&self) -> bool {
        match *self {
            Inst::Branch { offset, .. } => offset < 0,
            Inst::Jal { offset, .. } => offset < 0,
            _ => false,
        }
    }
}

/// Static control-flow classification of an instruction.
///
/// This is the single classification shared by everything that walks a
/// program statically — CFG recovery in `diag-analyze`, assembler target
/// validation, and the machines' fetch redirect logic — so that "what can
/// this instruction do to the PC" is answered in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Falls through to the next sequential instruction.
    Next,
    /// Conditional branch: falls through or transfers to `pc + offset`.
    Branch {
        /// Signed byte offset from the branch's own address.
        offset: i32,
    },
    /// Unconditional direct jump (`jal`) to `pc + offset`. `link` is true
    /// when a return address is written (a call).
    Jump {
        /// Signed byte offset from the jump's own address.
        offset: i32,
        /// Whether a return address is written (rd != x0).
        link: bool,
    },
    /// Indirect jump through a register (`jalr`): the target is not
    /// statically known. `link` is true for indirect calls.
    Indirect {
        /// Whether a return address is written (rd != x0).
        link: bool,
    },
    /// Halts the hardware thread (`ecall` in this bare-metal workspace).
    Halt,
    /// Trap (`ebreak`): vectors to the trap handler when one is configured,
    /// otherwise halts.
    Trap,
    /// `simt_e`: falls through when the pipelined region terminates, or
    /// transfers back to `pc + l_offset + 4` (the instruction after the
    /// paired `simt_s`) for the next loop instance.
    SimtLoop {
        /// Signed byte offset back to the paired `simt_s` (negative).
        l_offset: i32,
    },
}

impl Inst {
    /// Classifies what this instruction can do to the program counter.
    ///
    /// # Examples
    ///
    /// ```
    /// use diag_isa::{ControlFlow, Inst, Reg};
    ///
    /// let j = Inst::Jal { rd: Reg::ZERO, offset: -8 };
    /// assert_eq!(j.control_flow(), ControlFlow::Jump { offset: -8, link: false });
    /// assert_eq!(Inst::NOP.control_flow(), ControlFlow::Next);
    /// ```
    pub fn control_flow(&self) -> ControlFlow {
        match *self {
            Inst::Branch { offset, .. } => ControlFlow::Branch { offset },
            Inst::Jal { rd, offset } => ControlFlow::Jump {
                offset,
                link: !rd.is_zero(),
            },
            Inst::Jalr { rd, .. } => ControlFlow::Indirect {
                link: !rd.is_zero(),
            },
            Inst::Ecall => ControlFlow::Halt,
            Inst::Ebreak => ControlFlow::Trap,
            Inst::SimtE { l_offset, .. } => ControlFlow::SimtLoop { l_offset },
            _ => ControlFlow::Next,
        }
    }

    /// Successor addresses that are statically knowable for an instruction
    /// at `pc`: `(fall_through, taken_target)`. An unconditional jump has no
    /// fall-through; an indirect jump or halt has neither.
    pub fn static_successors(&self, pc: u32) -> (Option<u32>, Option<u32>) {
        let next = pc.wrapping_add(4);
        match self.control_flow() {
            ControlFlow::Next => (Some(next), None),
            ControlFlow::Branch { offset } => (Some(next), Some(pc.wrapping_add(offset as u32))),
            ControlFlow::Jump { offset, .. } => (None, Some(pc.wrapping_add(offset as u32))),
            // `ebreak` either halts or vectors to a configured trap handler;
            // neither continuation is knowable from the instruction alone.
            ControlFlow::Indirect { .. } | ControlFlow::Halt | ControlFlow::Trap => (None, None),
            ControlFlow::SimtLoop { l_offset } => (
                Some(next),
                Some(pc.wrapping_add(l_offset as u32).wrapping_add(4)),
            ),
        }
    }
}

/// A small fixed-capacity set of source lanes (an instruction reads at most
/// three registers — FMA).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceSet {
    regs: [Option<ArchReg>; 3],
    len: u8,
}

impl SourceSet {
    fn push(&mut self, r: ArchReg) {
        self.regs[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of source operands.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the instruction reads no registers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the source lanes.
    pub fn iter(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.regs
            .iter()
            .take(self.len as usize)
            .map(|r| r.expect("within len"))
    }
}

impl IntoIterator for SourceSet {
    type Item = ArchReg;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<ArchReg>, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_properties() {
        assert_eq!(Inst::NOP.dest(), None);
        assert_eq!(Inst::NOP.fu_kind(), FuKind::IntAlu);
        assert_eq!(Inst::NOP.exec_latency(), 1);
        assert!(!Inst::NOP.is_control());
    }

    #[test]
    fn x0_dest_is_none() {
        let i = Inst::Op {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        assert_eq!(i.dest(), None);
        let j = Inst::Jal {
            rd: Reg::ZERO,
            offset: -8,
        };
        assert_eq!(j.dest(), None);
    }

    #[test]
    fn fp_dest_maps_to_fp_lane() {
        let i = Inst::FpOp {
            op: FpOp::Add,
            rd: FReg::new(2),
            rs1: FReg::new(0),
            rs2: FReg::new(1),
        };
        let d = i.dest().unwrap();
        assert!(d.is_fp());
        assert_eq!(d.index(), 34);
    }

    #[test]
    fn sources_counts() {
        assert_eq!(
            Inst::Lui {
                rd: Reg::A0,
                imm: 0x1000
            }
            .sources()
            .len(),
            0
        );
        assert_eq!(
            Inst::Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
            .sources()
            .len(),
            2
        );
        let fma = Inst::FpFma {
            op: FmaOp::MAdd,
            rd: FReg::new(0),
            rs1: FReg::new(1),
            rs2: FReg::new(2),
            rs3: FReg::new(3),
        };
        assert_eq!(fma.sources().len(), 3);
        let srcs: Vec<_> = fma.sources().iter().collect();
        assert!(srcs.iter().all(|r| r.is_fp()));
    }

    #[test]
    fn sqrt_reads_one_source() {
        let i = Inst::FpOp {
            op: FpOp::Sqrt,
            rd: FReg::new(1),
            rs1: FReg::new(2),
            rs2: FReg::new(0),
        };
        assert_eq!(i.sources().len(), 1);
    }

    #[test]
    fn fu_kind_classification() {
        assert_eq!(
            Inst::Op {
                op: AluOp::Mul,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
            .fu_kind(),
            FuKind::IntMul
        );
        assert_eq!(
            Inst::Op {
                op: AluOp::Rem,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
            .fu_kind(),
            FuKind::IntDiv
        );
        assert_eq!(
            Inst::FpOp {
                op: FpOp::Div,
                rd: FReg::new(0),
                rs1: FReg::new(1),
                rs2: FReg::new(2)
            }
            .fu_kind(),
            FuKind::FpDiv
        );
        assert_eq!(
            Inst::Flw {
                rd: FReg::new(0),
                rs1: Reg::A0,
                offset: 0
            }
            .fu_kind(),
            FuKind::Mem
        );
    }

    #[test]
    fn static_targets() {
        let b = Inst::Branch {
            op: BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: -16,
        };
        assert_eq!(b.static_target(0x100), Some(0xF0));
        assert!(b.is_backward_branch());
        let j = Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        };
        assert_eq!(j.static_target(0x100), None);
    }

    #[test]
    fn mem_classification() {
        let l = Inst::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: 4,
        };
        assert!(l.is_load() && l.is_mem() && !l.is_store());
        assert_eq!(l.mem_size(), Some(4));
        let s = Inst::Store {
            op: StoreOp::Sb,
            rs1: Reg::SP,
            rs2: Reg::A0,
            offset: 0,
        };
        assert!(s.is_store() && s.is_mem() && !s.is_load());
        assert_eq!(s.mem_size(), Some(1));
        let f = Inst::Fsw {
            rs1: Reg::SP,
            rs2: FReg::new(1),
            offset: 8,
        };
        assert_eq!(f.mem_size(), Some(4));
    }

    #[test]
    fn uses_fpu_excludes_fp_memory_ops() {
        // FP loads/stores use the memory port, not the FPU datapath, and are
        // not FPU activations for clock-gating purposes.
        assert!(!Inst::Flw {
            rd: FReg::new(0),
            rs1: Reg::A0,
            offset: 0
        }
        .uses_fpu());
        assert!(Inst::FpOp {
            op: FpOp::Add,
            rd: FReg::new(0),
            rs1: FReg::new(1),
            rs2: FReg::new(2)
        }
        .uses_fpu());
    }

    #[test]
    fn simt_markers_have_sources() {
        let s = Inst::SimtS {
            rc: Reg::T0,
            r_step: Reg::T1,
            r_end: Reg::T2,
            interval: 1,
        };
        assert_eq!(s.sources().len(), 3);
        assert_eq!(s.dest(), Some(ArchReg::from(Reg::T0)));
        let e = Inst::SimtE {
            rc: Reg::T0,
            r_end: Reg::T2,
            l_offset: -64,
        };
        assert_eq!(e.sources().len(), 2);
        assert_eq!(e.dest(), None);
    }

    #[test]
    fn control_flow_classification() {
        let b = Inst::Branch {
            op: BranchOp::Beq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 16,
        };
        assert_eq!(b.control_flow(), ControlFlow::Branch { offset: 16 });
        assert_eq!(b.static_successors(0x1000), (Some(0x1004), Some(0x1010)));

        let call = Inst::Jal {
            rd: Reg::RA,
            offset: 0x40,
        };
        assert_eq!(
            call.control_flow(),
            ControlFlow::Jump {
                offset: 0x40,
                link: true
            }
        );
        assert_eq!(call.static_successors(0x1000), (None, Some(0x1040)));

        let ret = Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        };
        assert_eq!(ret.control_flow(), ControlFlow::Indirect { link: false });
        assert_eq!(ret.static_successors(0x1000), (None, None));

        assert_eq!(Inst::Ecall.control_flow(), ControlFlow::Halt);
        assert_eq!(Inst::Ecall.static_successors(0x1000), (None, None));
        assert_eq!(Inst::Ebreak.control_flow(), ControlFlow::Trap);

        // simt_e resumes at the instruction after the paired simt_s.
        let e = Inst::SimtE {
            rc: Reg::T0,
            r_end: Reg::T1,
            l_offset: -64,
        };
        assert_eq!(e.control_flow(), ControlFlow::SimtLoop { l_offset: -64 });
        assert_eq!(e.static_successors(0x1080), (Some(0x1084), Some(0x1044)));

        assert_eq!(
            Inst::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: 0
            }
            .control_flow(),
            ControlFlow::Next
        );
    }

    #[test]
    fn alu_op_imm_forms() {
        assert!(AluOp::Add.has_imm_form());
        assert!(!AluOp::Sub.has_imm_form());
        assert!(!AluOp::Mul.has_imm_form());
        assert!(AluOp::Mul.is_m_ext());
        assert!(!AluOp::And.is_m_ext());
    }
}
