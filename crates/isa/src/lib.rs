//! # diag-isa — RV32IMF instruction-set layer for the DiAG reproduction
//!
//! This crate is the foundation of the [DiAG](https://doi.org/10.1145/3445814.3446703)
//! (ASPLOS 2021) reproduction workspace. It provides:
//!
//! - Register types ([`Reg`], [`FReg`]) and DiAG's unified *register lane*
//!   index space ([`ArchReg`]) — the paper abstracts each architectural
//!   register as a hardware lane flowing through the processing elements.
//! - The decoded instruction form [`Inst`] covering RV32I, the M and F
//!   extensions, and the paper's two SIMT extension instructions
//!   (`simt_s` / `simt_e`, §5.4).
//! - Binary [`encode`]/[`decode`] to and from the RISC-V wire format.
//! - Pure execution semantics in [`exec`], shared by every machine model so
//!   that the DiAG core, the out-of-order baseline, and the in-order
//!   reference machine agree architecturally by construction.
//!
//! # Examples
//!
//! Round-trip an instruction through the wire format and evaluate it:
//!
//! ```
//! use diag_isa::{decode, encode, exec, AluOp, Inst, Reg};
//!
//! let inst = Inst::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
//! assert_eq!(decode(encode(&inst)).unwrap(), inst);
//! assert_eq!(exec::alu(AluOp::Add, 40, 2), 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod decode;
mod disasm;
mod encode;
pub mod exec;
mod inst;
pub mod prng;
mod reg;
pub mod regs;
pub mod station;

pub use decode::{decode, decode_calls, DecodeError};
pub use encode::encode;
pub use inst::{
    AluOp, BranchOp, ControlFlow, FmaOp, FpCmpOp, FpOp, FpToIntOp, FuKind, Inst, IntToFpOp, LoadOp,
    SourceSet, StoreOp,
};
pub use reg::{ArchReg, FReg, ParseRegError, Reg, NUM_FP_REGS, NUM_INT_REGS, NUM_LANES};
pub use station::{station_table_builds, ExecKind, Station, StationSlot, StationTable};

/// Width of one instruction in bytes (RV32 without the C extension).
pub const INST_BYTES: u32 = 4;
