//! A small seeded PRNG for workload input generation and randomized tests.
//!
//! The workspace must build and test with no network access, so instead of
//! depending on the external `rand` crate the workloads and property-style
//! tests use this self-contained SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA 2014). It is deterministic for a given seed on every
//! platform, which also keeps workload inputs — and therefore experiment
//! rows — bit-reproducible across runs and machines.

use std::ops::Range;

/// A seeded SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use diag_isa::prng::SplitMix64;
///
/// let mut rng = SplitMix64::seed_from_u64(42);
/// let a: u32 = rng.gen();
/// let b = rng.gen_range(0.0f32..1.0);
/// assert_ne!(a, rng.gen());
/// assert!((0.0..1.0).contains(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed (same entry point name as
    /// `rand::SeedableRng`, easing drop-in use).
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value of `T`.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly distributed value in `range` (half-open, like
    /// `rand::Rng::gen_range`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    /// Uniform index below `bound` without modulo bias (Lemire's method).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift maps next_u64 onto [0, bound) with a
        // rejection zone smaller than 2^-64 of the input space; a single
        // widening multiply is exact enough for simulation inputs.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Types [`SplitMix64::gen`] can produce.
pub trait Sample {
    /// Draws a uniformly distributed value.
    fn sample(rng: &mut SplitMix64) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut SplitMix64) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut SplitMix64) -> u32 {
        rng.next_u32()
    }
}

impl Sample for u16 {
    fn sample(rng: &mut SplitMix64) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Sample for u8 {
    fn sample(rng: &mut SplitMix64) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for i32 {
    fn sample(rng: &mut SplitMix64) -> i32 {
        rng.next_u32() as i32
    }
}

impl Sample for bool {
    fn sample(rng: &mut SplitMix64) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges [`SplitMix64::gen_range`] can sample an element of type `T`
/// from (the generic-parameter shape matches `rand`, so integer-literal
/// ranges infer their type from the use site).
pub trait SampleRange<T> {
    /// Draws a uniformly distributed value from the range.
    fn sample_in(self, rng: &mut SplitMix64) -> T;
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
    )*};
}

macro_rules! sint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.bounded_u64(span) as i64) as $t
            }
        }
    )*};
}

uint_range!(u8, u16, u32, usize, u64);
sint_range!(i32, i64);

impl SampleRange<f32> for Range<f32> {
    fn sample_in(self, rng: &mut SplitMix64) -> f32 {
        assert!(self.start < self.end, "empty range");
        // 24 mantissa-width bits of uniformity in [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 (from the SplitMix64 paper's
        // reference implementation).
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 should appear");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut lo = f32::MAX;
        let mut hi = f32::MIN;
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -0.9 && hi > 0.9, "range poorly covered: [{lo}, {hi}]");
    }
}
