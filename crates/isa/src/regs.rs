//! Free constants for every register, for ergonomic kernel-building code.
//!
//! ```
//! use diag_isa::regs::*;
//!
//! assert_eq!(A0.number(), 10);
//! assert_eq!(FA0.number(), 10);
//! ```

use crate::reg::{FReg, Reg};

macro_rules! int_consts {
    ($($name:ident = $n:expr;)*) => {
        $(
            #[doc = concat!("Integer register `x", $n, "`.")]
            pub const $name: Reg = Reg::new($n);
        )*
    };
}

macro_rules! fp_consts {
    ($($name:ident = $n:expr;)*) => {
        $(
            #[doc = concat!("Floating-point register `f", $n, "`.")]
            pub const $name: FReg = FReg::new($n);
        )*
    };
}

int_consts! {
    ZERO = 0; RA = 1; SP = 2; GP = 3; TP = 4;
    T0 = 5; T1 = 6; T2 = 7;
    S0 = 8; S1 = 9;
    A0 = 10; A1 = 11; A2 = 12; A3 = 13; A4 = 14; A5 = 15; A6 = 16; A7 = 17;
    S2 = 18; S3 = 19; S4 = 20; S5 = 21; S6 = 22; S7 = 23; S8 = 24; S9 = 25;
    S10 = 26; S11 = 27;
    T3 = 28; T4 = 29; T5 = 30; T6 = 31;
}

fp_consts! {
    FT0 = 0; FT1 = 1; FT2 = 2; FT3 = 3; FT4 = 4; FT5 = 5; FT6 = 6; FT7 = 7;
    FS0 = 8; FS1 = 9;
    FA0 = 10; FA1 = 11; FA2 = 12; FA3 = 13; FA4 = 14; FA5 = 15; FA6 = 16; FA7 = 17;
    FS2 = 18; FS3 = 19; FS4 = 20; FS5 = 21; FS6 = 22; FS7 = 23; FS8 = 24; FS9 = 25;
    FS10 = 26; FS11 = 27;
    FT8 = 28; FT9 = 29; FT10 = 30; FT11 = 31;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consts_match_methods() {
        assert_eq!(A0, Reg::A0);
        assert_eq!(SP, Reg::SP);
        assert_eq!(T6, Reg::T6);
        assert_eq!(FA0.number(), 10);
        assert_eq!(FT11.number(), 31);
    }
}
