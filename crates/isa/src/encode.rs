//! Encoding of decoded [`Inst`] values to the 32-bit RISC-V wire format.
//!
//! The encodings follow the RISC-V unprivileged specification for RV32IMF.
//! The DiAG SIMT extension instructions occupy the *custom-0* major opcode
//! (`0b0001011`), which the base specification reserves for vendor
//! extensions: `simt_s` is R-type with `funct3 = 0` and the initiation
//! interval carried in `funct7`; `simt_e` is I-type with `funct3 = 1` and
//! the loop offset carried in the 12-bit immediate.

use crate::inst::{
    AluOp, BranchOp, FmaOp, FpCmpOp, FpOp, FpToIntOp, Inst, IntToFpOp, LoadOp, StoreOp,
};
use crate::reg::{FReg, Reg};

pub(crate) mod opcodes {
    pub const LUI: u32 = 0b0110111;
    pub const AUIPC: u32 = 0b0010111;
    pub const JAL: u32 = 0b1101111;
    pub const JALR: u32 = 0b1100111;
    pub const BRANCH: u32 = 0b1100011;
    pub const LOAD: u32 = 0b0000011;
    pub const STORE: u32 = 0b0100011;
    pub const OP_IMM: u32 = 0b0010011;
    pub const OP: u32 = 0b0110011;
    pub const MISC_MEM: u32 = 0b0001111;
    pub const SYSTEM: u32 = 0b1110011;
    pub const LOAD_FP: u32 = 0b0000111;
    pub const STORE_FP: u32 = 0b0100111;
    pub const OP_FP: u32 = 0b1010011;
    pub const MADD: u32 = 0b1000011;
    pub const MSUB: u32 = 0b1000111;
    pub const NMSUB: u32 = 0b1001011;
    pub const NMADD: u32 = 0b1001111;
    /// Vendor custom-0 space used for the DiAG SIMT extension (paper §5.4).
    pub const CUSTOM_0: u32 = 0b0001011;
}

/// Dynamic rounding mode, the value compilers conventionally emit in the
/// `rm` field of FP arithmetic instructions.
const RM_DYN: u32 = 0b111;

fn r_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, rs2: u32, funct7: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
}

fn i_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, imm: i32) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "I-type immediate out of range: {imm}"
    );
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (((imm as u32) & 0xFFF) << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "S-type immediate out of range: {imm}"
    );
    let imm = imm as u32;
    opcode
        | ((imm & 0x1F) << 7)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x7F) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    debug_assert!(
        (-4096..=4094).contains(&imm) && imm % 2 == 0,
        "B-type immediate out of range or misaligned: {imm}"
    );
    let imm = imm as u32;
    opcode
        | (((imm >> 11) & 0x1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 0x1) << 31)
}

fn u_type(opcode: u32, rd: u32, imm: i32) -> u32 {
    debug_assert!(
        imm & 0xFFF == 0,
        "U-type immediate has nonzero low bits: {imm:#x}"
    );
    opcode | (rd << 7) | (imm as u32 & 0xFFFF_F000)
}

fn j_type(opcode: u32, rd: u32, imm: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-type immediate out of range or misaligned: {imm}"
    );
    let imm = imm as u32;
    opcode
        | (rd << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 0x1) << 31)
}

fn r4_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, rs2: u32, rs3: u32) -> u32 {
    // fmt field (bits 26:25) = 00 for single precision.
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (rs3 << 27)
}

fn xr(r: Reg) -> u32 {
    r.number() as u32
}

fn fr(r: FReg) -> u32 {
    r.number() as u32
}

pub(crate) fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Beq => 0b000,
        BranchOp::Bne => 0b001,
        BranchOp::Blt => 0b100,
        BranchOp::Bge => 0b101,
        BranchOp::Bltu => 0b110,
        BranchOp::Bgeu => 0b111,
    }
}

pub(crate) fn load_funct3(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb => 0b000,
        LoadOp::Lh => 0b001,
        LoadOp::Lw => 0b010,
        LoadOp::Lbu => 0b100,
        LoadOp::Lhu => 0b101,
    }
}

pub(crate) fn store_funct3(op: StoreOp) -> u32 {
    match op {
        StoreOp::Sb => 0b000,
        StoreOp::Sh => 0b001,
        StoreOp::Sw => 0b010,
    }
}

/// `(funct3, funct7)` for the register-register `OP` form.
pub(crate) fn op_functs(op: AluOp) -> (u32, u32) {
    match op {
        AluOp::Add => (0b000, 0b0000000),
        AluOp::Sub => (0b000, 0b0100000),
        AluOp::Sll => (0b001, 0b0000000),
        AluOp::Slt => (0b010, 0b0000000),
        AluOp::Sltu => (0b011, 0b0000000),
        AluOp::Xor => (0b100, 0b0000000),
        AluOp::Srl => (0b101, 0b0000000),
        AluOp::Sra => (0b101, 0b0100000),
        AluOp::Or => (0b110, 0b0000000),
        AluOp::And => (0b111, 0b0000000),
        AluOp::Mul => (0b000, 0b0000001),
        AluOp::Mulh => (0b001, 0b0000001),
        AluOp::Mulhsu => (0b010, 0b0000001),
        AluOp::Mulhu => (0b011, 0b0000001),
        AluOp::Div => (0b100, 0b0000001),
        AluOp::Divu => (0b101, 0b0000001),
        AluOp::Rem => (0b110, 0b0000001),
        AluOp::Remu => (0b111, 0b0000001),
    }
}

/// Encodes a decoded instruction to its 32-bit wire representation.
///
/// # Panics
///
/// In debug builds, panics if an immediate or offset is out of range for its
/// encoding field (e.g. a branch offset beyond ±4 KiB), if an `OpImm` carries
/// an operation with no immediate form, or if a `simt_s` interval is zero or
/// exceeds 127. Release builds silently truncate; the assembler validates
/// ranges before calling this.
///
/// # Examples
///
/// ```
/// use diag_isa::{encode, Inst, Reg};
///
/// let word = encode(&Inst::Jal { rd: Reg::RA, offset: 2048 });
/// assert_eq!(word & 0x7F, 0b1101111);
/// ```
pub fn encode(inst: &Inst) -> u32 {
    use opcodes::*;
    match *inst {
        Inst::Lui { rd, imm } => u_type(LUI, xr(rd), imm),
        Inst::Auipc { rd, imm } => u_type(AUIPC, xr(rd), imm),
        Inst::Jal { rd, offset } => j_type(JAL, xr(rd), offset),
        Inst::Jalr { rd, rs1, offset } => i_type(JALR, xr(rd), 0b000, xr(rs1), offset),
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => b_type(BRANCH, branch_funct3(op), xr(rs1), xr(rs2), offset),
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => i_type(LOAD, xr(rd), load_funct3(op), xr(rs1), offset),
        Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        } => s_type(STORE, store_funct3(op), xr(rs1), xr(rs2), offset),
        Inst::OpImm { op, rd, rs1, imm } => {
            debug_assert!(op.has_imm_form(), "{op:?} has no OP-IMM form");
            let (funct3, funct7) = op_functs(op);
            match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    debug_assert!((0..32).contains(&imm), "shift amount out of range: {imm}");
                    r_type(OP_IMM, xr(rd), funct3, xr(rs1), imm as u32 & 0x1F, funct7)
                }
                _ => i_type(OP_IMM, xr(rd), funct3, xr(rs1), imm),
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = op_functs(op);
            r_type(OP, xr(rd), funct3, xr(rs1), xr(rs2), funct7)
        }
        Inst::Fence => i_type(MISC_MEM, 0, 0b000, 0, 0x0FF),
        Inst::Ecall => i_type(SYSTEM, 0, 0b000, 0, 0),
        Inst::Ebreak => i_type(SYSTEM, 0, 0b000, 0, 1),
        Inst::Flw { rd, rs1, offset } => i_type(LOAD_FP, fr(rd), 0b010, xr(rs1), offset),
        Inst::Fsw { rs1, rs2, offset } => s_type(STORE_FP, 0b010, xr(rs1), fr(rs2), offset),
        Inst::FpOp { op, rd, rs1, rs2 } => {
            let (funct7, funct3, rs2_field) = match op {
                FpOp::Add => (0b0000000, RM_DYN, fr(rs2)),
                FpOp::Sub => (0b0000100, RM_DYN, fr(rs2)),
                FpOp::Mul => (0b0001000, RM_DYN, fr(rs2)),
                FpOp::Div => (0b0001100, RM_DYN, fr(rs2)),
                FpOp::Sqrt => (0b0101100, RM_DYN, 0),
                FpOp::SgnJ => (0b0010000, 0b000, fr(rs2)),
                FpOp::SgnJN => (0b0010000, 0b001, fr(rs2)),
                FpOp::SgnJX => (0b0010000, 0b010, fr(rs2)),
                FpOp::Min => (0b0010100, 0b000, fr(rs2)),
                FpOp::Max => (0b0010100, 0b001, fr(rs2)),
            };
            r_type(OP_FP, fr(rd), funct3, fr(rs1), rs2_field, funct7)
        }
        Inst::FpFma {
            op,
            rd,
            rs1,
            rs2,
            rs3,
        } => {
            let opcode = match op {
                FmaOp::MAdd => MADD,
                FmaOp::MSub => MSUB,
                FmaOp::NMSub => NMSUB,
                FmaOp::NMAdd => NMADD,
            };
            r4_type(opcode, fr(rd), RM_DYN, fr(rs1), fr(rs2), fr(rs3))
        }
        Inst::FpCmp { op, rd, rs1, rs2 } => {
            let funct3 = match op {
                FpCmpOp::Eq => 0b010,
                FpCmpOp::Lt => 0b001,
                FpCmpOp::Le => 0b000,
            };
            r_type(OP_FP, xr(rd), funct3, fr(rs1), fr(rs2), 0b1010000)
        }
        Inst::FpToInt { op, rd, rs1 } => match op {
            FpToIntOp::CvtW => r_type(OP_FP, xr(rd), RM_DYN, fr(rs1), 0b00000, 0b1100000),
            FpToIntOp::CvtWu => r_type(OP_FP, xr(rd), RM_DYN, fr(rs1), 0b00001, 0b1100000),
            FpToIntOp::MvXW => r_type(OP_FP, xr(rd), 0b000, fr(rs1), 0b00000, 0b1110000),
            FpToIntOp::Class => r_type(OP_FP, xr(rd), 0b001, fr(rs1), 0b00000, 0b1110000),
        },
        Inst::IntToFp { op, rd, rs1 } => match op {
            IntToFpOp::CvtW => r_type(OP_FP, fr(rd), RM_DYN, xr(rs1), 0b00000, 0b1101000),
            IntToFpOp::CvtWu => r_type(OP_FP, fr(rd), RM_DYN, xr(rs1), 0b00001, 0b1101000),
            IntToFpOp::MvWX => r_type(OP_FP, fr(rd), 0b000, xr(rs1), 0b00000, 0b1111000),
        },
        Inst::SimtS {
            rc,
            r_step,
            r_end,
            interval,
        } => {
            debug_assert!(
                (1..=127).contains(&interval),
                "simt_s interval out of range: {interval}"
            );
            r_type(
                CUSTOM_0,
                xr(rc),
                0b000,
                xr(r_step),
                xr(r_end),
                interval as u32,
            )
        }
        Inst::SimtE {
            rc,
            r_end,
            l_offset,
        } => i_type(CUSTOM_0, xr(rc), 0b001, xr(r_end), l_offset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_golden_encodings() {
        // Cross-checked against the RISC-V spec / GNU assembler output.
        // addi a0, a1, 1  -> 0x00158513
        assert_eq!(
            encode(&Inst::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: 1
            }),
            0x0015_8513
        );
        // add a0, a1, a2 -> 0x00C58533
        assert_eq!(
            encode(&Inst::Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }),
            0x00C5_8533
        );
        // sub a0, a1, a2 -> 0x40C58533
        assert_eq!(
            encode(&Inst::Op {
                op: AluOp::Sub,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }),
            0x40C5_8533
        );
        // lw a0, 8(sp) -> 0x00812503
        assert_eq!(
            encode(&Inst::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: 8
            }),
            0x0081_2503
        );
        // sw a0, 8(sp) -> 0x00A12423
        assert_eq!(
            encode(&Inst::Store {
                op: StoreOp::Sw,
                rs1: Reg::SP,
                rs2: Reg::A0,
                offset: 8
            }),
            0x00A1_2423
        );
        // lui a0, 0x12345 -> 0x12345537
        assert_eq!(
            encode(&Inst::Lui {
                rd: Reg::A0,
                imm: 0x12345 << 12
            }),
            0x1234_5537
        );
        // jal ra, 16 -> 0x010000EF
        assert_eq!(
            encode(&Inst::Jal {
                rd: Reg::RA,
                offset: 16
            }),
            0x0100_00EF
        );
        // beq a0, a1, -4 -> 0xFEB50EE3
        assert_eq!(
            encode(&Inst::Branch {
                op: BranchOp::Beq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -4
            }),
            0xFEB5_0EE3
        );
        // ecall -> 0x00000073
        assert_eq!(encode(&Inst::Ecall), 0x0000_0073);
        // ebreak -> 0x00100073
        assert_eq!(encode(&Inst::Ebreak), 0x0010_0073);
        // mul a0, a1, a2 -> 0x02C58533
        assert_eq!(
            encode(&Inst::Op {
                op: AluOp::Mul,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }),
            0x02C5_8533
        );
        // srai a0, a1, 3 -> 0x4035D513
        assert_eq!(
            encode(&Inst::OpImm {
                op: AluOp::Sra,
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: 3
            }),
            0x4035_D513
        );
    }

    #[test]
    fn fp_golden_encodings() {
        use crate::reg::FReg;
        // fadd.s fa0, fa1, fa2 (rm=dyn) -> 0x00C5F553
        assert_eq!(
            encode(&Inst::FpOp {
                op: FpOp::Add,
                rd: FReg::new(10),
                rs1: FReg::new(11),
                rs2: FReg::new(12)
            }),
            0x00C5_F553
        );
        // flw fa0, 0(a0) -> 0x00052507
        assert_eq!(
            encode(&Inst::Flw {
                rd: FReg::new(10),
                rs1: Reg::A0,
                offset: 0
            }),
            0x0005_2507
        );
        // fmadd.s fa0, fa1, fa2, fa3 (rm=dyn) -> 0x68C5F543
        assert_eq!(
            encode(&Inst::FpFma {
                op: FmaOp::MAdd,
                rd: FReg::new(10),
                rs1: FReg::new(11),
                rs2: FReg::new(12),
                rs3: FReg::new(13)
            }),
            0x68C5_F543
        );
    }

    #[test]
    fn nop_is_canonical() {
        // addi x0, x0, 0 -> 0x00000013
        assert_eq!(encode(&Inst::NOP), 0x0000_0013);
    }

    #[test]
    fn custom0_opcode_used_for_simt() {
        let s = encode(&Inst::SimtS {
            rc: Reg::T0,
            r_step: Reg::T1,
            r_end: Reg::T2,
            interval: 4,
        });
        assert_eq!(s & 0x7F, opcodes::CUSTOM_0);
        let e = encode(&Inst::SimtE {
            rc: Reg::T0,
            r_end: Reg::T2,
            l_offset: -128,
        });
        assert_eq!(e & 0x7F, opcodes::CUSTOM_0);
        assert_ne!((s >> 12) & 0x7, (e >> 12) & 0x7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)]
    fn branch_offset_range_checked() {
        let _ = encode(&Inst::Branch {
            op: BranchOp::Beq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 5000,
        });
    }

    #[test]
    #[should_panic(expected = "no OP-IMM form")]
    #[cfg(debug_assertions)]
    fn sub_imm_rejected() {
        let _ = encode(&Inst::OpImm {
            op: AluOp::Sub,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: 1,
        });
    }
}
