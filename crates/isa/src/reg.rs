//! Architectural register types for the RV32 integer and floating-point
//! register files, plus the unified register-lane index space used by DiAG.
//!
//! DiAG abstracts every architectural register as a *register lane* — a wire
//! bundle carrying the register's value and a valid bit through the row of
//! processing elements (paper §2, §4.1). The unified [`ArchReg`] index maps
//! the 32 integer registers to lanes `0..32` and the 32 floating-point
//! registers to lanes `32..64`.

use core::fmt;
use core::str::FromStr;

/// Number of integer registers in RV32.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point registers in RV32F.
pub const NUM_FP_REGS: usize = 32;
/// Total number of register lanes in a DiAG processor supporting RV32IMF.
pub const NUM_LANES: usize = NUM_INT_REGS + NUM_FP_REGS;

/// An RV32 integer register, `x0` through `x31`.
///
/// `x0` is hardwired to zero; writes to it are discarded by every machine
/// model in this workspace.
///
/// # Examples
///
/// ```
/// use diag_isa::Reg;
///
/// let sp: Reg = "sp".parse().unwrap();
/// assert_eq!(sp, Reg::SP);
/// assert_eq!(sp.number(), 2);
/// assert_eq!(sp.to_string(), "sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// An RV32F floating-point register, `f0` through `f31`.
///
/// # Examples
///
/// ```
/// use diag_isa::FReg;
///
/// let fa0: FReg = "fa0".parse().unwrap();
/// assert_eq!(fa0.number(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

/// A register lane index in DiAG's unified lane space.
///
/// Lanes `0..32` carry the integer registers `x0..x31`; lanes `32..64` carry
/// the floating-point registers `f0..f31`. The lane for `x0` exists but is
/// always valid and always zero.
///
/// # Examples
///
/// ```
/// use diag_isa::{ArchReg, Reg, FReg};
///
/// assert_eq!(ArchReg::from(Reg::A0).index(), 10);
/// assert_eq!(ArchReg::from(FReg::new(3)).index(), 35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

const INT_ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

const FP_ABI_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

impl Reg {
    /// The hardwired-zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address register `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer register `x2`.
    pub const SP: Reg = Reg(2);
    /// Global pointer register `x3`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer register `x4`.
    pub const TP: Reg = Reg(4);
    /// Temporary register `t0` (`x5`).
    pub const T0: Reg = Reg(5);
    /// Temporary register `t1` (`x6`).
    pub const T1: Reg = Reg(6);
    /// Temporary register `t2` (`x7`).
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer `s0` (`x8`).
    pub const S0: Reg = Reg(8);
    /// Saved register `s1` (`x9`).
    pub const S1: Reg = Reg(9);
    /// Argument/return register `a0` (`x10`).
    pub const A0: Reg = Reg(10);
    /// Argument/return register `a1` (`x11`).
    pub const A1: Reg = Reg(11);
    /// Argument register `a2` (`x12`).
    pub const A2: Reg = Reg(12);
    /// Argument register `a3` (`x13`).
    pub const A3: Reg = Reg(13);
    /// Argument register `a4` (`x14`).
    pub const A4: Reg = Reg(14);
    /// Argument register `a5` (`x15`).
    pub const A5: Reg = Reg(15);
    /// Argument register `a6` (`x16`).
    pub const A6: Reg = Reg(16);
    /// Argument register `a7` (`x17`).
    pub const A7: Reg = Reg(17);
    /// Saved register `s2` (`x18`).
    pub const S2: Reg = Reg(18);
    /// Saved register `s3` (`x19`).
    pub const S3: Reg = Reg(19);
    /// Saved register `s4` (`x20`).
    pub const S4: Reg = Reg(20);
    /// Saved register `s5` (`x21`).
    pub const S5: Reg = Reg(21);
    /// Saved register `s6` (`x22`).
    pub const S6: Reg = Reg(22);
    /// Saved register `s7` (`x23`).
    pub const S7: Reg = Reg(23);
    /// Saved register `s8` (`x24`).
    pub const S8: Reg = Reg(24);
    /// Saved register `s9` (`x25`).
    pub const S9: Reg = Reg(25);
    /// Saved register `s10` (`x26`).
    pub const S10: Reg = Reg(26);
    /// Saved register `s11` (`x27`).
    pub const S11: Reg = Reg(27);
    /// Temporary register `t3` (`x28`).
    pub const T3: Reg = Reg(28);
    /// Temporary register `t4` (`x29`).
    pub const T4: Reg = Reg(29);
    /// Temporary register `t5` (`x30`).
    pub const T5: Reg = Reg(30);
    /// Temporary register `t6` (`x31`).
    pub const T6: Reg = Reg(31);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> Reg {
        assert!(n < 32, "integer register number out of range");
        Reg(n)
    }

    /// Creates a register from its number, returning `None` if out of range.
    #[inline]
    pub const fn try_new(n: u8) -> Option<Reg> {
        if n < 32 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// The register's number, `0..32`.
    #[inline]
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register `x0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ABI name of this register (e.g. `"sp"` for `x2`).
    pub fn abi_name(self) -> &'static str {
        INT_ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 integer registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl FReg {
    /// Creates a floating-point register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> FReg {
        assert!(n < 32, "floating-point register number out of range");
        FReg(n)
    }

    /// Creates a floating-point register, returning `None` if out of range.
    #[inline]
    pub const fn try_new(n: u8) -> Option<FReg> {
        if n < 32 {
            Some(FReg(n))
        } else {
            None
        }
    }

    /// The register's number, `0..32`.
    #[inline]
    pub const fn number(self) -> u8 {
        self.0
    }

    /// The ABI name of this register (e.g. `"fa0"` for `f10`).
    pub fn abi_name(self) -> &'static str {
        FP_ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 floating-point registers in numeric order.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0..32).map(FReg)
    }
}

impl ArchReg {
    /// The lane carrying the hardwired-zero integer register.
    pub const ZERO: ArchReg = ArchReg(0);

    /// Creates a lane index directly.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[inline]
    pub const fn new(index: u8) -> ArchReg {
        assert!(index < NUM_LANES as u8, "register lane index out of range");
        ArchReg(index)
    }

    /// The unified lane index, `0..64`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this lane carries an integer register.
    #[inline]
    pub const fn is_int(self) -> bool {
        self.0 < NUM_INT_REGS as u8
    }

    /// Whether this lane carries a floating-point register.
    #[inline]
    pub const fn is_fp(self) -> bool {
        !self.is_int()
    }

    /// Whether this is the `x0` lane, which is always valid and zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The integer register carried by this lane, if any.
    pub fn as_int(self) -> Option<Reg> {
        if self.is_int() {
            Some(Reg(self.0))
        } else {
            None
        }
    }

    /// The floating-point register carried by this lane, if any.
    pub fn as_fp(self) -> Option<FReg> {
        if self.is_fp() {
            Some(FReg(self.0 - NUM_INT_REGS as u8))
        } else {
            None
        }
    }

    /// Iterates over all 64 lanes in index order.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_LANES as u8).map(ArchReg)
    }
}

impl From<Reg> for ArchReg {
    #[inline]
    fn from(r: Reg) -> ArchReg {
        ArchReg(r.0)
    }
}

impl From<FReg> for ArchReg {
    #[inline]
    fn from(r: FReg) -> ArchReg {
        ArchReg(r.0 + NUM_INT_REGS as u8)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_int() {
            Some(r) => r.fmt(f),
            None => self.as_fp().expect("lane is int or fp").fmt(f),
        }
    }
}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        if let Some(idx) = INT_ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(Reg(idx as u8));
        }
        // Accept the architectural names x0..x31 and the common alias `fp`.
        if s == "fp" {
            return Ok(Reg::S0);
        }
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                if let Some(r) = Reg::try_new(n) {
                    return Ok(r);
                }
            }
        }
        Err(ParseRegError {
            name: s.to_string(),
        })
    }
}

impl FromStr for FReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<FReg, ParseRegError> {
        if let Some(idx) = FP_ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(FReg(idx as u8));
        }
        if let Some(num) = s.strip_prefix('f') {
            if let Ok(n) = num.parse::<u8>() {
                if let Some(r) = FReg::try_new(n) {
                    return Ok(r);
                }
            }
        }
        Err(ParseRegError {
            name: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_round_trip() {
        for r in Reg::all() {
            let parsed: Reg = r.abi_name().parse().unwrap();
            assert_eq!(parsed, r);
        }
        for r in FReg::all() {
            let parsed: FReg = r.abi_name().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn numeric_names_parse() {
        for n in 0..32u8 {
            let r: Reg = format!("x{n}").parse().unwrap();
            assert_eq!(r.number(), n);
            let f: FReg = format!("f{n}").parse().unwrap();
            assert_eq!(f.number(), n);
        }
    }

    #[test]
    fn fp_alias_parses_to_s0() {
        let r: Reg = "fp".parse().unwrap();
        assert_eq!(r, Reg::S0);
    }

    #[test]
    fn unknown_names_rejected() {
        assert!("x32".parse::<Reg>().is_err());
        assert!("q7".parse::<Reg>().is_err());
        assert!("f32".parse::<FReg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }

    #[test]
    fn lane_mapping_is_bijective() {
        let mut seen = [false; NUM_LANES];
        for r in Reg::all() {
            let lane = ArchReg::from(r);
            assert!(lane.is_int());
            assert!(!lane.is_fp());
            assert_eq!(lane.as_int(), Some(r));
            assert_eq!(lane.as_fp(), None);
            assert!(!seen[lane.index()]);
            seen[lane.index()] = true;
        }
        for r in FReg::all() {
            let lane = ArchReg::from(r);
            assert!(lane.is_fp());
            assert_eq!(lane.as_fp(), Some(r));
            assert_eq!(lane.as_int(), None);
            assert!(!seen[lane.index()]);
            seen[lane.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_lane_properties() {
        assert!(ArchReg::ZERO.is_zero());
        assert!(ArchReg::from(Reg::ZERO).is_zero());
        assert!(!ArchReg::from(FReg::new(0)).is_zero());
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(FReg::new(10).to_string(), "fa0");
        assert_eq!(ArchReg::from(Reg::SP).to_string(), "sp");
        assert_eq!(ArchReg::from(FReg::new(0)).to_string(), "ft0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
        assert!(FReg::try_new(31).is_some());
        assert!(FReg::try_new(32).is_none());
    }
}
