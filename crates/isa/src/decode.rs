//! Decoding of 32-bit RISC-V words into [`Inst`] values.
//!
//! The decoder accepts exactly the RV32IMF subset plus the DiAG SIMT
//! extension produced by [`crate::encode::encode`]; anything else yields a
//! [`DecodeError`] identifying the offending word, mirroring how DiAG's
//! per-PE `RV_DECODER` (paper Table 3) raises an illegal-instruction trap.

use core::fmt;

use crate::encode::opcodes;
use crate::inst::{
    AluOp, BranchOp, FmaOp, FpCmpOp, FpOp, FpToIntOp, Inst, IntToFpOp, LoadOp, StoreOp,
};
use crate::reg::{FReg, Reg};

/// Error produced when a 32-bit word is not a valid instruction in the
/// supported RV32IMF + SIMT subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn rd(word: u32) -> Reg {
    Reg::new(((word >> 7) & 0x1F) as u8)
}

#[inline]
fn rs1(word: u32) -> Reg {
    Reg::new(((word >> 15) & 0x1F) as u8)
}

#[inline]
fn rs2(word: u32) -> Reg {
    Reg::new(((word >> 20) & 0x1F) as u8)
}

#[inline]
fn frd(word: u32) -> FReg {
    FReg::new(((word >> 7) & 0x1F) as u8)
}

#[inline]
fn frs1(word: u32) -> FReg {
    FReg::new(((word >> 15) & 0x1F) as u8)
}

#[inline]
fn frs2(word: u32) -> FReg {
    FReg::new(((word >> 20) & 0x1F) as u8)
}

#[inline]
fn frs3(word: u32) -> FReg {
    FReg::new(((word >> 27) & 0x1F) as u8)
}

#[inline]
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

#[inline]
fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Sign-extended I-type immediate.
#[inline]
fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

/// Sign-extended S-type immediate.
#[inline]
fn imm_s(word: u32) -> i32 {
    (((word as i32) >> 25) << 5) | (((word >> 7) & 0x1F) as i32)
}

/// Sign-extended B-type immediate.
#[inline]
fn imm_b(word: u32) -> i32 {
    let imm12 = ((word >> 31) & 0x1) as i32;
    let imm11 = ((word >> 7) & 0x1) as i32;
    let imm10_5 = ((word >> 25) & 0x3F) as i32;
    let imm4_1 = ((word >> 8) & 0xF) as i32;
    let value = (imm12 << 12) | (imm11 << 11) | (imm10_5 << 5) | (imm4_1 << 1);
    (value << 19) >> 19
}

/// U-type immediate (already shifted).
#[inline]
fn imm_u(word: u32) -> i32 {
    (word & 0xFFFF_F000) as i32
}

/// Sign-extended J-type immediate.
#[inline]
fn imm_j(word: u32) -> i32 {
    let imm20 = ((word >> 31) & 0x1) as i32;
    let imm19_12 = ((word >> 12) & 0xFF) as i32;
    let imm11 = ((word >> 20) & 0x1) as i32;
    let imm10_1 = ((word >> 21) & 0x3FF) as i32;
    let value = (imm20 << 20) | (imm19_12 << 12) | (imm11 << 11) | (imm10_1 << 1);
    (value << 11) >> 11
}

/// Process-wide count of [`decode`] invocations.
///
/// A test hook for the station layer's decode-once property: the machines'
/// reuse paths must execute from predecoded stations without touching the
/// decoder, which tests verify by sampling this counter around steady-state
/// steps. Monotonic and shared across threads; meaningful as a *delta*.
static DECODE_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The number of times [`decode`] has run in this process, for asserting
/// that hot execution paths perform zero decodes (see the station layer,
/// [`crate::station`]). Compare before/after deltas; the absolute value
/// accumulates across the whole process.
pub fn decode_calls() -> u64 {
    DECODE_CALLS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid RV32IMF or DiAG SIMT
/// extension instruction.
///
/// # Examples
///
/// ```
/// use diag_isa::{decode, Inst};
///
/// assert_eq!(decode(0x0000_0013).unwrap(), Inst::NOP);
/// assert!(decode(0xFFFF_FFFF).is_err());
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    DECODE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let err = Err(DecodeError { word });
    let opcode = word & 0x7F;
    let inst = match opcode {
        opcodes::LUI => Inst::Lui {
            rd: rd(word),
            imm: imm_u(word),
        },
        opcodes::AUIPC => Inst::Auipc {
            rd: rd(word),
            imm: imm_u(word),
        },
        opcodes::JAL => Inst::Jal {
            rd: rd(word),
            offset: imm_j(word),
        },
        opcodes::JALR => {
            if funct3(word) != 0 {
                return err;
            }
            Inst::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        opcodes::BRANCH => {
            let op = match funct3(word) {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return err,
            };
            Inst::Branch {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            }
        }
        opcodes::LOAD => {
            let op = match funct3(word) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return err,
            };
            Inst::Load {
                op,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        opcodes::STORE => {
            let op = match funct3(word) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return err,
            };
            Inst::Store {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_s(word),
            }
        }
        opcodes::OP_IMM => {
            let imm = imm_i(word);
            let op = match funct3(word) {
                0b000 => AluOp::Add,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                0b001 => {
                    if funct7(word) != 0 {
                        return err;
                    }
                    return Ok(Inst::OpImm {
                        op: AluOp::Sll,
                        rd: rd(word),
                        rs1: rs1(word),
                        imm: imm & 0x1F,
                    });
                }
                0b101 => {
                    let op = match funct7(word) {
                        0b0000000 => AluOp::Srl,
                        0b0100000 => AluOp::Sra,
                        _ => return err,
                    };
                    return Ok(Inst::OpImm {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        imm: imm & 0x1F,
                    });
                }
                _ => unreachable!("funct3 is 3 bits"),
            };
            Inst::OpImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            }
        }
        opcodes::OP => {
            let op = match (funct7(word), funct3(word)) {
                (0b0000000, 0b000) => AluOp::Add,
                (0b0100000, 0b000) => AluOp::Sub,
                (0b0000000, 0b001) => AluOp::Sll,
                (0b0000000, 0b010) => AluOp::Slt,
                (0b0000000, 0b011) => AluOp::Sltu,
                (0b0000000, 0b100) => AluOp::Xor,
                (0b0000000, 0b101) => AluOp::Srl,
                (0b0100000, 0b101) => AluOp::Sra,
                (0b0000000, 0b110) => AluOp::Or,
                (0b0000000, 0b111) => AluOp::And,
                (0b0000001, 0b000) => AluOp::Mul,
                (0b0000001, 0b001) => AluOp::Mulh,
                (0b0000001, 0b010) => AluOp::Mulhsu,
                (0b0000001, 0b011) => AluOp::Mulhu,
                (0b0000001, 0b100) => AluOp::Div,
                (0b0000001, 0b101) => AluOp::Divu,
                (0b0000001, 0b110) => AluOp::Rem,
                (0b0000001, 0b111) => AluOp::Remu,
                _ => return err,
            };
            Inst::Op {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            }
        }
        opcodes::MISC_MEM => Inst::Fence,
        opcodes::SYSTEM => {
            if funct3(word) != 0 {
                return err;
            }
            match word >> 20 {
                0 => Inst::Ecall,
                1 => Inst::Ebreak,
                _ => return err,
            }
        }
        opcodes::LOAD_FP => {
            if funct3(word) != 0b010 {
                return err;
            }
            Inst::Flw {
                rd: frd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        opcodes::STORE_FP => {
            if funct3(word) != 0b010 {
                return err;
            }
            Inst::Fsw {
                rs1: rs1(word),
                rs2: frs2(word),
                offset: imm_s(word),
            }
        }
        opcodes::OP_FP => return decode_op_fp(word),
        opcodes::MADD | opcodes::MSUB | opcodes::NMSUB | opcodes::NMADD => {
            // fmt field (bits 26:25) must be 00 (single precision).
            if (word >> 25) & 0x3 != 0 {
                return err;
            }
            let op = match opcode {
                opcodes::MADD => FmaOp::MAdd,
                opcodes::MSUB => FmaOp::MSub,
                opcodes::NMSUB => FmaOp::NMSub,
                _ => FmaOp::NMAdd,
            };
            Inst::FpFma {
                op,
                rd: frd(word),
                rs1: frs1(word),
                rs2: frs2(word),
                rs3: frs3(word),
            }
        }
        opcodes::CUSTOM_0 => match funct3(word) {
            0b000 => {
                let interval = funct7(word) as u8;
                if interval == 0 {
                    return err;
                }
                Inst::SimtS {
                    rc: rd(word),
                    r_step: rs1(word),
                    r_end: rs2(word),
                    interval,
                }
            }
            0b001 => Inst::SimtE {
                rc: rd(word),
                r_end: rs1(word),
                l_offset: imm_i(word),
            },
            _ => return err,
        },
        _ => return err,
    };
    Ok(inst)
}

fn decode_op_fp(word: u32) -> Result<Inst, DecodeError> {
    let err = Err(DecodeError { word });
    let f7 = funct7(word);
    let f3 = funct3(word);
    let inst = match f7 {
        0b0000000 => Inst::FpOp {
            op: FpOp::Add,
            rd: frd(word),
            rs1: frs1(word),
            rs2: frs2(word),
        },
        0b0000100 => Inst::FpOp {
            op: FpOp::Sub,
            rd: frd(word),
            rs1: frs1(word),
            rs2: frs2(word),
        },
        0b0001000 => Inst::FpOp {
            op: FpOp::Mul,
            rd: frd(word),
            rs1: frs1(word),
            rs2: frs2(word),
        },
        0b0001100 => Inst::FpOp {
            op: FpOp::Div,
            rd: frd(word),
            rs1: frs1(word),
            rs2: frs2(word),
        },
        0b0101100 => {
            if (word >> 20) & 0x1F != 0 {
                return err;
            }
            Inst::FpOp {
                op: FpOp::Sqrt,
                rd: frd(word),
                rs1: frs1(word),
                rs2: FReg::new(0),
            }
        }
        0b0010000 => {
            let op = match f3 {
                0b000 => FpOp::SgnJ,
                0b001 => FpOp::SgnJN,
                0b010 => FpOp::SgnJX,
                _ => return err,
            };
            Inst::FpOp {
                op,
                rd: frd(word),
                rs1: frs1(word),
                rs2: frs2(word),
            }
        }
        0b0010100 => {
            let op = match f3 {
                0b000 => FpOp::Min,
                0b001 => FpOp::Max,
                _ => return err,
            };
            Inst::FpOp {
                op,
                rd: frd(word),
                rs1: frs1(word),
                rs2: frs2(word),
            }
        }
        0b1010000 => {
            let op = match f3 {
                0b010 => FpCmpOp::Eq,
                0b001 => FpCmpOp::Lt,
                0b000 => FpCmpOp::Le,
                _ => return err,
            };
            Inst::FpCmp {
                op,
                rd: rd(word),
                rs1: frs1(word),
                rs2: frs2(word),
            }
        }
        0b1100000 => {
            let op = match (word >> 20) & 0x1F {
                0b00000 => FpToIntOp::CvtW,
                0b00001 => FpToIntOp::CvtWu,
                _ => return err,
            };
            Inst::FpToInt {
                op,
                rd: rd(word),
                rs1: frs1(word),
            }
        }
        0b1110000 => {
            if (word >> 20) & 0x1F != 0 {
                return err;
            }
            let op = match f3 {
                0b000 => FpToIntOp::MvXW,
                0b001 => FpToIntOp::Class,
                _ => return err,
            };
            Inst::FpToInt {
                op,
                rd: rd(word),
                rs1: frs1(word),
            }
        }
        0b1101000 => {
            let op = match (word >> 20) & 0x1F {
                0b00000 => IntToFpOp::CvtW,
                0b00001 => IntToFpOp::CvtWu,
                _ => return err,
            };
            Inst::IntToFp {
                op,
                rd: frd(word),
                rs1: rs1(word),
            }
        }
        0b1111000 => {
            if (word >> 20) & 0x1F != 0 || f3 != 0 {
                return err;
            }
            Inst::IntToFp {
                op: IntToFpOp::MvWX,
                rd: frd(word),
                rs1: rs1(word),
            }
        }
        _ => return err,
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn immediate_extraction_signs() {
        // lw a0, -4(sp)
        let w = encode(&Inst::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: -4,
        });
        assert_eq!(
            decode(w).unwrap(),
            Inst::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: -4
            }
        );
        // sw with negative offset
        let w = encode(&Inst::Store {
            op: StoreOp::Sw,
            rs1: Reg::SP,
            rs2: Reg::A0,
            offset: -2048,
        });
        match decode(w).unwrap() {
            Inst::Store { offset, .. } => assert_eq!(offset, -2048),
            other => panic!("wrong decode: {other:?}"),
        }
        // branch at extreme offsets
        for off in [-4096i32, -2, 2, 4094] {
            let w = encode(&Inst::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: off,
            });
            match decode(w).unwrap() {
                Inst::Branch { offset, .. } => assert_eq!(offset, off, "offset {off}"),
                other => panic!("wrong decode: {other:?}"),
            }
        }
        // jal at extreme offsets
        for off in [-(1i32 << 20), -2, 2, (1 << 20) - 2] {
            let w = encode(&Inst::Jal {
                rd: Reg::RA,
                offset: off,
            });
            match decode(w).unwrap() {
                Inst::Jal { offset, .. } => assert_eq!(offset, off, "offset {off}"),
                other => panic!("wrong decode: {other:?}"),
            }
        }
    }

    #[test]
    fn illegal_words_rejected() {
        assert!(decode(0x0000_0000).is_err()); // all-zero is defined illegal
        assert!(decode(0xFFFF_FFFF).is_err());
        // OP with invalid funct7
        assert!(decode(0x7000_0033).is_err());
        // BRANCH with funct3 = 010
        assert!(decode(0x0000_2063).is_err());
        // custom-0 with funct3 = 0 and interval 0 (reserved)
        assert!(decode(0x0000_000B).is_err());
    }

    #[test]
    fn rounding_mode_ignored_for_arith() {
        // fadd.s with rm = RNE (000) decodes identically to rm = DYN (111).
        let dynamic = encode(&Inst::FpOp {
            op: FpOp::Add,
            rd: FReg::new(1),
            rs1: FReg::new(2),
            rs2: FReg::new(3),
        });
        let rne = dynamic & !(0x7 << 12);
        assert_eq!(decode(dynamic).unwrap(), decode(rne).unwrap());
    }

    #[test]
    fn fma_fmt_field_checked() {
        let w = encode(&Inst::FpFma {
            op: FmaOp::MAdd,
            rd: FReg::new(0),
            rs1: FReg::new(1),
            rs2: FReg::new(2),
            rs3: FReg::new(3),
        });
        // Corrupt fmt to double precision.
        assert!(decode(w | (0b01 << 25)).is_err());
    }

    #[test]
    fn simt_round_trip() {
        let s = Inst::SimtS {
            rc: Reg::S1,
            r_step: Reg::S2,
            r_end: Reg::S3,
            interval: 127,
        };
        assert_eq!(decode(encode(&s)).unwrap(), s);
        let e = Inst::SimtE {
            rc: Reg::S1,
            r_end: Reg::S3,
            l_offset: -2048,
        };
        assert_eq!(decode(encode(&e)).unwrap(), e);
    }
}
