//! Pure functional execution semantics shared by every machine model.
//!
//! These functions compute *values only* — register reads, memory access,
//! and timing are the responsibility of the machine (DiAG core, out-of-order
//! baseline, or in-order reference). Keeping the semantics here guarantees
//! that all machines agree architecturally, which the differential tests
//! rely on.

use crate::inst::{AluOp, BranchOp, FmaOp, FpCmpOp, FpOp, FpToIntOp, IntToFpOp, LoadOp};

/// Evaluates an integer ALU / M-extension operation.
///
/// Division follows the RISC-V M semantics: division by zero yields all-ones
/// (quotient) or the dividend (remainder); signed overflow (`i32::MIN / -1`)
/// yields the dividend and zero remainder.
///
/// # Examples
///
/// ```
/// use diag_isa::{exec::alu, AluOp};
///
/// assert_eq!(alu(AluOp::Add, 2, 3), 5);
/// assert_eq!(alu(AluOp::Div, 7, 0), u32::MAX);
/// ```
pub fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a as i32 == i32::MIN && b as i32 == -1 {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a as i32 == i32::MIN && b as i32 == -1 {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

/// Evaluates a conditional branch comparison.
///
/// # Examples
///
/// ```
/// use diag_isa::{exec::branch_taken, BranchOp};
///
/// assert!(branch_taken(BranchOp::Blt, (-1i32) as u32, 0));
/// assert!(!branch_taken(BranchOp::Bltu, (-1i32) as u32, 0));
/// ```
pub fn branch_taken(op: BranchOp, a: u32, b: u32) -> bool {
    match op {
        BranchOp::Beq => a == b,
        BranchOp::Bne => a != b,
        BranchOp::Blt => (a as i32) < (b as i32),
        BranchOp::Bge => (a as i32) >= (b as i32),
        BranchOp::Bltu => a < b,
        BranchOp::Bgeu => a >= b,
    }
}

/// Sign- or zero-extends a loaded value according to the load operation.
/// `raw` holds the value's low `op.size()` bytes in its least-significant
/// positions.
pub fn extend_load(op: LoadOp, raw: u32) -> u32 {
    match op {
        LoadOp::Lb => raw as u8 as i8 as i32 as u32,
        LoadOp::Lbu => raw as u8 as u32,
        LoadOp::Lh => raw as u16 as i16 as i32 as u32,
        LoadOp::Lhu => raw as u16 as u32,
        LoadOp::Lw => raw,
    }
}

fn f(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// The RISC-V canonical NaN for single precision.
pub const CANONICAL_NAN: u32 = 0x7FC0_0000;

fn canonize(v: f32) -> u32 {
    if v.is_nan() {
        CANONICAL_NAN
    } else {
        v.to_bits()
    }
}

/// Evaluates a two-operand single-precision FP operation on raw bit
/// patterns, producing a raw bit pattern. NaN results are canonicalized as
/// the RISC-V specification requires.
pub fn fp_op(op: FpOp, a: u32, b: u32) -> u32 {
    match op {
        FpOp::Add => canonize(f(a) + f(b)),
        FpOp::Sub => canonize(f(a) - f(b)),
        FpOp::Mul => canonize(f(a) * f(b)),
        FpOp::Div => canonize(f(a) / f(b)),
        FpOp::Sqrt => canonize(f(a).sqrt()),
        FpOp::SgnJ => (a & 0x7FFF_FFFF) | (b & 0x8000_0000),
        FpOp::SgnJN => (a & 0x7FFF_FFFF) | (!b & 0x8000_0000),
        FpOp::SgnJX => a ^ (b & 0x8000_0000),
        FpOp::Min => {
            let (x, y) = (f(a), f(b));
            if x.is_nan() && y.is_nan() {
                CANONICAL_NAN
            } else if x.is_nan() {
                b
            } else if y.is_nan() {
                a
            } else if x == y {
                // fmin(-0.0, +0.0) = -0.0: prefer the operand with the sign bit.
                if a & 0x8000_0000 != 0 {
                    a
                } else {
                    b
                }
            } else if x < y {
                a
            } else {
                b
            }
        }
        FpOp::Max => {
            let (x, y) = (f(a), f(b));
            if x.is_nan() && y.is_nan() {
                CANONICAL_NAN
            } else if x.is_nan() {
                b
            } else if y.is_nan() {
                a
            } else if x == y {
                // fmax(-0.0, +0.0) = +0.0: prefer the operand without the sign bit.
                if a & 0x8000_0000 == 0 {
                    a
                } else {
                    b
                }
            } else if x > y {
                a
            } else {
                b
            }
        }
    }
}

/// Evaluates a fused multiply-add family operation on raw bit patterns.
pub fn fp_fma(op: FmaOp, a: u32, b: u32, c: u32) -> u32 {
    let (x, y, z) = (f(a), f(b), f(c));
    let v = match op {
        FmaOp::MAdd => x.mul_add(y, z),
        FmaOp::MSub => x.mul_add(y, -z),
        FmaOp::NMSub => (-x).mul_add(y, z),
        FmaOp::NMAdd => (-x).mul_add(y, -z),
    };
    canonize(v)
}

/// Evaluates an FP comparison, producing 0 or 1. Comparisons with NaN are
/// false (the quiet-NaN semantics of `feq`/`flt`/`fle`).
pub fn fp_cmp(op: FpCmpOp, a: u32, b: u32) -> u32 {
    let (x, y) = (f(a), f(b));
    let r = match op {
        FpCmpOp::Eq => x == y,
        FpCmpOp::Lt => x < y,
        FpCmpOp::Le => x <= y,
    };
    r as u32
}

/// Evaluates an FP → integer move/convert/classify.
///
/// Conversions saturate and map NaN per the RISC-V specification
/// (`fcvt.w.s(NaN) = i32::MAX`, `fcvt.wu.s(NaN) = u32::MAX`).
pub fn fp_to_int(op: FpToIntOp, a: u32) -> u32 {
    let x = f(a);
    match op {
        FpToIntOp::CvtW => {
            if x.is_nan() || x >= i32::MAX as f32 {
                // NaN maps to the most-positive value, like overflow.
                i32::MAX as u32
            } else if x <= i32::MIN as f32 {
                i32::MIN as u32
            } else {
                // RISC-V default conversion truncates toward zero.
                (x.trunc() as i32) as u32
            }
        }
        FpToIntOp::CvtWu => {
            if x.is_nan() || x >= u32::MAX as f32 {
                u32::MAX
            } else if x <= 0.0 {
                // Negative inputs (including -0.0) clamp to zero.
                0
            } else {
                x.trunc() as u32
            }
        }
        FpToIntOp::MvXW => a,
        FpToIntOp::Class => fclass(a),
    }
}

/// Evaluates an integer → FP move/convert.
pub fn int_to_fp(op: IntToFpOp, a: u32) -> u32 {
    match op {
        IntToFpOp::CvtW => (a as i32 as f32).to_bits(),
        IntToFpOp::CvtWu => (a as f32).to_bits(),
        IntToFpOp::MvWX => a,
    }
}

/// Computes the `fclass.s` 10-bit classification mask.
fn fclass(bits: u32) -> u32 {
    let sign = bits >> 31 != 0;
    let exp = (bits >> 23) & 0xFF;
    let frac = bits & 0x7F_FFFF;
    let class = match (exp, frac) {
        (0xFF, 0) => {
            if sign {
                0 // -inf
            } else {
                7 // +inf
            }
        }
        (0xFF, _) => {
            if frac >> 22 == 1 {
                9 // quiet NaN
            } else {
                8 // signaling NaN
            }
        }
        (0, 0) => {
            if sign {
                3 // -0
            } else {
                4 // +0
            }
        }
        (0, _) => {
            if sign {
                2 // negative subnormal
            } else {
                5 // positive subnormal
            }
        }
        _ => {
            if sign {
                1 // negative normal
            } else {
                6 // positive normal
            }
        }
    };
    1 << class
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_basic() {
        assert_eq!(alu(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 0, 1), u32::MAX);
        assert_eq!(alu(AluOp::Sll, 1, 33), 2); // shamt masked to 5 bits
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu(AluOp::Slt, (-1i32) as u32, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i32) as u32, 0), 0);
        assert_eq!(alu(AluOp::Xor, 0xF0F0, 0x0FF0), 0xFF00);
    }

    #[test]
    fn m_extension_corner_cases() {
        // Division by zero.
        assert_eq!(alu(AluOp::Div, 42, 0), u32::MAX);
        assert_eq!(alu(AluOp::Divu, 42, 0), u32::MAX);
        assert_eq!(alu(AluOp::Rem, 42, 0), 42);
        assert_eq!(alu(AluOp::Remu, 42, 0), 42);
        // Signed overflow.
        let min = i32::MIN as u32;
        let neg1 = (-1i32) as u32;
        assert_eq!(alu(AluOp::Div, min, neg1), min);
        assert_eq!(alu(AluOp::Rem, min, neg1), 0);
        // High multiplication.
        assert_eq!(alu(AluOp::Mulhu, u32::MAX, u32::MAX), 0xFFFF_FFFE);
        assert_eq!(alu(AluOp::Mulh, neg1, neg1), 0);
        assert_eq!(alu(AluOp::Mulhsu, neg1, u32::MAX), u32::MAX);
    }

    #[test]
    fn branch_semantics() {
        let neg = (-5i32) as u32;
        assert!(branch_taken(BranchOp::Beq, 7, 7));
        assert!(branch_taken(BranchOp::Bne, 7, 8));
        assert!(branch_taken(BranchOp::Blt, neg, 3));
        assert!(!branch_taken(BranchOp::Bltu, neg, 3));
        assert!(branch_taken(BranchOp::Bge, 3, 3));
        assert!(branch_taken(BranchOp::Bgeu, neg, 3));
    }

    #[test]
    fn load_extension() {
        assert_eq!(extend_load(LoadOp::Lb, 0x80), 0xFFFF_FF80);
        assert_eq!(extend_load(LoadOp::Lbu, 0x80), 0x80);
        assert_eq!(extend_load(LoadOp::Lh, 0x8000), 0xFFFF_8000);
        assert_eq!(extend_load(LoadOp::Lhu, 0x8000), 0x8000);
        assert_eq!(extend_load(LoadOp::Lw, 0xDEAD_BEEF), 0xDEAD_BEEF);
    }

    #[test]
    fn fp_arith_matches_host() {
        let a = 3.5f32.to_bits();
        let b = 1.25f32.to_bits();
        assert_eq!(f32::from_bits(fp_op(FpOp::Add, a, b)), 4.75);
        assert_eq!(f32::from_bits(fp_op(FpOp::Sub, a, b)), 2.25);
        assert_eq!(f32::from_bits(fp_op(FpOp::Mul, a, b)), 4.375);
        assert_eq!(f32::from_bits(fp_op(FpOp::Div, a, b)), 2.8);
        assert_eq!(f32::from_bits(fp_op(FpOp::Sqrt, 4.0f32.to_bits(), 0)), 2.0);
    }

    #[test]
    fn fp_nan_canonicalized() {
        let nan = f32::NAN.to_bits() | 1; // a non-canonical NaN payload
        assert_eq!(fp_op(FpOp::Add, nan, 1.0f32.to_bits()), CANONICAL_NAN);
        assert_eq!(fp_op(FpOp::Div, 0, 0), CANONICAL_NAN);
    }

    #[test]
    fn sign_injection() {
        let pos = 2.0f32.to_bits();
        let neg = (-3.0f32).to_bits();
        assert_eq!(f32::from_bits(fp_op(FpOp::SgnJ, pos, neg)), -2.0);
        assert_eq!(f32::from_bits(fp_op(FpOp::SgnJN, pos, neg)), 2.0);
        assert_eq!(f32::from_bits(fp_op(FpOp::SgnJX, neg, neg)), 3.0);
    }

    #[test]
    fn min_max_nan_handling() {
        let nan = CANONICAL_NAN;
        let one = 1.0f32.to_bits();
        assert_eq!(fp_op(FpOp::Min, nan, one), one);
        assert_eq!(fp_op(FpOp::Max, one, nan), one);
        assert_eq!(fp_op(FpOp::Min, nan, nan), CANONICAL_NAN);
        assert_eq!(
            f32::from_bits(fp_op(FpOp::Min, 1.0f32.to_bits(), 2.0f32.to_bits())),
            1.0
        );
        assert_eq!(
            f32::from_bits(fp_op(FpOp::Max, 1.0f32.to_bits(), 2.0f32.to_bits())),
            2.0
        );
    }

    #[test]
    fn fma_semantics() {
        let a = 2.0f32.to_bits();
        let b = 3.0f32.to_bits();
        let c = 4.0f32.to_bits();
        assert_eq!(f32::from_bits(fp_fma(FmaOp::MAdd, a, b, c)), 10.0);
        assert_eq!(f32::from_bits(fp_fma(FmaOp::MSub, a, b, c)), 2.0);
        assert_eq!(f32::from_bits(fp_fma(FmaOp::NMSub, a, b, c)), -2.0);
        assert_eq!(f32::from_bits(fp_fma(FmaOp::NMAdd, a, b, c)), -10.0);
    }

    #[test]
    fn comparisons_with_nan_are_false() {
        let nan = CANONICAL_NAN;
        let one = 1.0f32.to_bits();
        for op in [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le] {
            assert_eq!(fp_cmp(op, nan, one), 0);
            assert_eq!(fp_cmp(op, one, nan), 0);
        }
        assert_eq!(fp_cmp(FpCmpOp::Eq, one, one), 1);
        assert_eq!(fp_cmp(FpCmpOp::Le, one, one), 1);
        assert_eq!(fp_cmp(FpCmpOp::Lt, one, 2.0f32.to_bits()), 1);
    }

    #[test]
    fn conversions_saturate() {
        assert_eq!(
            fp_to_int(FpToIntOp::CvtW, 1e20f32.to_bits()),
            i32::MAX as u32
        );
        assert_eq!(
            fp_to_int(FpToIntOp::CvtW, (-1e20f32).to_bits()),
            i32::MIN as u32
        );
        assert_eq!(fp_to_int(FpToIntOp::CvtW, CANONICAL_NAN), i32::MAX as u32);
        assert_eq!(fp_to_int(FpToIntOp::CvtWu, (-3.0f32).to_bits()), 0);
        assert_eq!(
            fp_to_int(FpToIntOp::CvtW, (-2.7f32).to_bits()),
            (-2i32) as u32
        );
        assert_eq!(fp_to_int(FpToIntOp::CvtW, 2.7f32.to_bits()), 2);
        assert_eq!(
            int_to_fp(IntToFpOp::CvtW, (-7i32) as u32),
            (-7.0f32).to_bits()
        );
        assert_eq!(
            int_to_fp(IntToFpOp::CvtWu, u32::MAX),
            (u32::MAX as f32).to_bits()
        );
    }

    #[test]
    fn raw_moves_preserve_bits() {
        assert_eq!(fp_to_int(FpToIntOp::MvXW, 0xDEAD_BEEF), 0xDEAD_BEEF);
        assert_eq!(int_to_fp(IntToFpOp::MvWX, 0xDEAD_BEEF), 0xDEAD_BEEF);
    }

    #[test]
    fn fclass_masks() {
        assert_eq!(
            fp_to_int(FpToIntOp::Class, f32::NEG_INFINITY.to_bits()),
            1 << 0
        );
        assert_eq!(fp_to_int(FpToIntOp::Class, (-1.5f32).to_bits()), 1 << 1);
        assert_eq!(fp_to_int(FpToIntOp::Class, 0x8000_0001), 1 << 2); // -subnormal
        assert_eq!(fp_to_int(FpToIntOp::Class, 0x8000_0000), 1 << 3); // -0
        assert_eq!(fp_to_int(FpToIntOp::Class, 0), 1 << 4); // +0
        assert_eq!(fp_to_int(FpToIntOp::Class, 0x0000_0001), 1 << 5); // +subnormal
        assert_eq!(fp_to_int(FpToIntOp::Class, 1.5f32.to_bits()), 1 << 6);
        assert_eq!(fp_to_int(FpToIntOp::Class, f32::INFINITY.to_bits()), 1 << 7);
        assert_eq!(fp_to_int(FpToIntOp::Class, 0x7F80_0001), 1 << 8); // sNaN
        assert_eq!(fp_to_int(FpToIntOp::Class, CANONICAL_NAN), 1 << 9); // qNaN
    }
}
