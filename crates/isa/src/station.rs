//! Predecoded PE-station records: decode-once / execute-many.
//!
//! DiAG's headline mechanism is datapath reuse: once an I-line is resident
//! in a processing cluster, loop iterations re-execute from the configured
//! PEs and "skip fetch/decode entirely" (paper §4.2). A [`Station`] is the
//! software analogue of a configured PE: the instruction decoded exactly
//! once into a flat record — pre-split source operands as [`ArchReg`] lane
//! indices, latency class, functional-unit kind, and an [`ExecKind`]
//! discriminant with PC-relative fields already resolved — so the
//! simulator's hot loop touches no program bytes and no decoder on the
//! reuse path, mirroring the hardware it models.
//!
//! [`StationSlot`] is one entry of a per-cluster arena: line loads may
//! cover text-segment tails ([`StationSlot::Empty`]) or raw data words
//! that do not decode ([`StationSlot::Illegal`]); both only become errors
//! if the PC actually reaches them, exactly like the per-PE `RV_DECODER`
//! raising an illegal-instruction trap at execution (Table 3).
//! [`StationTable`] predecodes a whole text segment for machines without
//! cluster residency (the in-order and out-of-order baselines).

use crate::decode::decode;
use crate::inst::{
    AluOp, BranchOp, FmaOp, FpCmpOp, FpOp, FpToIntOp, FuKind, Inst, IntToFpOp, LoadOp, SourceSet,
    StoreOp,
};
use crate::reg::ArchReg;
use crate::INST_BYTES;

/// The execution discriminant of a predecoded station.
///
/// Replaces the machines' per-step `match inst` dispatch: operands are
/// pre-split into register-lane indices, and fields that only depend on
/// the instruction's address (branch/jump targets, link values, `auipc`
/// results, the paired `simt_s` address) are resolved at lowering time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecKind {
    /// A PC- and operand-independent constant (`lui`, and `auipc` with the
    /// station's address folded in).
    Const {
        /// The value driven onto the destination lane.
        value: u32,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// ALU operation.
        op: AluOp,
        /// Source lane.
        rs1: ArchReg,
        /// Immediate operand (already sign-extended).
        imm: u32,
    },
    /// Register-register ALU / M-extension operation.
    Alu {
        /// ALU operation.
        op: AluOp,
        /// First source lane.
        rs1: ArchReg,
        /// Second source lane.
        rs2: ArchReg,
    },
    /// Direct jump with precomputed target and link value.
    Jal {
        /// Jump target address.
        target: u32,
        /// Return address (this station's address + 4).
        link: u32,
    },
    /// Indirect jump; the target needs the base register at run time.
    Jalr {
        /// Base register lane.
        rs1: ArchReg,
        /// Signed byte offset added to the base.
        offset: i32,
        /// Return address (this station's address + 4).
        link: u32,
    },
    /// Conditional branch with precomputed taken-target.
    Branch {
        /// Comparison performed.
        op: BranchOp,
        /// First compared lane.
        rs1: ArchReg,
        /// Second compared lane.
        rs2: ArchReg,
        /// Taken-path target address.
        target: u32,
    },
    /// Integer load.
    Load {
        /// Width/sign of the access.
        op: LoadOp,
        /// Base address lane.
        rs1: ArchReg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Integer store.
    Store {
        /// Width of the access.
        op: StoreOp,
        /// Base address lane.
        rs1: ArchReg,
        /// Data lane.
        rs2: ArchReg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Floating-point load word.
    LoadFp {
        /// Base address lane.
        rs1: ArchReg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Floating-point store word.
    StoreFp {
        /// Base address lane.
        rs1: ArchReg,
        /// FP data lane.
        rs2: ArchReg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Two-operand FP arithmetic.
    FpOp {
        /// Operation.
        op: FpOp,
        /// First source lane.
        rs1: ArchReg,
        /// Second source lane (ignored by `fsqrt.s`).
        rs2: ArchReg,
    },
    /// Fused multiply-add family.
    FpFma {
        /// Which fused operation.
        op: FmaOp,
        /// Multiplicand lane.
        rs1: ArchReg,
        /// Multiplier lane.
        rs2: ArchReg,
        /// Addend lane.
        rs3: ArchReg,
    },
    /// FP comparison writing an integer lane.
    FpCmp {
        /// Comparison.
        op: FpCmpOp,
        /// First source lane.
        rs1: ArchReg,
        /// Second source lane.
        rs2: ArchReg,
    },
    /// FP → integer move/convert/classify.
    FpToInt {
        /// Operation.
        op: FpToIntOp,
        /// Source lane.
        rs1: ArchReg,
    },
    /// Integer → FP move/convert.
    IntToFp {
        /// Operation.
        op: IntToFpOp,
        /// Source lane.
        rs1: ArchReg,
    },
    /// Memory-ordering fence.
    Fence,
    /// Environment call (halts the hardware thread in this workspace).
    Ecall,
    /// Breakpoint trap.
    Ebreak,
    /// `simt_s` region-start marker (sequential semantics: the control
    /// register passes through unchanged).
    SimtS {
        /// Control-register lane.
        rc: ArchReg,
    },
    /// `simt_e` region-end marker with the paired `simt_s` pre-resolved.
    SimtE {
        /// Control-register lane.
        rc: ArchReg,
        /// End-bound lane.
        r_end: ArchReg,
        /// Address of the paired `simt_s` (this station's address plus the
        /// encoded `l_offset`).
        start_pc: u32,
        /// Step-register lane from the paired `simt_s`, or `None` when
        /// `start_pc` does not hold a `simt_s` (an execution-time error).
        step: Option<ArchReg>,
    },
}

/// One instruction predecoded into a PE station (paper §4.2: the decoded
/// control signals latched at the PE for the line's residency).
///
/// All derived per-instruction facts the execution engines need every step
/// — source set, destination lane, latency, functional unit — are computed
/// once at lowering time; the reuse path never re-derives them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Station {
    /// The decoded instruction (kept for region validation, tracing, and
    /// diagnostics; the hot path dispatches on [`Station::kind`]).
    pub inst: Inst,
    /// Source register lanes, pre-split ([`Inst::sources`]).
    pub srcs: SourceSet,
    /// Destination lane, if any ([`Inst::dest`]; `x0` reported as `None`).
    pub dest: Option<ArchReg>,
    /// Execution latency in cycles ([`Inst::exec_latency`]).
    pub latency: u32,
    /// Functional-unit kind ([`Inst::fu_kind`]).
    pub fu: FuKind,
    /// Whether the FPU is activated ([`Inst::uses_fpu`]).
    pub uses_fpu: bool,
    /// Whether this station accesses memory ([`Inst::is_mem`]).
    pub is_mem: bool,
    /// The execution discriminant.
    pub kind: ExecKind,
}

impl Station {
    /// Lowers `inst`, which resides at address `pc`, into a station.
    ///
    /// `peek` resolves the instruction at another text address; it is only
    /// consulted for `simt_e`, to pre-resolve the paired `simt_s`'s step
    /// register (the one cross-instruction fact the execution engines need
    /// per loop-back).
    pub fn lower(inst: Inst, pc: u32, peek: impl FnOnce(u32) -> Option<Inst>) -> Station {
        let kind = match inst {
            Inst::Lui { imm, .. } => ExecKind::Const { value: imm as u32 },
            Inst::Auipc { imm, .. } => ExecKind::Const {
                value: pc.wrapping_add(imm as u32),
            },
            Inst::Jal { offset, .. } => ExecKind::Jal {
                target: pc.wrapping_add(offset as u32),
                link: pc.wrapping_add(INST_BYTES),
            },
            Inst::Jalr { rs1, offset, .. } => ExecKind::Jalr {
                rs1: rs1.into(),
                offset,
                link: pc.wrapping_add(INST_BYTES),
            },
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => ExecKind::Branch {
                op,
                rs1: rs1.into(),
                rs2: rs2.into(),
                target: pc.wrapping_add(offset as u32),
            },
            Inst::Load {
                op, rs1, offset, ..
            } => ExecKind::Load {
                op,
                rs1: rs1.into(),
                offset,
            },
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => ExecKind::Store {
                op,
                rs1: rs1.into(),
                rs2: rs2.into(),
                offset,
            },
            Inst::OpImm { op, rs1, imm, .. } => ExecKind::AluImm {
                op,
                rs1: rs1.into(),
                imm: imm as u32,
            },
            Inst::Op { op, rs1, rs2, .. } => ExecKind::Alu {
                op,
                rs1: rs1.into(),
                rs2: rs2.into(),
            },
            Inst::Fence => ExecKind::Fence,
            Inst::Ecall => ExecKind::Ecall,
            Inst::Ebreak => ExecKind::Ebreak,
            Inst::Flw { rs1, offset, .. } => ExecKind::LoadFp {
                rs1: rs1.into(),
                offset,
            },
            Inst::Fsw { rs1, rs2, offset } => ExecKind::StoreFp {
                rs1: rs1.into(),
                rs2: rs2.into(),
                offset,
            },
            Inst::FpOp { op, rs1, rs2, .. } => ExecKind::FpOp {
                op,
                rs1: rs1.into(),
                rs2: rs2.into(),
            },
            Inst::FpFma {
                op, rs1, rs2, rs3, ..
            } => ExecKind::FpFma {
                op,
                rs1: rs1.into(),
                rs2: rs2.into(),
                rs3: rs3.into(),
            },
            Inst::FpCmp { op, rs1, rs2, .. } => ExecKind::FpCmp {
                op,
                rs1: rs1.into(),
                rs2: rs2.into(),
            },
            Inst::FpToInt { op, rs1, .. } => ExecKind::FpToInt {
                op,
                rs1: rs1.into(),
            },
            Inst::IntToFp { op, rs1, .. } => ExecKind::IntToFp {
                op,
                rs1: rs1.into(),
            },
            Inst::SimtS { rc, .. } => ExecKind::SimtS { rc: rc.into() },
            Inst::SimtE {
                rc,
                r_end,
                l_offset,
            } => {
                let start_pc = pc.wrapping_add(l_offset as u32);
                let step = match peek(start_pc) {
                    Some(Inst::SimtS { r_step, .. }) => Some(r_step.into()),
                    _ => None,
                };
                ExecKind::SimtE {
                    rc: rc.into(),
                    r_end: r_end.into(),
                    start_pc,
                    step,
                }
            }
        };
        Station {
            inst,
            srcs: inst.sources(),
            dest: inst.dest(),
            latency: inst.exec_latency(),
            fu: inst.fu_kind(),
            uses_fpu: inst.uses_fpu(),
            is_mem: inst.is_mem(),
            kind,
        }
    }
}

/// One PE-station arena entry.
///
/// Line loads predecode whole lines eagerly; slots past the text segment
/// or holding undecodable words are recorded rather than rejected, and
/// only raise their error if the PC reaches them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StationSlot {
    /// No instruction at this slot (beyond the text segment).
    Empty,
    /// The word at this slot does not decode; executing it is an
    /// illegal-instruction error.
    Illegal {
        /// The undecodable word.
        word: u32,
    },
    /// A predecoded, executable station.
    Ready(Station),
}

/// A whole text segment predecoded into stations, for machines without
/// cluster residency (the baselines decode every dynamic instruction in
/// the modeled pipeline, but the *simulator* need not).
#[derive(Debug, Clone)]
pub struct StationTable {
    base: u32,
    slots: Vec<StationSlot>,
}

/// Process-wide count of [`StationTable::build`] calls.
static TABLE_BUILDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many whole-text [`StationTable`]s this process has lowered.
///
/// The artifact-pipeline tests assert that warm-cache runs perform *zero*
/// lowerings for already-keyed programs, the same way the zero-decode
/// hot-loop test pins the reuse path with [`crate::decode_calls`].
pub fn station_table_builds() -> u64 {
    TABLE_BUILDS.load(std::sync::atomic::Ordering::Relaxed)
}

impl StationTable {
    /// Predecodes the text segment `words` based at address `base`.
    pub fn build(base: u32, words: &[u32]) -> StationTable {
        TABLE_BUILDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let peek = |addr: u32| -> Option<Inst> {
            if addr < base || !addr.is_multiple_of(INST_BYTES) {
                return None;
            }
            let index = ((addr - base) / INST_BYTES) as usize;
            words.get(index).and_then(|&w| decode(w).ok())
        };
        let slots = words
            .iter()
            .enumerate()
            .map(|(i, &word)| match decode(word) {
                Ok(inst) => {
                    StationSlot::Ready(Station::lower(inst, base + (i as u32) * INST_BYTES, peek))
                }
                Err(_) => StationSlot::Illegal { word },
            })
            .collect();
        StationTable { base, slots }
    }

    /// The station slot for address `pc`. Misaligned or out-of-range
    /// addresses yield [`StationSlot::Empty`], mirroring a failed fetch.
    pub fn get(&self, pc: u32) -> &StationSlot {
        const EMPTY: StationSlot = StationSlot::Empty;
        if pc < self.base || !pc.is_multiple_of(INST_BYTES) {
            return &EMPTY;
        }
        self.slots
            .get(((pc - self.base) / INST_BYTES) as usize)
            .unwrap_or(&EMPTY)
    }

    /// Base address of the predecoded segment.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of predecoded slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::Reg;

    #[test]
    fn lowering_resolves_pc_relative_fields() {
        let st = Station::lower(
            Inst::Jal {
                rd: Reg::RA,
                offset: -8,
            },
            0x1010,
            |_| None,
        );
        assert_eq!(
            st.kind,
            ExecKind::Jal {
                target: 0x1008,
                link: 0x1014
            }
        );
        assert_eq!(st.dest, Some(ArchReg::from(Reg::RA)));

        let st = Station::lower(
            Inst::Auipc {
                rd: Reg::A0,
                imm: 0x2000,
            },
            0x1000,
            |_| None,
        );
        assert_eq!(st.kind, ExecKind::Const { value: 0x3000 });
    }

    #[test]
    fn simt_e_pairs_with_simt_s_at_lowering_time() {
        let pair = Inst::SimtS {
            rc: Reg::T0,
            r_step: Reg::T1,
            r_end: Reg::T2,
            interval: 1,
        };
        let st = Station::lower(
            Inst::SimtE {
                rc: Reg::T0,
                r_end: Reg::T2,
                l_offset: -16,
            },
            0x1010,
            |addr| (addr == 0x1000).then_some(pair),
        );
        assert_eq!(
            st.kind,
            ExecKind::SimtE {
                rc: Reg::T0.into(),
                r_end: Reg::T2.into(),
                start_pc: 0x1000,
                step: Some(Reg::T1.into()),
            }
        );
        // An unpaired simt_e lowers with no step; the error is deferred to
        // execution.
        let st = Station::lower(
            Inst::SimtE {
                rc: Reg::T0,
                r_end: Reg::T2,
                l_offset: -16,
            },
            0x1010,
            |_| Some(Inst::NOP),
        );
        assert!(matches!(st.kind, ExecKind::SimtE { step: None, .. }));
    }

    #[test]
    fn table_mirrors_fetch_semantics() {
        let words = vec![encode(&Inst::NOP), 0xFFFF_FFFF];
        let table = StationTable::build(0x1000, &words);
        assert_eq!(table.len(), 2);
        assert!(matches!(table.get(0x1000), StationSlot::Ready(_)));
        assert!(matches!(
            table.get(0x1004),
            StationSlot::Illegal { word: 0xFFFF_FFFF }
        ));
        // Out of range / misaligned behave like a failed fetch.
        assert!(matches!(table.get(0x0FFC), StationSlot::Empty));
        assert!(matches!(table.get(0x1008), StationSlot::Empty));
        assert!(matches!(table.get(0x1002), StationSlot::Empty));
    }
}
