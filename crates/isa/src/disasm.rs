//! Textual disassembly of decoded instructions.
//!
//! [`Inst`] implements [`std::fmt::Display`] producing assembler-compatible
//! text that the [`diag-asm`](../../asm) crate's parser accepts back,
//! giving a disassemble → assemble round-trip used by property tests.

use core::fmt;

use crate::inst::{
    AluOp, BranchOp, FmaOp, FpCmpOp, FpOp, FpToIntOp, Inst, IntToFpOp, LoadOp, StoreOp,
};

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Mulhsu => "mulhsu",
        AluOp::Mulhu => "mulhu",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
    }
}

fn branch_mnemonic(op: BranchOp) -> &'static str {
    match op {
        BranchOp::Beq => "beq",
        BranchOp::Bne => "bne",
        BranchOp::Blt => "blt",
        BranchOp::Bge => "bge",
        BranchOp::Bltu => "bltu",
        BranchOp::Bgeu => "bgeu",
    }
}

fn load_mnemonic(op: LoadOp) -> &'static str {
    match op {
        LoadOp::Lb => "lb",
        LoadOp::Lh => "lh",
        LoadOp::Lw => "lw",
        LoadOp::Lbu => "lbu",
        LoadOp::Lhu => "lhu",
    }
}

fn store_mnemonic(op: StoreOp) -> &'static str {
    match op {
        StoreOp::Sb => "sb",
        StoreOp::Sh => "sh",
        StoreOp::Sw => "sw",
    }
}

fn fp_mnemonic(op: FpOp) -> &'static str {
    match op {
        FpOp::Add => "fadd.s",
        FpOp::Sub => "fsub.s",
        FpOp::Mul => "fmul.s",
        FpOp::Div => "fdiv.s",
        FpOp::Sqrt => "fsqrt.s",
        FpOp::SgnJ => "fsgnj.s",
        FpOp::SgnJN => "fsgnjn.s",
        FpOp::SgnJX => "fsgnjx.s",
        FpOp::Min => "fmin.s",
        FpOp::Max => "fmax.s",
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u32) >> 12),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm as u32) >> 12),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", branch_mnemonic(op))
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                write!(f, "{} {rd}, {offset}({rs1})", load_mnemonic(op))
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                write!(f, "{} {rs2}, {offset}({rs1})", store_mnemonic(op))
            }
            // RISC-V spells this one `sltiu`, not `sltui`.
            Inst::OpImm {
                op: AluOp::Sltu,
                rd,
                rs1,
                imm,
            } => {
                write!(f, "sltiu {rd}, {rs1}, {imm}")
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", alu_mnemonic(op))
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_mnemonic(op))
            }
            Inst::Fence => write!(f, "fence"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Ebreak => write!(f, "ebreak"),
            Inst::Flw { rd, rs1, offset } => write!(f, "flw {rd}, {offset}({rs1})"),
            Inst::Fsw { rs1, rs2, offset } => write!(f, "fsw {rs2}, {offset}({rs1})"),
            Inst::FpOp {
                op: FpOp::Sqrt,
                rd,
                rs1,
                ..
            } => write!(f, "fsqrt.s {rd}, {rs1}"),
            Inst::FpOp { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", fp_mnemonic(op))
            }
            Inst::FpFma {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                let m = match op {
                    FmaOp::MAdd => "fmadd.s",
                    FmaOp::MSub => "fmsub.s",
                    FmaOp::NMSub => "fnmsub.s",
                    FmaOp::NMAdd => "fnmadd.s",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}, {rs3}")
            }
            Inst::FpCmp { op, rd, rs1, rs2 } => {
                let m = match op {
                    FpCmpOp::Eq => "feq.s",
                    FpCmpOp::Lt => "flt.s",
                    FpCmpOp::Le => "fle.s",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Inst::FpToInt { op, rd, rs1 } => {
                let m = match op {
                    FpToIntOp::CvtW => "fcvt.w.s",
                    FpToIntOp::CvtWu => "fcvt.wu.s",
                    FpToIntOp::MvXW => "fmv.x.w",
                    FpToIntOp::Class => "fclass.s",
                };
                write!(f, "{m} {rd}, {rs1}")
            }
            Inst::IntToFp { op, rd, rs1 } => {
                let m = match op {
                    IntToFpOp::CvtW => "fcvt.s.w",
                    IntToFpOp::CvtWu => "fcvt.s.wu",
                    IntToFpOp::MvWX => "fmv.w.x",
                };
                write!(f, "{m} {rd}, {rs1}")
            }
            Inst::SimtS {
                rc,
                r_step,
                r_end,
                interval,
            } => {
                write!(f, "simt_s {rc}, {r_step}, {r_end}, {interval}")
            }
            Inst::SimtE {
                rc,
                r_end,
                l_offset,
            } => {
                write!(f, "simt_e {rc}, {r_end}, {l_offset}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};

    #[test]
    fn formats_are_assembler_compatible() {
        let cases: Vec<(Inst, &str)> = vec![
            (
                Inst::Lui {
                    rd: Reg::A0,
                    imm: 0x12345 << 12,
                },
                "lui a0, 0x12345",
            ),
            (
                Inst::Jal {
                    rd: Reg::RA,
                    offset: -8,
                },
                "jal ra, -8",
            ),
            (
                Inst::Jalr {
                    rd: Reg::ZERO,
                    rs1: Reg::RA,
                    offset: 0,
                },
                "jalr zero, 0(ra)",
            ),
            (
                Inst::Branch {
                    op: BranchOp::Bne,
                    rs1: Reg::T0,
                    rs2: Reg::T1,
                    offset: 12,
                },
                "bne t0, t1, 12",
            ),
            (
                Inst::Load {
                    op: LoadOp::Lw,
                    rd: Reg::A0,
                    rs1: Reg::SP,
                    offset: -4,
                },
                "lw a0, -4(sp)",
            ),
            (
                Inst::Store {
                    op: StoreOp::Sw,
                    rs1: Reg::SP,
                    rs2: Reg::A0,
                    offset: 8,
                },
                "sw a0, 8(sp)",
            ),
            (
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    imm: 1,
                },
                "addi a0, a0, 1",
            ),
            (
                Inst::Op {
                    op: AluOp::Mul,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                "mul a0, a1, a2",
            ),
            (Inst::Ecall, "ecall"),
            (
                Inst::Flw {
                    rd: FReg::new(0),
                    rs1: Reg::A0,
                    offset: 0,
                },
                "flw ft0, 0(a0)",
            ),
            (
                Inst::FpOp {
                    op: FpOp::Add,
                    rd: FReg::new(0),
                    rs1: FReg::new(1),
                    rs2: FReg::new(2),
                },
                "fadd.s ft0, ft1, ft2",
            ),
            (
                Inst::FpOp {
                    op: FpOp::Sqrt,
                    rd: FReg::new(0),
                    rs1: FReg::new(1),
                    rs2: FReg::new(0),
                },
                "fsqrt.s ft0, ft1",
            ),
            (
                Inst::SimtS {
                    rc: Reg::T0,
                    r_step: Reg::T1,
                    r_end: Reg::T2,
                    interval: 2,
                },
                "simt_s t0, t1, t2, 2",
            ),
            (
                Inst::SimtE {
                    rc: Reg::T0,
                    r_end: Reg::T2,
                    l_offset: -64,
                },
                "simt_e t0, t2, -64",
            ),
        ];
        for (inst, text) in cases {
            assert_eq!(inst.to_string(), text);
        }
    }
}
