//! Microbenchmark of the ISA layer: decode and encode rates.
//!
//! Dependency-free timing harness (`harness = false`): run with
//! `cargo bench -p diag-isa` and read the reported element rates. The
//! measurement is a simple best-of-N wall-clock loop, which is plenty to
//! catch order-of-magnitude codec regressions offline.

use std::hint::black_box;
use std::time::Instant;

use diag_isa::{decode, encode, Inst};

/// Runs `f` in a timed loop and returns the best per-iteration time in
/// nanoseconds.
fn best_of<F: FnMut()>(reps: u32, iters: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

fn main() {
    // A representative mix of instruction words.
    let words: Vec<u32> = (0u32..65536)
        .filter_map(|i| {
            let w = i
                .wrapping_mul(0x9E37_79B9)
                .rotate_left(7)
                .wrapping_add(0x13);
            decode(w).ok().map(|_| w)
        })
        .collect();
    let insts: Vec<Inst> = words.iter().map(|&w| decode(w).unwrap()).collect();
    assert!(!words.is_empty());
    let n = words.len() as f64;

    let decode_ns = best_of(20, 10, || {
        for &w in black_box(&words) {
            black_box(decode(w).unwrap());
        }
    });
    let encode_ns = best_of(20, 10, || {
        for i in black_box(&insts) {
            black_box(encode(i));
        }
    });

    println!(
        "isa_codec/decode: {:.1} ns/iter, {:.1} Melem/s",
        decode_ns,
        n / decode_ns * 1e3
    );
    println!(
        "isa_codec/encode: {:.1} ns/iter, {:.1} Melem/s",
        encode_ns,
        n / encode_ns * 1e3
    );
}
