//! Criterion microbenchmarks of the ISA layer: decode and encode rates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use diag_isa::{decode, encode, Inst};

fn codec(c: &mut Criterion) {
    // A representative mix of instruction words.
    let words: Vec<u32> = (0u32..65536)
        .filter_map(|i| {
            let w = i.wrapping_mul(0x9E37_79B9).rotate_left(7).wrapping_add(0x13);
            decode(w).ok().map(|_| w)
        })
        .collect();
    let insts: Vec<Inst> = words.iter().map(|&w| decode(w).unwrap()).collect();
    assert!(!words.is_empty());

    let mut group = c.benchmark_group("isa_codec");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("decode", |b| {
        b.iter(|| words.iter().map(|&w| decode(w).unwrap()).count())
    });
    group.bench_function("encode", |b| b.iter(|| insts.iter().map(encode).count()));
    group.finish();
}

criterion_group!(benches, codec);
criterion_main!(benches);
