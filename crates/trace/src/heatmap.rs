//! Text utilization heatmap.
//!
//! [`render`] folds an event stream into fixed-width time windows and
//! draws one ASCII row per component: PE rows show *occupancy* (fraction
//! of the window the PE was executing, from retire slices), lane rows
//! show *traffic* (writes + transports per window, scaled to the busiest
//! window), and a footer row shows stalled cycles per window. The output
//! is plain text so it drops into terminals, logs, and CI artifacts.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::event::{Event, EventKind, Track};

/// Intensity ramp, blank → densest.
const RAMP: &[u8] = b" .:-=+*#%@";

fn shade(fraction: f64) -> char {
    let clamped = fraction.clamp(0.0, 1.0);
    let idx = (clamped * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx] as char
}

/// Adds `amount` spread over cycle interval `[start, end)` into the
/// window accumulator `row` (windows of `window` cycles).
fn deposit(row: &mut Vec<u64>, start: u64, end: u64, window: u64) {
    let mut c = start;
    while c < end {
        let w = (c / window) as usize;
        if row.len() <= w {
            row.resize(w + 1, 0);
        }
        let win_end = (c / window + 1) * window;
        let take = end.min(win_end) - c;
        row[w] += take;
        c += take;
    }
}

fn bump(row: &mut Vec<u64>, cycle: u64, window: u64, amount: u64) {
    let w = (cycle / window) as usize;
    if row.len() <= w {
        row.resize(w + 1, 0);
    }
    row[w] += amount;
}

/// Renders the heatmap for `events` with `window`-cycle columns.
///
/// `window` of 0 is treated as 1. Rows appear in sorted track order; the
/// legend explains each section's scale.
pub fn render(events: &[Event], window: u64) -> String {
    let window = window.max(1);
    // Per-PE busy cycles, per-lane traffic, global stall cycles.
    let mut pe: BTreeMap<(u32, Track), Vec<u64>> = BTreeMap::new();
    let mut lane: BTreeMap<u8, Vec<u64>> = BTreeMap::new();
    let mut stall: Vec<u64> = Vec::new();
    let mut last_cycle = 0u64;

    for e in events {
        last_cycle = last_cycle.max(e.cycle);
        match e.kind {
            EventKind::PeRetire { start, finish, .. } => {
                let row = pe.entry((e.thread, e.track)).or_default();
                deposit(row, start, finish.max(start + 1), window);
                last_cycle = last_cycle.max(finish);
            }
            EventKind::LaneWrite { lane: l } => {
                bump(lane.entry(l).or_default(), e.cycle, window, 1);
            }
            EventKind::LaneForward { lane: l, hops, .. } => {
                bump(
                    lane.entry(l).or_default(),
                    e.cycle,
                    window,
                    1 + u64::from(hops),
                );
            }
            EventKind::SegPush { lane: l, .. } => {
                bump(lane.entry(l).or_default(), e.cycle, window, 1);
            }
            EventKind::StallEnd { cycles, .. } => {
                deposit(&mut stall, e.cycle.saturating_sub(cycles), e.cycle, window);
            }
            _ => {}
        }
    }

    let windows = (last_cycle / window + 1) as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "utilization heatmap — {windows} windows × {window} cycles (scale: \" .:-=+*#%@\")"
    );

    if !pe.is_empty() {
        let _ = writeln!(out, "\nPE occupancy (busy fraction of window):");
        for ((thread, track), row) in &pe {
            let _ = write!(out, "  t{thread} {track:<10} |");
            for w in 0..windows {
                let busy = row.get(w).copied().unwrap_or(0);
                out.push(shade(busy as f64 / window as f64));
            }
            out.push_str("|\n");
        }
    }

    if !lane.is_empty() {
        let peak = lane
            .values()
            .flat_map(|r| r.iter().copied())
            .max()
            .unwrap_or(1)
            .max(1);
        let _ = writeln!(
            out,
            "\nlane traffic (writes+transports, peak {peak}/window):"
        );
        for (l, row) in &lane {
            let _ = write!(out, "  {:<13} |", format!("lane:{l}"));
            for w in 0..windows {
                let traffic = row.get(w).copied().unwrap_or(0);
                out.push(shade(traffic as f64 / peak as f64));
            }
            out.push_str("|\n");
        }
    }

    if stall.iter().any(|&s| s > 0) {
        let _ = writeln!(out, "\nstalled cycles (fraction of window, all causes):");
        let _ = write!(out, "  {:<13} |", "stalls");
        for w in 0..windows {
            let s = stall.get(w).copied().unwrap_or(0);
            out.push(shade(s as f64 / window as f64));
        }
        out.push_str("|\n");
    }

    if pe.is_empty() && lane.is_empty() {
        out.push_str("\n(no PE or lane events in trace)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shade_spans_ramp() {
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(1.0), '@');
        assert_eq!(shade(2.0), '@'); // clamped
    }

    #[test]
    fn deposit_splits_across_windows() {
        let mut row = Vec::new();
        deposit(&mut row, 5, 25, 10);
        // [5,10) → 5 in w0, [10,20) → 10 in w1, [20,25) → 5 in w2.
        assert_eq!(row, [5, 10, 5]);
        // Sum is conserved (the timeline exporter relies on the same
        // splitting logic).
        assert_eq!(row.iter().sum::<u64>(), 20);
    }

    #[test]
    fn render_shows_sections() {
        let events = vec![
            Event {
                cycle: 9,
                thread: 0,
                track: Track::Pe {
                    cluster: 0,
                    slot: 0,
                },
                kind: EventKind::PeRetire {
                    pc: 0,
                    start: 0,
                    finish: 8,
                },
            },
            Event {
                cycle: 3,
                thread: 0,
                track: Track::Lane(2),
                kind: EventKind::LaneWrite { lane: 2 },
            },
        ];
        let text = render(&events, 8);
        assert!(text.contains("PE occupancy"));
        assert!(text.contains("lane traffic"));
        assert!(text.contains("pe:0.0"));
        assert!(text.contains("lane:2"));
    }

    #[test]
    fn render_empty_is_graceful() {
        let text = render(&[], 100);
        assert!(text.contains("no PE or lane events"));
    }
}
