//! # diag-trace — cycle-level observability for the DiAG reproduction
//!
//! The evaluation of the paper (§7.3) hinges on *attribution*: knowing
//! which cycles went to PE compute, lane transport, memory, or control.
//! End-of-run aggregates ([`Counters`] feeding `diag_sim::RunStats`) answer
//! "how much"; this crate additionally answers "when and where" with a
//! structured, cycle-level event stream that every machine model in the
//! workspace emits through the same plumbing:
//!
//! * a typed event vocabulary ([`Event`] / [`EventKind`] / [`Track`]) —
//!   PE issue/retire, lane writes and forwards, segment-buffer traffic,
//!   LSU enqueue/complete, cache hits/misses, bus grants, branch
//!   redirects, SIMT instance spawns, and stall begin/end intervals
//!   carrying a [`StallCause`];
//! * cheap-when-off call sites: machines hold a [`Tracer`] handle whose
//!   [`Tracer::emit`] takes a closure, so a disabled tracer costs one
//!   branch and never constructs the event ([`NullSink`] call sites
//!   compile to no-ops);
//! * pluggable sinks ([`TraceSink`]): [`RingSink`] (bounded, keeps the
//!   most recent events), [`VecSink`] (unbounded collection for
//!   exporters), and [`JsonlSink`] (streaming line-oriented JSON with a
//!   byte-deterministic encoding);
//! * exporters: Chrome/Perfetto trace-event JSON ([`perfetto`]), a
//!   windowed text utilization heatmap ([`heatmap`]), and a
//!   stall-attribution timeline ([`timeline`]) whose per-cause totals
//!   reconcile *exactly* with the `StallBreakdown` a run reports;
//! * a counter registry ([`Counter`] / [`Counters`]) that supersedes
//!   ad-hoc per-model activity fields while feeding the existing
//!   `RunStats` unchanged.
//!
//! The crate is dependency-free and sits below `diag-sim` in the
//! workspace graph, so every layer (memory system, DiAG core, baselines,
//! bench harness) can emit events without cycles.
//!
//! # Examples
//!
//! ```
//! use diag_trace::{Event, EventKind, Track, Tracer, VecSink};
//!
//! let sink = VecSink::shared();
//! let tracer = Tracer::to_shared(sink.clone());
//! tracer.emit(|| Event {
//!     cycle: 42,
//!     thread: 0,
//!     track: Track::Pe { cluster: 0, slot: 3 },
//!     kind: EventKind::PeIssue { pc: 0x1000, reused: false },
//! });
//! assert_eq!(sink.borrow().events().len(), 1);
//!
//! let off = Tracer::off();
//! off.emit(|| unreachable!("disabled tracers never build events"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod event;
pub mod heatmap;
pub mod json;
pub mod perfetto;
mod sink;
pub mod timeline;

pub use counters::{Counter, Counters, COUNTER_COUNT};
pub use event::{Event, EventKind, StallCause, Track};
pub use sink::{JsonlSink, NullSink, RingSink, SharedSink, TraceSink, Tracer, VecSink};
