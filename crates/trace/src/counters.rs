//! The counter registry.
//!
//! A [`Counters`] bank is a fixed array of named `u64` counters, one per
//! [`Counter`] variant, superseding the ad-hoc per-model activity fields
//! that previously accreted inside each machine. Machines bump counters
//! through this registry; `diag-sim` converts a bank into its public
//! `Activity` aggregate at end of run, so `RunStats` consumers see the
//! exact same numbers as before.

use std::fmt;
use std::ops::AddAssign;

/// Names of every aggregate activity counter the machine models maintain.
///
/// The set mirrors `diag_sim::Activity` field-for-field; the `From`
/// conversion living in `diag-sim` is the single place the two are zipped
/// together, and a unit test there asserts the mapping is exhaustive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Cycles in which at least one PE did useful work.
    BusyCycles,
    /// Sum over PEs of cycles spent executing.
    PeActiveCycles,
    /// Sum over PEs of cycles spent powered with an instruction resident.
    PeResidentCycles,
    /// Sum over FPU-capable PEs of cycles spent on FP work.
    FpuActiveCycles,
    /// Integer ALU operations executed.
    IntOps,
    /// Floating-point operations executed.
    FpOps,
    /// Load instructions executed.
    Loads,
    /// Store instructions executed.
    Stores,
    /// Register (lane) writes.
    RegWrites,
    /// Lane segment-boundary transport hops.
    LaneTransports,
    /// Operand fetches served by a memory lane's store-forward buffer.
    MemlaneHits,
    /// Beats transferred on the shared 512-bit bus.
    BusBeats,
    /// Instruction lines fetched into clusters.
    LineFetches,
    /// Instruction decodes performed.
    Decodes,
    /// Commits served from a resident (reused) datapath.
    ReuseCommits,
    /// Register renames performed (baseline OoO only).
    Renames,
    /// Instructions dispatched into the window (baseline OoO only).
    Dispatches,
    /// Instructions issued to functional units (baseline OoO only).
    Issues,
    /// Reorder-buffer writes (baseline OoO only).
    RobWrites,
    /// Branch-predictor lookups (baseline OoO only).
    BpredLookups,
    /// Mispredicted branches (baseline OoO only).
    Mispredicts,
    /// L1 data-cache accesses.
    L1dAccesses,
    /// L1 data-cache misses.
    L1dMisses,
    /// L2 cache accesses.
    L2Accesses,
    /// L2 cache misses.
    L2Misses,
}

/// Number of distinct [`Counter`] variants.
pub const COUNTER_COUNT: usize = 25;

impl Counter {
    /// All counters, in declaration order (`ALL[c.index()] == c`).
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::BusyCycles,
        Counter::PeActiveCycles,
        Counter::PeResidentCycles,
        Counter::FpuActiveCycles,
        Counter::IntOps,
        Counter::FpOps,
        Counter::Loads,
        Counter::Stores,
        Counter::RegWrites,
        Counter::LaneTransports,
        Counter::MemlaneHits,
        Counter::BusBeats,
        Counter::LineFetches,
        Counter::Decodes,
        Counter::ReuseCommits,
        Counter::Renames,
        Counter::Dispatches,
        Counter::Issues,
        Counter::RobWrites,
        Counter::BpredLookups,
        Counter::Mispredicts,
        Counter::L1dAccesses,
        Counter::L1dMisses,
        Counter::L2Accesses,
        Counter::L2Misses,
    ];

    /// Index into a [`Counters`] bank.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in exported traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::BusyCycles => "busy_cycles",
            Counter::PeActiveCycles => "pe_active_cycles",
            Counter::PeResidentCycles => "pe_resident_cycles",
            Counter::FpuActiveCycles => "fpu_active_cycles",
            Counter::IntOps => "int_ops",
            Counter::FpOps => "fp_ops",
            Counter::Loads => "loads",
            Counter::Stores => "stores",
            Counter::RegWrites => "reg_writes",
            Counter::LaneTransports => "lane_transports",
            Counter::MemlaneHits => "memlane_hits",
            Counter::BusBeats => "bus_beats",
            Counter::LineFetches => "line_fetches",
            Counter::Decodes => "decodes",
            Counter::ReuseCommits => "reuse_commits",
            Counter::Renames => "renames",
            Counter::Dispatches => "dispatches",
            Counter::Issues => "issues",
            Counter::RobWrites => "rob_writes",
            Counter::BpredLookups => "bpred_lookups",
            Counter::Mispredicts => "mispredicts",
            Counter::L1dAccesses => "l1d_accesses",
            Counter::L1dMisses => "l1d_misses",
            Counter::L2Accesses => "l2_accesses",
            Counter::L2Misses => "l2_misses",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A bank of one `u64` value per [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters([u64; COUNTER_COUNT]);

impl Counters {
    /// An all-zero bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `c` by one.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.0[c.index()] += 1;
    }

    /// Adds `n` to `c`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.0[c.index()] += n;
    }

    /// Current value of `c`.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.0[c.index()]
    }

    /// Overwrites `c` (used when a model computes a counter at end of run
    /// rather than incrementally).
    #[inline]
    pub fn set(&mut self, c: Counter, v: u64) {
        self.0[c.index()] = v;
    }

    /// Iterates `(counter, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.0[c.index()]))
    }

    /// Sum of all counter values.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        for (slot, v) in self.0.iter_mut().zip(rhs.0.iter()) {
            *slot += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ordering_matches_indices() {
        assert_eq!(Counter::ALL.len(), COUNTER_COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }

    #[test]
    fn bank_arithmetic() {
        let mut a = Counters::new();
        a.inc(Counter::Loads);
        a.add(Counter::Loads, 2);
        a.add(Counter::BusBeats, 10);
        let mut b = Counters::new();
        b.add(Counter::Loads, 5);
        let mut sum = a;
        sum += b;
        assert_eq!(sum.get(Counter::Loads), 8);
        assert_eq!(sum.get(Counter::BusBeats), 10);
        assert_eq!(sum.total(), 18);
        assert_eq!(sum.iter().count(), COUNTER_COUNT);
    }
}
