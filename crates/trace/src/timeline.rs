//! Stall-attribution timeline.
//!
//! A [`StallTimeline`] bins every stall interval in an event stream into
//! fixed-width time windows, per [`StallCause`]. Intervals are split
//! across window boundaries so no cycle is dropped or double-counted:
//! the per-cause totals of the timeline reconcile **exactly** with the
//! `StallBreakdown` the same run reports — an invariant the workspace
//! integration tests enforce for every bundled workload.

use std::fmt::Write;

use crate::event::{Event, EventKind, StallCause};

/// Per-cause stalled cycles over fixed windows of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallTimeline {
    window: u64,
    per_cause: [Vec<u64>; 3],
}

impl StallTimeline {
    /// Bins the [`EventKind::StallEnd`] intervals of `events` into
    /// `window`-cycle columns (`window` of 0 is treated as 1).
    ///
    /// An end event at cycle `c` with length `n` covers `[c - n, c)`;
    /// the part falling in each window is attributed to that window.
    pub fn from_events(events: &[Event], window: u64) -> Self {
        let window = window.max(1);
        let mut per_cause: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for e in events {
            if let EventKind::StallEnd { cause, cycles } = e.kind {
                if cycles == 0 {
                    continue;
                }
                let row = &mut per_cause[cause.index()];
                let mut c = e.cycle.saturating_sub(cycles);
                let end = e.cycle.max(c + cycles); // guard saturation
                while c < end {
                    let w = (c / window) as usize;
                    if row.len() <= w {
                        row.resize(w + 1, 0);
                    }
                    let win_end = (c / window + 1) * window;
                    let take = end.min(win_end) - c;
                    row[w] += take;
                    c += take;
                }
            }
        }
        Self { window, per_cause }
    }

    /// The window width in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Number of windows covered (length of the longest cause row).
    pub fn windows(&self) -> usize {
        self.per_cause.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Stalled cycles attributed to `cause` in window `w`.
    pub fn cycles(&self, cause: StallCause, w: usize) -> u64 {
        self.per_cause[cause.index()].get(w).copied().unwrap_or(0)
    }

    /// Total stalled cycles attributed to `cause`.
    pub fn total(&self, cause: StallCause) -> u64 {
        self.per_cause[cause.index()].iter().sum()
    }

    /// Per-cause totals in [`StallCause::ALL`] order
    /// (memory, control, structural) — the values that must equal the
    /// run's `StallBreakdown`.
    pub fn totals(&self) -> [u64; 3] {
        [
            self.total(StallCause::Memory),
            self.total(StallCause::Control),
            self.total(StallCause::Structural),
        ]
    }

    /// Renders the timeline as a text table: one line per window with
    /// per-cause stalled cycles, followed by a totals footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let windows = self.windows();
        let _ = writeln!(
            out,
            "stall-attribution timeline — {windows} windows × {} cycles",
            self.window
        );
        let _ = writeln!(
            out,
            "{:>12}  {:>10}  {:>10}  {:>10}",
            "window", "memory", "control", "structural"
        );
        for w in 0..windows {
            let row: Vec<u64> = StallCause::ALL.iter().map(|&c| self.cycles(c, w)).collect();
            if row.iter().all(|&v| v == 0) {
                continue; // dense runs: skip all-quiet windows
            }
            let _ = writeln!(
                out,
                "{:>12}  {:>10}  {:>10}  {:>10}",
                w as u64 * self.window,
                row[0],
                row[1],
                row[2]
            );
        }
        let totals = self.totals();
        let _ = writeln!(
            out,
            "{:>12}  {:>10}  {:>10}  {:>10}",
            "total", totals[0], totals[1], totals[2]
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;

    fn stall(thread: u32, cause: StallCause, end: u64, cycles: u64) -> Event {
        Event {
            cycle: end,
            thread,
            track: Track::Control,
            kind: EventKind::StallEnd { cause, cycles },
        }
    }

    #[test]
    fn totals_conserve_interval_lengths() {
        let events = vec![
            stall(0, StallCause::Memory, 25, 20),    // spans windows 0..3
            stall(0, StallCause::Control, 7, 3),     // inside window 0
            stall(1, StallCause::Memory, 100, 1),    // window 9
            stall(0, StallCause::Structural, 40, 0), // zero-length: ignored
        ];
        let tl = StallTimeline::from_events(&events, 10);
        assert_eq!(tl.totals(), [21, 3, 0]);
        // window splits: [5,10)=5, [10,20)=10, [20,25)=5.
        assert_eq!(tl.cycles(StallCause::Memory, 0), 5);
        assert_eq!(tl.cycles(StallCause::Memory, 1), 10);
        assert_eq!(tl.cycles(StallCause::Memory, 2), 5);
        assert_eq!(tl.cycles(StallCause::Memory, 9), 1);
        assert_eq!(tl.cycles(StallCause::Control, 0), 3);
    }

    #[test]
    fn window_sums_equal_totals_for_any_window() {
        let events: Vec<Event> = (1..50)
            .map(|i| stall(0, StallCause::ALL[i % 3], (i * 7) as u64, (i % 11) as u64))
            .collect();
        let reference = StallTimeline::from_events(&events, 1).totals();
        for window in [1, 2, 3, 8, 17, 100, 10_000] {
            let tl = StallTimeline::from_events(&events, window);
            assert_eq!(tl.totals(), reference, "window {window}");
        }
    }

    #[test]
    fn render_has_totals_footer() {
        let events = vec![stall(0, StallCause::Memory, 12, 12)];
        let tl = StallTimeline::from_events(&events, 4);
        let text = tl.render();
        assert!(text.contains("total"));
        assert!(text.contains("12"));
        assert_eq!(tl.windows(), 3);
    }

    #[test]
    fn zero_window_is_clamped() {
        let tl = StallTimeline::from_events(&[stall(0, StallCause::Control, 3, 2)], 0);
        assert_eq!(tl.window(), 1);
        assert_eq!(tl.total(StallCause::Control), 2);
    }

    #[test]
    fn stall_longer_than_trace_start_saturates_without_losing_cycles() {
        // End at cycle 5, but 9 stalled cycles: the interval start
        // saturates to 0 and the full length is still attributed, so
        // timeline totals keep reconciling with the run's breakdown.
        let tl = StallTimeline::from_events(&[stall(0, StallCause::Memory, 5, 9)], 10);
        assert_eq!(tl.totals(), [9, 0, 0]);
        assert_eq!(tl.cycles(StallCause::Memory, 0), 9);
        assert_eq!(tl.windows(), 1);
        // Same, but with the saturated interval crossing a boundary.
        let tl = StallTimeline::from_events(&[stall(0, StallCause::Memory, 3, 7)], 4);
        assert_eq!(tl.totals(), [7, 0, 0]);
        assert_eq!(tl.cycles(StallCause::Memory, 0), 4);
        assert_eq!(tl.cycles(StallCause::Memory, 1), 3);
    }

    #[test]
    fn interval_exactly_on_window_boundaries_stays_in_one_window() {
        // [10, 20) with 10-cycle windows: entirely window 1 — nothing
        // spills into window 0 or 2 on either closed/open endpoint.
        let tl = StallTimeline::from_events(&[stall(0, StallCause::Control, 20, 10)], 10);
        assert_eq!(tl.cycles(StallCause::Control, 0), 0);
        assert_eq!(tl.cycles(StallCause::Control, 1), 10);
        assert_eq!(tl.windows(), 2, "open end must not allocate window 2");
        assert_eq!(tl.totals(), [0, 10, 0]);
    }

    #[test]
    fn zero_width_window_request_bins_per_cycle() {
        // window 0 clamps to 1-cycle bins; per-window values are then
        // exactly the per-cycle occupancy, and nothing merges.
        let events = vec![
            stall(0, StallCause::Memory, 4, 2),     // [2, 4)
            stall(0, StallCause::Structural, 3, 1), // [2, 3)
        ];
        let tl = StallTimeline::from_events(&events, 0);
        assert_eq!(tl.window(), 1);
        assert_eq!(tl.windows(), 4);
        let mem: Vec<u64> = (0..4).map(|w| tl.cycles(StallCause::Memory, w)).collect();
        assert_eq!(mem, [0, 0, 1, 1]);
        assert_eq!(tl.cycles(StallCause::Structural, 2), 1);
        assert_eq!(tl.totals(), [2, 0, 1]);
    }
}
