//! Chrome/Perfetto trace-event JSON export.
//!
//! [`export`] turns a recorded event stream into the JSON object format
//! understood by `ui.perfetto.dev` and `chrome://tracing`: one named
//! track per `(thread, component)` pair, complete slices (`ph:"X"`) for
//! PE execution intervals and stall intervals, async slices (`ph:"b"` /
//! `ph:"e"`) for in-flight LSU requests, counter samples (`ph:"C"`) for
//! segment-buffer occupancy, and instants for everything else.
//!
//! [`validate_chrome_trace`] re-parses an export with the in-crate JSON
//! parser and checks it structurally — the CI smoke job runs it against
//! every trace the harness writes.
//!
//! Timestamps are simulation cycles written in the `ts` field (nominally
//! microseconds); the viewer's absolute unit does not matter for relative
//! inspection, and integral cycle values keep the export
//! byte-deterministic.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::event::{Event, EventKind, Track};
use crate::json::{self, Value};

/// Escapes `s` for inclusion in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Stable track identity within the export: process = hardware thread,
/// thread row = component track.
fn track_ids(events: &[Event]) -> BTreeMap<(u32, Track), u64> {
    let mut set: BTreeMap<(u32, Track), u64> = BTreeMap::new();
    for e in events {
        set.entry((e.thread, e.track)).or_insert(0);
    }
    // tids assigned in sorted order so the export is deterministic and
    // the viewer lists components in a stable order.
    for (i, v) in set.values_mut().enumerate() {
        *v = i as u64 + 1;
    }
    set
}

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Self {
        Self {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            first: true,
        }
    }

    /// Starts one trace-event object with the common fields; the caller
    /// appends extra fields and must call `close`.
    fn open(&mut self, name: &str, ph: char, ts: u64, pid: u32, tid: u64) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str("{\"name\":\"");
        escape(name, &mut self.out);
        let _ = write!(
            self.out,
            "\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
        );
    }

    fn close(&mut self) {
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("]}");
        self.out
    }
}

/// Exports `events` as a Chrome trace-event JSON document.
pub fn export(events: &[Event]) -> String {
    let ids = track_ids(events);
    let mut em = Emitter::new();

    // Metadata: name every track row and every process (hardware thread).
    let mut seen_threads: Vec<u32> = Vec::new();
    for (&(thread, track), &tid) in &ids {
        if !seen_threads.contains(&thread) {
            seen_threads.push(thread);
            em.open("process_name", 'M', 0, thread, 0);
            let _ = write!(em.out, ",\"args\":{{\"name\":\"hw thread {thread}\"}}");
            em.close();
        }
        em.open("thread_name", 'M', 0, thread, tid);
        em.out.push_str(",\"args\":{\"name\":\"");
        escape(&track.to_string(), &mut em.out);
        em.out.push_str("\"}}");
        // `close` would double the brace; we closed args + object above.
        em.first = false;
    }

    for e in events {
        let tid = ids[&(e.thread, e.track)];
        let pid = e.thread;
        match e.kind {
            EventKind::PeRetire { pc, start, finish } => {
                let name = format!("pc {pc:#x}");
                em.open(&name, 'X', start, pid, tid);
                let dur = finish.saturating_sub(start).max(1);
                let _ = write!(
                    em.out,
                    ",\"dur\":{dur},\"args\":{{\"commit\":{},\"pc\":{pc}}}",
                    e.cycle
                );
                em.close();
            }
            EventKind::StallEnd { cause, cycles } => {
                if cycles == 0 {
                    continue;
                }
                let name = format!("stall:{cause}");
                em.open(&name, 'X', e.cycle.saturating_sub(cycles), pid, tid);
                let _ = write!(em.out, ",\"dur\":{cycles},\"cname\":\"terrible\"");
                em.close();
            }
            // Begin markers carry no information the matching End lacks.
            EventKind::StallBegin { .. } => {}
            EventKind::LsuEnqueue { id, write, .. } => {
                let name = if write { "store" } else { "load" };
                em.open(name, 'b', e.cycle, pid, tid);
                let _ = write!(em.out, ",\"cat\":\"mem\",\"id\":{id}");
                em.close();
            }
            EventKind::LsuComplete { id } => {
                em.open("load", 'e', e.cycle, pid, tid);
                let _ = write!(em.out, ",\"cat\":\"mem\",\"id\":{id}");
                em.close();
            }
            EventKind::SegOccupancy { segment, occupancy } => {
                let name = format!("seg{segment} occupancy");
                em.open(&name, 'C', e.cycle, pid, tid);
                let _ = write!(em.out, ",\"args\":{{\"in_flight\":{occupancy}}}");
                em.close();
            }
            _ => {
                em.open(e.kind.name(), 'i', e.cycle, pid, tid);
                em.out.push_str(",\"s\":\"t\"");
                em.close();
            }
        }
    }
    em.finish()
}

/// Summary statistics returned by a successful
/// [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total trace-event records.
    pub events: usize,
    /// Complete (`ph:"X"`) slices.
    pub slices: usize,
    /// Instant (`ph:"i"`) events.
    pub instants: usize,
    /// Counter (`ph:"C"`) samples.
    pub counters: usize,
    /// Async begin/end (`ph:"b"`/`ph:"e"`) pairs seen (begins).
    pub async_begins: usize,
    /// Metadata (`ph:"M"`) records.
    pub metadata: usize,
}

/// Structurally validates a Chrome trace-event JSON document: a
/// `traceEvents` array whose members carry the mandatory `name`/`ph`/
/// `ts`/`pid`/`tid` fields with the right types, `dur` on complete
/// slices, and `id` on async events. Returns counts per phase type.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_obj()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing ph"))?;
        obj.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing name"))?;
        for key in ["ts", "pid", "tid"] {
            let n = obj
                .get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("traceEvents[{i}] missing numeric {key}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!(
                    "traceEvents[{i}].{key} is not a non-negative integer"
                ));
            }
        }
        match ph {
            "X" => {
                summary.slices += 1;
                let dur = obj
                    .get("dur")
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("traceEvents[{i}] X slice missing dur"))?;
                if dur < 0.0 {
                    return Err(format!("traceEvents[{i}] negative dur"));
                }
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            "b" | "e" => {
                if ph == "b" {
                    summary.async_begins += 1;
                }
                obj.get("id")
                    .ok_or_else(|| format!("traceEvents[{i}] async event missing id"))?;
            }
            "M" => summary.metadata += 1,
            other => return Err(format!("traceEvents[{i}] unknown ph {other:?}")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallCause;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 12,
                thread: 0,
                track: Track::Pe {
                    cluster: 0,
                    slot: 1,
                },
                kind: EventKind::PeRetire {
                    pc: 0x10,
                    start: 4,
                    finish: 9,
                },
            },
            Event {
                cycle: 5,
                thread: 0,
                track: Track::Lsu(0),
                kind: EventKind::LsuEnqueue {
                    id: 1,
                    write: false,
                    wait: 0,
                    occupancy: 1,
                },
            },
            Event {
                cycle: 30,
                thread: 0,
                track: Track::Lsu(0),
                kind: EventKind::LsuComplete { id: 1 },
            },
            Event {
                cycle: 30,
                thread: 0,
                track: Track::Control,
                kind: EventKind::StallEnd {
                    cause: StallCause::Memory,
                    cycles: 25,
                },
            },
            Event {
                cycle: 8,
                thread: 1,
                track: Track::Lane(3),
                kind: EventKind::SegOccupancy {
                    segment: 1,
                    occupancy: 2,
                },
            },
            Event {
                cycle: 2,
                thread: 0,
                track: Track::Control,
                kind: EventKind::BranchRedirect {
                    from_pc: 0x20,
                    to_pc: 0x0,
                    backward: true,
                },
            },
        ]
    }

    #[test]
    fn export_validates() {
        let text = export(&sample_events());
        let summary = validate_chrome_trace(&text).expect("export must be valid");
        assert_eq!(summary.slices, 2); // retire slice + stall slice
        assert_eq!(summary.async_begins, 1);
        assert_eq!(summary.counters, 1);
        assert!(summary.metadata >= 4); // ≥2 processes + ≥4 tracks named
        assert!(summary.instants >= 1);
    }

    #[test]
    fn export_is_deterministic() {
        let events = sample_events();
        assert_eq!(export(&events), export(&events));
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = export(&[]);
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.events, 0);
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"Z\",\"ts\":0,\"pid\":0,\"tid\":0}]}"
        )
        .is_err());
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":0,\"tid\":0}]}"
        )
        .is_err()); // X without dur
    }

    #[test]
    fn escape_handles_specials() {
        let mut s = String::new();
        escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
